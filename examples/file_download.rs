//! Asynchronous file distribution with heterogeneous users (§5).
//!
//! DSL users clip 2 threads, cable users 4, T1 users 8 — the curtain
//! accepts them all (the proofs assume uniform bandwidth; the *system*
//! never does). With priority encoding transmission, users with more
//! bandwidth sustain higher rank rates and therefore decode more quality
//! layers by the deadline.
//!
//! ```text
//! cargo run --release --example file_download
//! ```

use coded_curtain::broadcast::heterogeneous::{
    build_heterogeneous_curtain, BandwidthClass, PetProfile,
};
use coded_curtain::broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let k = 32;
    let classes = [
        BandwidthClass { name: "DSL", degree: 2, count: 60 },
        BandwidthClass { name: "cable", degree: 4, count: 30 },
        BandwidthClass { name: "T1", degree: 8, count: 10 },
    ];
    let mut rng = StdRng::seed_from_u64(7);
    let (net, members) =
        build_heterogeneous_curtain(k, &classes, &mut rng).expect("valid parameters");
    println!(
        "heterogeneous curtain: k = {k}, {} members ({} classes)",
        net.len(),
        classes.len()
    );

    // Per-class connectivity: the broadcast rate each class sustains.
    for (ci, class) in classes.iter().enumerate() {
        let conns: Vec<usize> = members
            .iter()
            .filter(|(_, c)| *c == ci)
            .map(|(n, _)| net.connectivity_of(*n).expect("working member"))
            .collect();
        let mean = conns.iter().sum::<usize>() as f64 / conns.len() as f64;
        println!(
            "  {:<6} d = {}: mean connectivity {:.2} (min {})",
            class.name,
            class.degree,
            mean,
            conns.iter().min().expect("non-empty class"),
        );
    }

    // Download a 64-packet file over a lossy network. The deadline is set
    // so slow classes cannot finish everything — PET decides what quality
    // they get instead of all-or-nothing.
    let total_packets = 64;
    let deadline = 32;
    let topo = TopologySpec::from_curtain(&net);
    let cfg = SessionConfig::new(Strategy::Rlnc, total_packets, 2048)
        .with_loss(0.05)
        .with_max_ticks(deadline);
    let report = Session::run(&topo, &cfg, 11);

    // Three PET layers: preview at rank 16, standard at 40, full at 64.
    let pet = PetProfile::new(vec![16, 40, 64]);
    println!("\nafter {deadline} ticks (5% loss), PET layers decodable per class:");
    for (ci, class) in classes.iter().enumerate() {
        let mut layer_counts = vec![0usize; pet.layer_count() + 1];
        for (node, c) in &members {
            if *c != ci {
                continue;
            }
            let pos = net.matrix().position_of(*node).expect("member");
            let rank = (report.progress[pos] * total_packets as f64).round() as usize;
            layer_counts[pet.layers_decodable(rank)] += 1;
        }
        println!(
            "  {:<6} layers [none, preview, standard, full] = {:?}",
            class.name, layer_counts
        );
    }

    println!(
        "\noverall: {:.1}% fully decoded, mean progress {:.1}%",
        100.0 * report.completion_fraction(),
        100.0 * report.mean_progress()
    );
}
