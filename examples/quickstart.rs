//! Quickstart: build a curtain overlay, broadcast a file with RLNC, decode.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use coded_curtain::broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use coded_curtain::overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The server has bandwidth for k = 32 unit streams; every client
    // receives (and re-serves) d = 4 of them.
    let config = OverlayConfig::new(32, 4);
    let mut net = CurtainNetwork::new(config).expect("valid config");
    let mut rng = StdRng::seed_from_u64(2005);

    // 200 clients join through the hello protocol.
    let nodes: Vec<_> = (0..200).map(|_| net.join(&mut rng)).collect();
    println!("curtain built: k = {}, d = {}, {} nodes", config.k, config.d, net.len());

    // Every node enjoys full edge connectivity d from the server —
    // by the network-coding theorem, that is its achievable broadcast rate.
    let worst = nodes
        .iter()
        .filter_map(|&n| net.connectivity_of(n))
        .min()
        .expect("nodes exist");
    println!("minimum connectivity across nodes: {worst} (= d, the optimum)");

    // A couple of nodes leave gracefully; one crashes and is repaired.
    net.leave(nodes[10]).expect("graceful leave");
    net.leave(nodes[55]).expect("graceful leave");
    net.fail(nodes[120]).expect("failure report");
    net.repair(nodes[120]).expect("repair");
    println!("after churn: {} nodes, still min connectivity {:?}", net.len(),
        net.min_working_connectivity().expect("nodes remain"));

    // Broadcast 64 packets of 1 KiB with random linear network coding:
    // every peer mixes what it received and passes fresh combinations on.
    let topo = TopologySpec::from_curtain(&net);
    let cfg = SessionConfig::new(Strategy::Rlnc, 64, 1024).with_max_ticks(5_000);
    let report = Session::run(&topo, &cfg, 7);

    println!(
        "broadcast complete: {:.1}% of nodes decoded all {} KiB",
        100.0 * report.completion_fraction(),
        64
    );
    println!(
        "mean completion: tick {:.0}  (p95: tick {})",
        report.mean_completion_tick().expect("completions"),
        report.completion_percentile(95.0).expect("completions"),
    );
    println!(
        "traffic: {} packets offered, {} delivered",
        report.net.offered, report.net.delivered
    );
    assert_eq!(report.completion_fraction(), 1.0, "healthy curtain must fully decode");
}
