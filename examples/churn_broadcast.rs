//! Broadcast while the network churns underneath — the paper's raison
//! d'être. Viewers join mid-stream, leave politely, crash and get spliced
//! out; the transfer never reconfigures because coded packets describe
//! themselves.
//!
//! ```text
//! cargo run --release --example churn_broadcast
//! ```

use coded_curtain::broadcast::{DynamicConfig, DynamicSession};
use coded_curtain::overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut net = CurtainNetwork::new(OverlayConfig::new(16, 3)).expect("valid config");
    for _ in 0..80 {
        net.join(&mut rng);
    }
    println!("starting broadcast to {} nodes (k = 16, d = 3)", net.len());

    let cfg = DynamicConfig::new(32, 1024)
        .with_churn(
            0.15, // joins per tick
            0.05, // graceful leaves per tick
            0.03, // failures per tick
            15,   // repair interval (ticks)
        )
        .with_loss(0.02);
    let mut session = DynamicSession::new(net, cfg, 99);

    for checkpoint in 1..=6 {
        let report = session.run(100);
        let (joins, leaves, fails, repairs) = report.churn_counts;
        println!(
            "t={:>4}: {:>3} members | decoded {:>5.1}% | progress {:>5.1}% | churn so far: +{} joins, -{} leaves, {} fails, {} repairs",
            checkpoint * 100,
            report.final_members,
            100.0 * report.completion_fraction(),
            100.0 * report.mean_progress,
            joins,
            leaves,
            fails,
            repairs,
        );
    }

    let report = session.report();
    println!(
        "\nfinal: {}/{} current members hold the complete file",
        report.completed_members, report.final_members
    );
    println!("nobody ever recomputed a route or a tree: every repair was a local");
    println!("splice, and every packet carried the coefficients to decode it.");
    assert!(report.completion_fraction() > 0.8, "churn should not sink the broadcast");
}
