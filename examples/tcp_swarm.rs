//! The whole system over real TCP sockets, in one process: coordinator,
//! source, a swarm of peers, a crash, and a repair — no simulator anywhere.
//!
//! ```text
//! cargo run --release --example tcp_swarm
//! ```

use std::time::{Duration, Instant};

use coded_curtain::net::{Coordinator, Peer, Source};
use coded_curtain::overlay::OverlayConfig;

fn main() -> std::io::Result<()> {
    // Coordinator: k = 8 threads, every peer clips d = 2.
    let coordinator = Coordinator::start(OverlayConfig::new(8, 2))?;
    println!("coordinator: {}", coordinator.addr());

    // Source: 64 KiB split into 4 generations of 16 packets x 1 KiB.
    let content: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
    let source = Source::start_with_shape(
        coordinator.addr(),
        &content,
        16,
        1024,
        Duration::from_micros(100),
    )?;
    println!(
        "source: {} generations x {} packets x {} B at {}",
        source.generations(),
        source.generation_size(),
        source.packet_len(),
        source.data_addr()
    );

    // Ten peers join; each subscribes to its 2 assigned parents over TCP,
    // recodes, and serves whoever the coordinator sends its way.
    let start = Instant::now();
    let mut peers: Vec<Peer> = (0..10)
        .map(|_| Peer::join(coordinator.addr()).expect("join"))
        .collect();
    println!("{} peers joined; members = {}", peers.len(), coordinator.members());

    // One peer crashes mid-transfer (no good-bye; sockets just die).
    std::thread::sleep(Duration::from_millis(150));
    let victim = peers.remove(4);
    println!("peer {} crashes mid-transfer …", victim.node_id());
    victim.crash();

    for peer in &peers {
        assert!(
            peer.wait_complete(Duration::from_secs(30)),
            "peer {} stuck at rank {}",
            peer.node_id(),
            peer.rank()
        );
        assert_eq!(peer.decoded_content().expect("complete"), content);
    }
    println!(
        "all {} survivors decoded {} KiB in {:.2?} (repairs executed: {})",
        peers.len(),
        content.len() / 1024,
        start.elapsed(),
        coordinator.repairs(),
    );
    println!("every repair was: child sees dead socket -> complains -> coordinator");
    println!("splices the row -> child resubscribes to the spliced-in parent.");

    for peer in peers {
        peer.leave();
    }
    println!("everyone left gracefully; members = {}", coordinator.members());
    coordinator.shutdown();
    Ok(())
}
