//! Adversarial members (§5, §7): failure, entropy-destruction, jamming.
//!
//! The same 10% cohort attacks the same overlay three different ways.
//! Failure attacks are contained (≈ random failures); entropy destruction
//! stalls descendants while looking alive; jamming corrupts almost
//! everyone downstream — the paper's open problem.
//!
//! Also demonstrates §5's defense against *coordinated* strikes: with
//! random row insertion, a flash crowd of late-joining adversaries does no
//! better than scattered random failures.
//!
//! ```text
//! cargo run --release --example adversarial
//! ```

use coded_curtain::broadcast::attacks::{pick_cohort, AttackMode};
use coded_curtain::broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use coded_curtain::overlay::adversary::{strike, Cohort};
use coded_curtain::overlay::{CurtainNetwork, InsertPolicy, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(policy: InsertPolicy, n: usize, seed: u64) -> CurtainNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net =
        CurtainNetwork::new(OverlayConfig::new(24, 3).with_insert_policy(policy)).expect("valid");
    for _ in 0..n {
        net.join(&mut rng);
    }
    net
}

fn main() {
    // ---- Part 1: the three attack modes during a broadcast -------------
    let net = build(InsertPolicy::Append, 120, 1);
    let topo = TopologySpec::from_curtain(&net);
    let mut rng = StdRng::seed_from_u64(2);
    let cohort = pick_cohort(topo.nodes, 0.10, &mut rng);
    println!("cohort: {} of {} nodes turn malicious\n", cohort.len(), topo.nodes);

    println!("{:<22} {:>10} {:>11} {:>10}", "attack", "decoded%", "corrupted%", "p95 tick");
    for (name, mode) in [
        ("none (baseline)", None),
        ("failure attack", Some(AttackMode::Fail)),
        ("entropy destruction", Some(AttackMode::EntropyDestruction)),
        ("jamming", Some(AttackMode::Jamming)),
    ] {
        let mut cfg =
            SessionConfig::new(Strategy::Rlnc, 32, 512).with_max_ticks(600);
        if let Some(m) = mode {
            cfg = cfg.with_attacks(&cohort, m);
        }
        let report = Session::run(&topo, &cfg, 3);
        println!(
            "{:<22} {:>9.1}% {:>10.1}% {:>10}",
            name,
            100.0 * report.completion_fraction(),
            100.0 * report.corruption_fraction(),
            report
                .completion_percentile(95.0)
                .map_or("-".into(), |t: u64| t.to_string()),
        );
    }

    // ---- Part 2: coordinated flash-crowd strikes vs insertion policy ---
    // 40 colluders join *consecutively* partway through the network's
    // growth, then 160 honest users join after them. Under append-only
    // insertion the colluders occupy a contiguous band of M that every
    // later row hangs from; under random insertion their rows scatter.
    println!("\ncoordinated strike by a flash crowd of 40 colluders (of 400):");
    println!("{:<28} {:>11} {:>13}", "insertion policy", "mean loss", "affected%");
    for (label, policy) in [
        ("append (vulnerable)", InsertPolicy::Append),
        ("random position (§5 fix)", InsertPolicy::RandomPosition),
    ] {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = CurtainNetwork::new(OverlayConfig::new(24, 3).with_insert_policy(policy))
            .expect("valid");
        for _ in 0..200 {
            net.join(&mut rng);
        }
        let colluders: Vec<_> = (0..40).map(|_| net.join(&mut rng)).collect();
        for _ in 0..160 {
            net.join(&mut rng);
        }
        let report = strike(&mut net, &colluders);
        println!(
            "{:<28} {:>11.3} {:>12.1}%",
            label,
            report.mean_loss,
            100.0 * report.affected_fraction
        );
    }
    // Baseline: the same number of *uniformly random* members failing.
    {
        let mut net = build(InsertPolicy::Append, 400, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let cohort = Cohort::RandomFraction(0.10).select(&net, &mut rng);
        let report = strike(&mut net, &cohort);
        println!(
            "{:<28} {:>11.3} {:>12.1}%",
            "(iid random failures)",
            report.mean_loss,
            100.0 * report.affected_fraction
        );
    }
    println!("\n(random insertion scatters the colluders' rows across M, so their");
    println!(" simultaneous failure behaves like iid random failures — §5's claim)");
}
