//! Live streaming under churn: the paper's motivating scenario.
//!
//! A "television event" is broadcast as a sequence of segments. Between
//! segments, viewers join, leave gracefully, or crash (and are repaired one
//! segment later — the repair interval). Each segment must be fully decoded
//! before its play-out deadline; we report the stall rate per segment.
//!
//! ```text
//! cargo run --release --example live_stream
//! ```

use coded_curtain::broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use coded_curtain::overlay::churn::{ChurnConfig, ChurnDriver};
use coded_curtain::overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let k = 24;
    let d = 3;
    let segment_packets = 30; // packets per segment
    let packet_len = 512;
    let segments = 12;
    // A segment of 30 packets at rate d=3 needs ~10 ticks + pipeline depth;
    // a generous real-time deadline:
    let deadline_ticks = 300;

    let mut rng = StdRng::seed_from_u64(99);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
    for _ in 0..150 {
        net.join(&mut rng);
    }
    let mut churn = ChurnDriver::new(ChurnConfig {
        join_prob: 0.8,
        leave_prob: 0.4,
        fail_prob: 0.15,
        repair_delay: 8,
    });

    println!("live stream: {segments} segments x {segment_packets} packets, deadline {deadline_ticks} ticks");
    println!("{:<9} {:>7} {:>8} {:>10} {:>10} {:>9}", "segment", "nodes", "failed", "decoded%", "stalled%", "p95 tick");

    for seg in 0..segments {
        // Viewers churn between segments (10 protocol steps each).
        churn.run(&mut net, 10, &mut rng);

        let topo = TopologySpec::from_curtain(&net);
        let cfg = SessionConfig::new(Strategy::Rlnc, segment_packets, packet_len)
            .with_loss(0.02) // ergodic failures: 2% packet loss
            .with_max_ticks(deadline_ticks);
        let report = Session::run(&topo, &cfg, 1000 + seg as u64);

        let decoded = report.completion_fraction();
        println!(
            "{:<9} {:>7} {:>8} {:>9.1}% {:>9.1}% {:>9}",
            format!("#{seg}"),
            net.len(),
            net.failed_nodes().len(),
            100.0 * decoded,
            100.0 * (1.0 - decoded),
            report
                .completion_percentile(95.0)
                .map_or("-".to_string(), |t| t.to_string()),
        );
    }

    let stats = churn.stats();
    println!(
        "\nchurn totals: {} joins, {} graceful leaves, {} failures, {} repairs",
        stats.joins, stats.leaves, stats.failures, stats.repairs
    );
    println!(
        "server handled {} control messages total",
        net.metrics().total_messages()
    );
}
