//! Live streaming on the sliding-window codec: the paper's "television
//! event" scenario served by windowed coding instead of per-segment
//! generations.
//!
//! Two views of the same story:
//!
//! 1. A live source releases one packet per tick and codes over a
//!    sliding window; viewers with heterogeneous loss decode in order.
//!    Each viewer's *window lag* — how far the live edge had moved past
//!    a packet when it finally delivered — is recorded by the codec's
//!    telemetry hook, and we print the per-viewer lag distribution. A
//!    stationary lag (p95 well under the window span) is the point of
//!    windowed coding: latency does not grow with stream length.
//! 2. The same stream pushed through a curtain overlay with churn,
//!    via the broadcast layer's `StreamSession` with
//!    `CodecKind::Window`, reporting continuity and startup latency.
//!
//! ```text
//! cargo run --release --example live_stream
//! ```

use coded_curtain::broadcast::{CodecKind, StreamConfig, StreamSession, TopologySpec};
use coded_curtain::codec::{BroadcastCodec, CodecConfig};
use coded_curtain::overlay::{CurtainNetwork, OverlayConfig};
use coded_curtain::telemetry::{HistogramSnapshot, MemorySink, SharedRecorder};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// iid drop with probability `loss`, deterministic in the rng stream.
fn lost(rng: &mut StdRng, loss: f64) -> bool {
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    u < loss
}

fn main() {
    let packets = 600usize; // stream length in source packets
    let packet_len = 256usize;
    let window = 48usize; // coding window in source packets
    let segment = 8usize; // nominal segment size (telemetry granularity)
    let rate = 2usize; // coded emissions per released packet
    let losses = [0.05f64, 0.15, 0.25, 0.35];

    println!(
        "live stream: {packets} packets x {packet_len} B, window {window}, \
         {rate} emissions/tick, {} viewers",
        losses.len()
    );
    println!();
    println!(
        "{:<8} {:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "viewer", "loss", "delivered", "lag mean", "lag p50", "lag p95", "lag max", "segments"
    );

    let data: Vec<u8> = (0..packets * packet_len).map(|i| (i % 251) as u8).collect();
    let cfg = CodecConfig::new(CodecKind::Window, segment, packet_len)
        .with_window(window)
        .with_live(true);
    let mut src = cfg.source(&data);
    let mut channels: Vec<StdRng> =
        (0..losses.len()).map(|v| StdRng::seed_from_u64(0xCAFE + v as u64)).collect();
    let mut src_rng = StdRng::seed_from_u64(7);

    // One sink and one metrics registry per viewer, so the codec's
    // `window_lag` histogram stays per-viewer.
    let sinks: Vec<MemorySink> = losses.iter().map(|_| MemorySink::new()).collect();
    let mut viewers: Vec<Box<dyn BroadcastCodec>> = losses
        .iter()
        .zip(&sinks)
        .enumerate()
        .map(|(v, (_, sink))| {
            let mut viewer = cfg.sink(data.len());
            viewer.set_telemetry(SharedRecorder::new(sink.clone()), v as u64 + 1);
            viewer
        })
        .collect();

    // Release phase plus a bounded drain for the stream's tail.
    let drain = 8 * window as u64 + 64;
    for tick in 0..packets as u64 + drain {
        src.advance_to((tick + 1).min(packets as u64));
        for _ in 0..rate {
            let Some(packet) = src.encode(&mut src_rng) else { continue };
            for ((viewer, rng), &loss) in viewers.iter_mut().zip(&mut channels).zip(&losses) {
                if lost(rng, loss) {
                    continue;
                }
                let _ = viewer.ingest(packet.clone());
            }
        }
        // Multicast ack floor: the source may drop rows the whole
        // audience has delivered (live mode slides the base regardless).
        let floor = viewers.iter().map(|v| v.progress().delivered_packets).min().unwrap_or(0);
        src.on_feedback(floor);
        if viewers.iter().all(|v| v.is_complete()) {
            break;
        }
    }

    for ((v, viewer), sink) in viewers.iter().enumerate().zip(&sinks) {
        let p = viewer.progress();
        let snap = sink.metrics().snapshot();
        let lag = snap.histograms.get("window_lag");
        let segments = snap.counters.get("generations_decoded").copied().unwrap_or(0);
        println!(
            "{:<8} {:>5.0}% {:>9.1}% {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9}",
            format!("#{v}"),
            100.0 * losses[v],
            100.0 * p.delivered_packets as f64 / packets as f64,
            lag.map_or(0.0, HistogramSnapshot::mean),
            lag.map_or(0.0, HistogramSnapshot::p50),
            lag.map_or(0.0, HistogramSnapshot::p95),
            lag.map_or(0.0, |h| h.max),
            segments,
        );
    }
    println!();
    println!(
        "(lag = packets the live edge moved past a packet before it delivered; \
         p95 staying well under the window span = no growing backlog)"
    );

    // --- The same stream over a curtain overlay with the broadcast layer.
    let (k, d) = (24, 3);
    let mut rng = StdRng::seed_from_u64(99);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
    for _ in 0..150 {
        net.join(&mut rng);
    }
    let topo = TopologySpec::from_curtain(&net);
    let stream_cfg = StreamConfig::new(12, 30, packet_len, d)
        .with_codec(CodecKind::Window)
        .with_loss(0.02);
    let report = StreamSession::run(&topo, &stream_cfg, 1000);
    println!();
    println!(
        "overlay replay (k={k}, d={d}, {} nodes, 2% loss, windowed codec): \
         continuity {:.1}%, {:.0}% flawless viewers, mean startup {} ticks",
        net.len(),
        100.0 * report.continuity(),
        100.0 * report.flawless_fraction(),
        report
            .mean_startup()
            .map_or("-".to_string(), |t| format!("{t:.1}")),
    );
}
