//! Overlay protocol benchmarks: join / leave / repair cost as the matrix
//! grows — the server-side bookkeeping the paper argues stays cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use curtain_overlay::{CurtainNetwork, CurtainServer, OverlayConfig};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::hint::black_box;

fn grown(n: usize, seed: u64) -> CurtainNetwork {
    let mut net = CurtainNetwork::new(OverlayConfig::new(32, 4)).expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..n {
        net.join(&mut rng);
    }
    net
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_join");
    for n in [100usize, 1000, 10000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let base = grown(n, 1);
            let mut rng = StdRng::seed_from_u64(2);
            b.iter_batched(
                || base.clone(),
                |mut net| black_box(net.join(&mut rng)),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_leave(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_leave");
    for n in [100usize, 1000, 10000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let base = grown(n, 3);
            let mut rng = StdRng::seed_from_u64(4);
            b.iter_batched(
                || {
                    let ids = base.node_ids();
                    (base.clone(), ids[rng.random_range(0..ids.len())])
                },
                |(mut net, id)| net.leave(black_box(id)).expect("member"),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_fail_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_fail_repair");
    for n in [100usize, 1000, 10000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let base = grown(n, 5);
            let mut rng = StdRng::seed_from_u64(6);
            b.iter_batched(
                || {
                    let ids = base.node_ids();
                    (base.clone(), ids[rng.random_range(0..ids.len())])
                },
                |(mut net, id)| {
                    net.fail(id).expect("working");
                    net.repair(black_box(id)).expect("failed");
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_hello_throughput(c: &mut Criterion) {
    // Raw protocol throughput: how fast can a coordinator admit members?
    c.bench_function("server_hello_x1000_from_5000", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut base = CurtainServer::new(OverlayConfig::new(64, 4)).expect("valid config");
        for _ in 0..5000 {
            base.hello(&mut rng);
        }
        b.iter_batched(
            || base.clone(),
            |mut server| {
                for _ in 0..1000 {
                    black_box(server.hello(&mut rng));
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_join, bench_leave, bench_fail_repair, bench_hello_throughput);
criterion_main!(benches);
