//! Codec benchmarks: encode / recode / progressive decode across
//! generation sizes — the per-packet cost model of experiment E09.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use curtain_rlnc::{Decoder, Encoder, Recoder};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::hint::black_box;

const PACKET: usize = 1024;

fn source(g: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..g)
        .map(|_| {
            let mut v = vec![0u8; PACKET];
            rng.fill(&mut v[..]);
            v
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rlnc_encode");
    for g in [16usize, 32, 64, 128] {
        let enc = Encoder::new(0, source(g, 1)).expect("valid");
        let mut rng = StdRng::seed_from_u64(2);
        group.throughput(Throughput::Bytes(PACKET as u64));
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| black_box(enc.encode(&mut rng)))
        });
    }
    group.finish();
}

fn bench_recode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rlnc_recode");
    for g in [16usize, 32, 64, 128] {
        let enc = Encoder::new(0, source(g, 3)).expect("valid");
        let mut rng = StdRng::seed_from_u64(4);
        let mut rec = Recoder::new(0, g, PACKET);
        while !rec.is_complete() {
            rec.push(enc.encode(&mut rng)).expect("valid packet");
        }
        group.throughput(Throughput::Bytes(PACKET as u64));
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| black_box(rec.recode(&mut rng)))
        });
    }
    group.finish();
}

fn bench_decode_full_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rlnc_decode_generation");
    for g in [16usize, 32, 64] {
        let enc = Encoder::new(0, source(g, 5)).expect("valid");
        let mut rng = StdRng::seed_from_u64(6);
        // Pre-generate plenty of packets so decode dominates.
        let packets: Vec<_> = (0..g * 4).map(|_| enc.encode(&mut rng)).collect();
        group.throughput(Throughput::Bytes((g * PACKET) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |b, _| {
            b.iter(|| {
                let mut dec = Decoder::new(0, g, PACKET);
                let mut i = 0;
                while !dec.is_complete() {
                    dec.push(packets[i].clone()).expect("valid packet");
                    i += 1;
                }
                black_box(dec.rank())
            })
        });
    }
    group.finish();
}

fn bench_wire_round_trip(c: &mut Criterion) {
    let enc = Encoder::new(0, source(64, 7)).expect("valid");
    let mut rng = StdRng::seed_from_u64(8);
    let p = enc.encode(&mut rng);
    c.bench_function("rlnc_wire_serialize_64_1KiB", |b| b.iter(|| black_box(p.to_wire())));
    let wire = p.to_wire();
    c.bench_function("rlnc_wire_parse_64_1KiB", |b| {
        b.iter(|| curtain_rlnc::CodedPacket::from_wire(black_box(&wire)).expect("valid"))
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_recode,
    bench_decode_full_generation,
    bench_wire_round_trip
);
criterion_main!(benches);
