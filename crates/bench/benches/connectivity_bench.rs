//! Max-flow connectivity benchmarks: per-node queries, tuple probes (the
//! defect-estimation kernel), and whole-network scans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use curtain_overlay::churn::grow_with_failures;
use curtain_overlay::{defect, CurtainNetwork, OverlayConfig, OverlayGraph};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::hint::black_box;

fn network(n: usize, p: f64, seed: u64) -> CurtainNetwork {
    let mut net = CurtainNetwork::new(OverlayConfig::new(24, 3)).expect("valid config");
    let mut rng = StdRng::seed_from_u64(seed);
    grow_with_failures(&mut net, n, p, &mut rng);
    net
}

fn bench_single_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity_single_node");
    for n in [200usize, 1000, 5000] {
        let net = network(n, 0.05, 1);
        let graph = net.graph();
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let pos = rng.random_range(0..n);
                black_box(graph.connectivity_of_position(pos))
            })
        });
    }
    group.finish();
}

fn bench_tuple_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity_tuple_probe");
    for n in [200usize, 1000, 5000] {
        let net = network(n, 0.05, 3);
        let graph = net.graph();
        let mut rng = StdRng::seed_from_u64(4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let tuple = net.matrix().sample_threads(3, &mut rng);
                black_box(graph.tuple_connectivity(&tuple))
            })
        });
    }
    group.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_graph_build");
    for n in [200usize, 1000, 5000] {
        let net = network(n, 0.05, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(OverlayGraph::from_matrix(net.matrix())))
        });
    }
    group.finish();
}

fn bench_defect_sampling(c: &mut Criterion) {
    let net = network(600, 0.05, 6);
    c.bench_function("defect_sample_100_tuples_n600", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(defect::sample(net.matrix(), 3, 100, &mut rng)))
    });
    let small = network(120, 0.05, 8);
    c.bench_function("defect_exact_k24_d2_n120", |b| {
        b.iter(|| black_box(defect::exact(small.matrix(), 2)))
    });
}

criterion_group!(
    benches,
    bench_single_connectivity,
    bench_tuple_probe,
    bench_graph_build,
    bench_defect_sampling
);
criterion_main!(benches);
