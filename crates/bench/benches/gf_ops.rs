//! Micro-benchmarks of the finite-field substrate: scalar ops, the axpy
//! kernel, matrix elimination, and Reed–Solomon encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use curtain_gf::{vec_ops, Field, Gf256, Matrix, ReedSolomon};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::hint::black_box;

fn bench_scalar_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<Gf256> = (0..1024).map(|_| Gf256::random(&mut rng)).collect();
    c.bench_function("gf256_scalar_mul_1k", |b| {
        b.iter(|| {
            let mut acc = Gf256::ONE;
            for &x in &xs {
                if !x.is_zero() {
                    acc = acc.mul(black_box(x));
                }
            }
            acc
        })
    });
    c.bench_function("gf256_scalar_inv_1k", |b| {
        b.iter(|| {
            let mut acc = Gf256::ZERO;
            for &x in &xs {
                if !x.is_zero() {
                    acc = acc.add(x.inv());
                }
            }
            acc
        })
    });
}

fn bench_axpy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("gf256_axpy");
    for size in [256usize, 1024, 4096, 16384] {
        let src: Vec<u8> = (0..size).map(|_| rng.random()).collect();
        let mut dst: Vec<u8> = (0..size).map(|_| rng.random()).collect();
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| vec_ops::axpy(black_box(&mut dst), 0xA7, black_box(&src)))
        });
    }
    group.finish();
}

fn bench_matrix(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("gf256_matrix_rref");
    for n in [16usize, 32, 64] {
        let mut m = Matrix::<Gf256>::zero(n, n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, Gf256::random(&mut rng));
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| m.clone().rref())
        });
    }
    group.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let rs = ReedSolomon::new(8, 24);
    let data: Vec<Vec<u8>> = (0..8)
        .map(|_| {
            let mut v = vec![0u8; 1024];
            rng.fill(&mut v[..]);
            v
        })
        .collect();
    c.bench_function("rs_encode_8of24_1KiB", |b| b.iter(|| rs.encode(black_box(&data))));
    let shares = rs.encode(&data);
    let picked: Vec<(usize, Vec<u8>)> =
        [3usize, 9, 11, 15, 17, 20, 21, 23].iter().map(|&i| (i, shares[i].clone())).collect();
    c.bench_function("rs_decode_8of24_1KiB", |b| {
        b.iter(|| rs.decode(black_box(&picked)).expect("decodes"))
    });
}

criterion_group!(benches, bench_scalar_ops, bench_axpy, bench_matrix, bench_reed_solomon);
criterion_main!(benches);
