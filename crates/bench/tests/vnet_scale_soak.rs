//! The vnet-scale soak CI runs: a four-round churn soak of real-protocol
//! peers in one process, on the virtual clock.
//!
//! Env knobs, mirroring the TCP soaks:
//!
//! * `CURTAIN_VNET_PEERS` — swarm size (default 200; CI runs 1000);
//! * `CURTAIN_VNET_SEED` — scenario seed (default `0x522`);
//! * `CURTAIN_VNET_JOURNAL` — when set, the world's event journal is
//!   written there. CI runs the soak twice into two files and requires
//!   `cmp` to find them byte-identical — the vnet's determinism
//!   contract, checked end-to-end on a full-size swarm.

use curtain_bench::exp::e22::{churn_soak_with_journal, ChurnParams};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[test]
fn churn_soak_at_scale_heals_and_journals() {
    let peers = env_u64("CURTAIN_VNET_PEERS", 200) as usize;
    let seed = env_u64("CURTAIN_VNET_SEED", 0x522);
    let params = ChurnParams {
        peers,
        fanout: 8,
        reserve: 2,
        churn_rounds: 4,
        churn_frac: 0.05,
        loss: 0.01,
    };
    let (out, journal) = churn_soak_with_journal(&params, seed);
    println!(
        "vnet soak: peers={peers} seed={seed:#x} defect_p={:.4} repairs={} \
         gave_up={} frames_lost={} virtual_ms={:.0} journal_lines={}",
        out.defect_p,
        out.repairs,
        out.gave_up,
        out.frames_lost,
        out.virtual_ms,
        journal.len()
    );
    assert!(out.all_complete, "swarm never drained: {out:?}");
    assert_eq!(out.gave_up, 0, "repair gave up: {out:?}");
    assert!(out.defect_p > 0.0, "churn left no defect trace: {out:?}");
    assert!(out.defect_p < 0.2, "defect probability out of band: {out:?}");
    assert!(out.repairs > 0, "no repair episode ran: {out:?}");

    if let Ok(path) = std::env::var("CURTAIN_VNET_JOURNAL") {
        let mut text = journal.join("\n");
        text.push('\n');
        std::fs::write(&path, text).expect("write journal");
        println!("journal written to {path}");
    }
}
