//! End-to-end check of the `--trace` pipeline: an arrival process streams
//! `DefectSample` events to a JSONL file, and the offline replay must
//! reconstruct a defect-over-time curve whose steady-state mean agrees
//! with the `curtain-analysis` drift prediction (Theorem 4).

use curtain_analysis::drift::DriftParams;
use curtain_bench::trace::{self, Trace};
use curtain_overlay::{defect, CurtainNetwork, OverlayConfig};
use curtain_telemetry::Event;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn replayed_defect_curve_matches_drift_prediction() {
    // e01's N-sweep configuration — comfortably inside the stable regime,
    // so `theorem4_bound()` exists.
    let (k, d, p) = (32usize, 2usize, 0.02f64);
    let arrivals = 500u64;
    let dir = std::env::temp_dir().join("curtain_trace_replay_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drift.jsonl");

    // Write: the §4 arrival process, one exact defect checkpoint per
    // arrival — the same emission path `e01`/`e03`/`e04 --trace` use.
    {
        let t = Trace::to_path(&path).unwrap();
        let r = t.recorder();
        let mut rng = StdRng::seed_from_u64(41);
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).unwrap();
        for arrival in 1..=arrivals {
            net.join_with_failure_prob(p, &mut rng);
            let counts = defect::exact(net.matrix(), d);
            r.set_time(arrival);
            r.record(&Event::DefectSample {
                defect: counts.total_defect(),
                tuples: counts.inspected,
            });
        }
    } // drop flushes the file

    // Read back and replay.
    let events = trace::read_trace_file(&path).unwrap();
    assert_eq!(events.len(), arrivals as usize);
    assert!(events.windows(2).all(|w| w[0].at < w[1].at), "timestamps not monotone");
    let curve = trace::replay_defect(&events);
    assert_eq!(curve.len(), arrivals as usize);
    // B/A is bounded by d (every tuple fully defective).
    assert!(curve.iter().all(|&(_, b)| (0.0..=d as f64).contains(&b)));

    // Cross-check: after burn-in, the mean defect fraction must sit near
    // the drift equilibrium a₁ ≈ (1+ε)·p·d. The process is a random walk
    // around that root, so the bracket is deliberately generous.
    let steady = trace::steady_state_mean(&curve, 0.4).expect("non-empty tail");
    let bound = DriftParams::new(p, d, k).theorem4_bound().expect("subcritical parameters");
    assert!(
        steady <= 2.5 * bound + 0.05,
        "steady-state defect {steady:.4} far above drift bound {bound:.4}"
    );
    assert!(
        steady >= 0.05 * bound,
        "steady-state defect {steady:.4} implausibly below drift bound {bound:.4}"
    );
    std::fs::remove_file(&path).unwrap();
}

/// Full-binary check of `e04_collapse --trace` (slow: run with
/// `cargo test --release -p curtain-bench -- --ignored`).
#[test]
#[ignore = "runs the full e04 binary; minutes in debug builds"]
fn e04_collapse_trace_flag_produces_replayable_jsonl() {
    let dir = std::env::temp_dir().join("curtain_trace_replay_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e04.jsonl");
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_e04_collapse"))
        .args(["--trace", path.to_str().unwrap()])
        .status()
        .expect("launch e04_collapse");
    assert!(status.success());
    let events = trace::read_trace_file(&path).unwrap();
    let curve = trace::replay_defect(&events);
    assert!(!curve.is_empty(), "no DefectSample events in the e04 trace");
    assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0), "timestamps not monotone");
    // At stress level p = 0.36 the traced trials end at (or near) full
    // collapse: the curve must actually visit high-defect territory.
    let peak = curve.iter().map(|&(_, b)| b).fold(0.0f64, f64::max);
    assert!(peak > 0.5, "collapse trace never exceeded defect {peak:.3}");
    std::fs::remove_file(&path).unwrap();
}
