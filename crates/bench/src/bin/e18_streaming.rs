//! E18 — live streaming continuity: the §1 synchronous scenario across
//! topologies and loss levels.
//!
//! Startup latency is the §6 delay story in its user-visible form: a deep
//! curtain makes late rows wait; the random-graph variant starts everyone
//! almost immediately. Continuity (segments played on time) shows RLNC's
//! loss resilience with real play-out deadlines.

use curtain_bench::{runtime, stats, table::Table};
use curtain_broadcast::{StreamConfig, StreamSession, TopologySpec};
use curtain_overlay::random_graph::RandomGraphOverlay;
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 8;
const D: usize = 2;
const SEGMENTS: usize = 10;
const GEN_SIZE: usize = 12;

fn curtain_topo(n: usize, seed: u64) -> TopologySpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
    for _ in 0..n {
        net.join(&mut rng);
    }
    TopologySpec::from_curtain(&net)
}

fn rg_topo(n: usize, seed: u64) -> TopologySpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rg = RandomGraphOverlay::new(K, D);
    for _ in 0..n {
        rg.join(&mut rng);
    }
    TopologySpec::from_random_graph(&rg)
}

fn main() {
    runtime::banner(
        "E18 / live streaming",
        "startup latency tracks topology depth; continuity survives loss",
    );
    let scale = runtime::scale();
    let trials = 4 * scale;

    let t = Table::new(&[
        "N",
        "topology",
        "loss",
        "startup (mean)",
        "continuity",
        "flawless%",
    ]);
    t.header();
    for &n in &[50usize, 150, 300] {
        for (name, is_curtain) in [("curtain", true), ("random graph", false)] {
            for &loss in &[0.0f64, 0.05, 0.15] {
                let mut startup = Vec::new();
                let mut continuity = Vec::new();
                let mut flawless = Vec::new();
                for trial in 0..trials {
                    let seed = 1800 + trial;
                    let topo = if is_curtain {
                        curtain_topo(n, seed)
                    } else {
                        rg_topo(n, seed)
                    };
                    let cfg = StreamConfig::new(SEGMENTS, GEN_SIZE, 64, D).with_loss(loss);
                    let report = StreamSession::run(&topo, &cfg, seed ^ 0x18);
                    if let Some(s) = report.mean_startup() {
                        startup.push(s);
                    }
                    continuity.push(report.continuity());
                    flawless.push(report.flawless_fraction());
                }
                t.row(&[
                    n.to_string(),
                    name.into(),
                    format!("{loss:.2}"),
                    format!("{:.0}", stats::mean(&startup)),
                    format!("{:.1}%", 100.0 * stats::mean(&continuity)),
                    format!("{:.1}%", 100.0 * stats::mean(&flawless)),
                ]);
            }
        }
    }
    println!();
    println!("expected shape: curtain startup grows with N (linear pipeline depth;");
    println!("late rows miss early segments — exactly the §6 trade-off), random");
    println!("graph stays flat and keeps ~100% continuity; moderate loss degrades");
    println!("continuity gracefully rather than collapsing it.");
}
