//! E10 — server/coordination load: "effective peer-to-peer overlay networks
//! can be designed and maintained with a very small data load on the
//! server" (§7).
//!
//! Every protocol operation costs O(d) control messages, independent of N;
//! data bandwidth stays k streams regardless of the population. We measure
//! messages per operation across N, and the repair fan-out.

use curtain_bench::{runtime, stats, table::Table};
use curtain_overlay::churn::{ChurnConfig, ChurnDriver};
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    runtime::banner(
        "E10 / server load",
        "control messages per join/leave/repair are O(d), independent of N",
    );
    let scale = runtime::scale();

    println!("-- messages per operation as the network grows (k = 32, d = 4) --");
    let t = Table::new(&["N", "total msgs", "ops", "msgs/op", "msgs/op/d"]);
    t.header();
    for &n in &[100usize, 400, 1600, 6400] {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = CurtainNetwork::new(OverlayConfig::new(32, 4)).expect("valid config");
        for _ in 0..n {
            net.join(&mut rng);
        }
        let before = net.metrics();
        let mut driver = ChurnDriver::new(ChurnConfig {
            join_prob: 0.4,
            leave_prob: 0.3,
            fail_prob: 0.1,
            repair_delay: 5,
        });
        driver.run(&mut net, 500 * scale, &mut rng);
        let after = net.metrics();
        let msgs = after.total_messages() - before.total_messages();
        let stats_d = driver.stats();
        let ops = stats_d.joins + stats_d.leaves + stats_d.failures + stats_d.repairs;
        t.row(&[
            n.to_string(),
            msgs.to_string(),
            ops.to_string(),
            format!("{:.2}", msgs as f64 / ops as f64),
            format!("{:.2}", msgs as f64 / ops as f64 / 4.0),
        ]);
    }

    println!();
    println!("-- repair fan-out: complaints (children) per failure vs d --");
    let t = Table::new(&["d", "k", "mean complaints", "max", "redirects/repair"]);
    t.header();
    for &d in &[2usize, 3, 4, 6] {
        let k = 8 * d;
        let mut rng = StdRng::seed_from_u64(10 + d as u64);
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
        for _ in 0..500 {
            net.join(&mut rng);
        }
        let ids = net.node_ids();
        let mut complaints = Vec::new();
        for (i, &id) in ids.iter().enumerate().take(100 * scale as usize) {
            if i % 3 != 0 {
                continue;
            }
            let c = net.server_mut().report_failure(id).expect("working");
            complaints.push(c as f64);
            net.repair(id).expect("failed");
        }
        t.row(&[
            d.to_string(),
            k.to_string(),
            format!("{:.2}", stats::mean(&complaints)),
            format!("{:.0}", stats::percentile(&complaints, 100.0)),
            d.to_string(), // a repair always redirects exactly d threads
        ]);
    }
    println!();
    println!("expected shape: msgs/op is flat across N (the server's bookkeeping");
    println!("cost does not grow with the population) and msgs/op/d is ~constant");
    println!("across d; complaints per failure ~ d (each thread has one child).");
    println!("With Theorem 5, a server of bandwidth k supports a population");
    println!("exponential in k/d^3 before its curtain can collapse.");
}
