//! E19 — §7 incentive economics: "the system may be self-sustaining … if
//! each node is required to reliably transmit as many bytes as it
//! consumes."
//!
//! The curtain makes this structurally true: every node receives `d` unit
//! streams and serves `d` unit streams — *except* the current frontier
//! (the ≤ k bottom holders whose threads hang free). We measure the
//! upload/download ratio distribution and show the unfair fraction decays
//! like k/N as the network grows: the incentive requirement is met by
//! construction, not enforcement.

use curtain_bench::{runtime, stats, table::Table};
use curtain_broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 16;
const D: usize = 3;

fn main() {
    runtime::banner(
        "E19 / upload-download fairness",
        "all but the <= k frontier nodes repay their download 1:1 by construction",
    );
    let scale = runtime::scale();
    let trials = 4 * scale;

    let t = Table::new(&[
        "N",
        "mean ratio",
        "median",
        "fair (>=0.9)",
        "frontier bound k/N",
    ]);
    t.header();
    for &n in &[30usize, 60, 120, 240, 480] {
        let mut ratios_all = Vec::new();
        let mut fair = Vec::new();
        for trial in 0..trials {
            let seed = 1900 + trial;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
            for _ in 0..n {
                net.join(&mut rng);
            }
            let topo = TopologySpec::from_curtain(&net);
            // Long enough that steady-state relaying dominates startup.
            let cfg = SessionConfig::new(Strategy::Rlnc, 32, 64).with_max_ticks(400);
            let report = Session::run(&topo, &cfg, seed ^ 0x19);
            // Zero-download victims report an infinite ratio; they carry no
            // information about repayment, so keep means/medians finite.
            ratios_all.extend(report.upload_ratios().into_iter().filter(|r| r.is_finite()));
            fair.push(report.fair_fraction(0.9));
        }
        t.row(&[
            n.to_string(),
            format!("{:.2}", stats::mean(&ratios_all)),
            format!("{:.2}", stats::percentile(&ratios_all, 50.0)),
            format!("{:.1}%", 100.0 * stats::mean(&fair)),
            format!("{:.1}%", 100.0 * (1.0 - K as f64 / n as f64).max(0.0)),
        ]);
    }
    println!();
    println!("expected shape: the median ratio is ~1 (each node serves d streams");
    println!("and consumes d); 'fair' approaches 100% as N grows because only the");
    println!("frontier (at most k nodes holding hanging threads) lacks children —");
    println!("matching the k/N bound. §7's self-sustainability precondition holds");
    println!("without any tit-for-tat enforcement.");
}
