//! E02 — Failure locality: "if a node fails then only its immediate
//! children — not its grandchildren or other nodes — suffer a loss of
//! connectivity from the server" (§1).
//!
//! Protocol: grow a healthy curtain, fail one random node, and classify
//! every other node by its relation to the failed one (child, grandchild,
//! unrelated). Report the probability of losing connectivity per class.

use curtain_bench::{runtime, stats, table::Table};
use curtain_overlay::{CurtainNetwork, NodeId, OverlayConfig};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::HashSet;

/// Children of `node`: nodes with an in-edge from it.
fn children_of(net: &CurtainNetwork, node: NodeId) -> HashSet<NodeId> {
    let pos = net.matrix().position_of(node).expect("member");
    net.matrix()
        .children_of_position(pos)
        .into_iter()
        .filter_map(|(_, c)| c)
        .collect()
}

fn main() {
    runtime::banner(
        "E02 / failure locality",
        "a failure reduces connectivity of its children at rate ~1 thread, grandchildren ~never",
    );
    let scale = runtime::scale();
    let trials = 40 * scale;
    let (k, d, n) = (24usize, 3usize, 200usize);

    let mut child_loss = Vec::new();
    let mut grandchild_loss = Vec::new();
    let mut other_loss = Vec::new();
    let mut child_lost_threads = Vec::new();
    let mut rng = StdRng::seed_from_u64(2024);

    for trial in 0..trials {
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
        for _ in 0..n {
            net.join(&mut rng);
        }
        let ids = net.node_ids();
        let victim = ids[rng.random_range(0..ids.len())];
        let children = children_of(&net, victim);
        let grandchildren: HashSet<NodeId> = children
            .iter()
            .flat_map(|&c| children_of(&net, c))
            .filter(|g| !children.contains(g) && *g != victim)
            .collect();

        let before: Vec<(NodeId, usize)> = ids
            .iter()
            .filter(|&&id| id != victim)
            .map(|&id| (id, net.connectivity_of(id).expect("working")))
            .collect();
        net.fail(victim).expect("working victim");
        for (id, conn_before) in before {
            let conn_after = net.connectivity_of(id).expect("still working");
            let lost = conn_before.saturating_sub(conn_after);
            let bucket = if children.contains(&id) {
                child_lost_threads.push(lost as f64);
                &mut child_loss
            } else if grandchildren.contains(&id) {
                &mut grandchild_loss
            } else {
                &mut other_loss
            };
            bucket.push(if lost > 0 { 1.0 } else { 0.0 });
        }
        let _ = trial;
    }

    let t = Table::new(&["relation", "samples", "P(any loss)", "mean threads lost"]);
    t.header();
    for (name, data, lost) in [
        ("child", &child_loss, Some(&child_lost_threads)),
        ("grandchild", &grandchild_loss, None),
        ("unrelated", &other_loss, None),
    ] {
        t.row(&[
            name.to_string(),
            data.len().to_string(),
            format!("{:.4}", stats::mean(data)),
            lost.map_or("-".into(), |l| format!("{:.3}", stats::mean(l))),
        ]);
    }
    println!();
    println!("expected shape: children lose ~1 thread with high probability;");
    println!("grandchildren and unrelated nodes essentially never lose anything");
    println!("(random {k}-thread curtains are expanders: flow reroutes around the hole).");
}
