//! E06 — §6: delay vs cycles.
//!
//! The acyclic curtain has delay linear in N; inserting nodes into random
//! *edges* (the §6 variant) makes the overlay an expander with logarithmic
//! delay, at a small throughput cost from cycles. We measure (a) hop-depth
//! distributions of both topologies as N grows, and (b) end-to-end decode
//! times in the simulated network.

use curtain_bench::{runtime, stats, table::Table};
use curtain_broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use curtain_overlay::forest::ForestOverlay;
use curtain_overlay::random_graph::RandomGraphOverlay;
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 8;
const D: usize = 2;

fn curtain_depths(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
    for _ in 0..n {
        net.join(&mut rng);
    }
    net.graph()
        .depths()
        .into_iter()
        .skip(1) // server
        .flatten()
        .map(|d| d as f64)
        .collect()
}

fn random_graph_depths(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rg = RandomGraphOverlay::new(K, D);
    for _ in 0..n {
        rg.join(&mut rng);
    }
    rg.depths()
        .into_iter()
        .skip(1)
        .flatten()
        .map(|d| d as f64)
        .collect()
}

fn forest_depths(n: usize) -> Vec<f64> {
    // d interior-disjoint trees; fanout k keeps per-node upload at k·(1/d)
    // stream units — the same total bandwidth budget as the curtain.
    let mut f = ForestOverlay::new(D, K);
    for _ in 0..n {
        f.join();
    }
    f.content_depths().into_iter().map(|d| d as f64).collect()
}

fn main() {
    runtime::banner(
        "E06 / delay vs cycles",
        "curtain delay ~ linear in N; random-edge insertion delay ~ log N",
    );
    let scale = runtime::scale();

    println!("-- hop depth from the server (k = {K}, d = {D}) --");
    let t = Table::new(&[
        "N",
        "curtain mean",
        "curtain max",
        "randgraph mean",
        "randgraph max",
        "forest mean",
        "forest max",
    ]);
    t.header();
    for &n in &[100usize, 200, 400, 800, 1600] {
        let c: Vec<f64> = (0..scale).flat_map(|i| curtain_depths(n, 10 + i)).collect();
        let r: Vec<f64> = (0..scale).flat_map(|i| random_graph_depths(n, 20 + i)).collect();
        let f: Vec<f64> = forest_depths(n);
        t.row(&[
            n.to_string(),
            format!("{:.1}", stats::mean(&c)),
            format!("{:.0}", stats::percentile(&c, 100.0)),
            format!("{:.1}", stats::mean(&r)),
            format!("{:.0}", stats::percentile(&r, 100.0)),
            format!("{:.1}", stats::mean(&f)),
            format!("{:.0}", stats::percentile(&f, 100.0)),
        ]);
    }
    println!();
    println!("(curtain mean depth ~ N*d/(2k) = N/{}; random graph and the", 2 * K / D);
    println!(" SplitStream-style forest of d interior-disjoint trees ~ log N)");

    println!();
    println!("-- end-to-end decode time, RLNC broadcast of 16 packets --");
    let t = Table::new(&["N", "topology", "mean tick", "p95 tick", "decoded%"]);
    t.header();
    for &n in &[100usize, 200, 400] {
        let cfg = SessionConfig::new(Strategy::Rlnc, 16, 64).with_max_ticks(20_000);
        // Curtain.
        let mut rng = StdRng::seed_from_u64(30);
        let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
        for _ in 0..n {
            net.join(&mut rng);
        }
        let report = Session::run(&TopologySpec::from_curtain(&net), &cfg, 31);
        t.row(&[
            n.to_string(),
            "curtain".into(),
            format!("{:.0}", report.mean_completion_tick().unwrap_or(f64::NAN)),
            report.completion_percentile(95.0).map_or("-".into(), |t| t.to_string()),
            format!("{:.1}%", 100.0 * report.completion_fraction()),
        ]);
        // Random graph.
        let mut rng = StdRng::seed_from_u64(32);
        let mut rg = RandomGraphOverlay::new(K, D);
        for _ in 0..n {
            rg.join(&mut rng);
        }
        let report = Session::run(&TopologySpec::from_random_graph(&rg), &cfg, 33);
        t.row(&[
            n.to_string(),
            "random graph".into(),
            format!("{:.0}", report.mean_completion_tick().unwrap_or(f64::NAN)),
            report.completion_percentile(95.0).map_or("-".into(), |t| t.to_string()),
            format!("{:.1}%", 100.0 * report.completion_fraction()),
        ]);
    }
    println!();
    println!("expected shape: curtain decode time grows ~linearly with N (pipeline");
    println!("depth dominates); random-graph decode time grows ~logarithmically.");
    println!("Both decode 100% — cycles cost delay-spread throughput, not capacity.");
}
