//! E11 — §5 heterogeneity: DSL/cable/T1 users coexist in one curtain; with
//! priority encoding, received quality scales with purchased bandwidth.

use curtain_bench::{runtime, stats, table::Table};
use curtain_broadcast::heterogeneous::{
    build_heterogeneous_curtain, BandwidthClass, PetProfile,
};
use curtain_broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    runtime::banner(
        "E11 / heterogeneous users + priority encoding",
        "connectivity (= rate) tracks each class's degree; PET layers follow",
    );
    let scale = runtime::scale();
    let trials = 5 * scale;
    let k = 32;
    let classes = [
        BandwidthClass { name: "DSL", degree: 2, count: 60 },
        BandwidthClass { name: "cable", degree: 4, count: 30 },
        BandwidthClass { name: "T1", degree: 8, count: 10 },
    ];
    let total_packets = 64usize;
    let deadline = 32u64;
    let pet = PetProfile::new(vec![16, 40, 64]);

    let mut conn = vec![Vec::new(); classes.len()];
    let mut layers = vec![Vec::new(); classes.len()];
    let mut full = vec![Vec::new(); classes.len()];
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(1100 + trial);
        let (net, members) =
            build_heterogeneous_curtain(k, &classes, &mut rng).expect("valid parameters");
        let topo = TopologySpec::from_curtain(&net);
        let cfg = SessionConfig::new(Strategy::Rlnc, total_packets, 512)
            .with_loss(0.05)
            .with_max_ticks(deadline);
        let report = Session::run(&topo, &cfg, 1200 + trial);
        for (node, ci) in &members {
            conn[*ci].push(net.connectivity_of(*node).expect("working") as f64);
            let pos = net.matrix().position_of(*node).expect("member");
            let rank = (report.progress[pos] * total_packets as f64).round() as usize;
            layers[*ci].push(pet.layers_decodable(rank) as f64);
            full[*ci].push(if report.completed_at[pos].is_some() { 1.0 } else { 0.0 });
        }
    }

    let t = Table::new(&[
        "class",
        "degree",
        "mean connectivity",
        "mean PET layers",
        "full decode%",
    ]);
    t.header();
    for (ci, class) in classes.iter().enumerate() {
        t.row(&[
            class.name.into(),
            class.degree.to_string(),
            format!("{:.2}", stats::mean(&conn[ci])),
            format!("{:.2} / {}", stats::mean(&layers[ci]), pet.layer_count()),
            format!("{:.1}%", 100.0 * stats::mean(&full[ci])),
        ]);
    }
    println!();
    println!("expected shape: mean connectivity ~ class degree (the curtain serves");
    println!("each user at its own bandwidth); PET layers and full-decode rate");
    println!("increase strictly with the class degree at a fixed deadline.");
}
