//! E15 — the decentralized variant (§3/§7): gossip joins vs the central
//! hello protocol.
//!
//! "The specifics of the protocol are less important than the topological
//! structure of the resulting overlay network." We test exactly that: build
//! overlays by random-walk gossip at several walk lengths and compare their
//! structure (thread-usage uniformity, connectivity, defect under failures)
//! against the centralized builder.

use curtain_bench::{runtime, stats, table::Table};
use curtain_overlay::gossip::{gossip_join, GossipConfig};
use curtain_overlay::{defect, CurtainNetwork, NodeStatus, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 16;
const D: usize = 3;
const N: usize = 250;
const P_FAIL: f64 = 0.05;

struct Row {
    label: String,
    thread_cv: Vec<f64>,
    defect: Vec<f64>,
    min_conn: Vec<f64>,
    tracker_fallback: Vec<f64>,
}

fn build(
    walk: Option<usize>,
    seed: u64,
) -> (CurtainNetwork, f64 /* fallback fraction */) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
    let mut fallback = 0usize;
    let mut slots = 0usize;
    for _ in 0..N {
        match walk {
            None => {
                net.join_with_failure_prob(P_FAIL, &mut rng);
            }
            Some(len) => {
                let cfg = GossipConfig { walk_length: len, max_attempts: 48 };
                let (id, s) = gossip_join(&mut net, cfg, &mut rng);
                fallback += s.fallback_slots;
                slots += D;
                // Match the centralized failure process.
                use rand::RngExt as _;
                if rng.random_bool(P_FAIL) {
                    let _ = net.server_mut().report_failure(id);
                }
            }
        }
    }
    (net, fallback as f64 / slots.max(1) as f64)
}

fn main() {
    runtime::banner(
        "E15 / decentralized (gossip) joins",
        "gossip-built overlays match the centralized topology statistics",
    );
    let scale = runtime::scale();
    let trials = 5 * scale;

    let mut rows: Vec<Row> = [
        ("centralized".to_string(), None),
        ("gossip walk=2".to_string(), Some(2)),
        ("gossip walk=8".to_string(), Some(8)),
        ("gossip walk=32".to_string(), Some(32)),
        ("gossip walk=128".to_string(), Some(128)),
    ]
    .into_iter()
    .map(|(label, walk)| {
        let mut row = Row {
            label,
            thread_cv: vec![],
            defect: vec![],
            min_conn: vec![],
            tracker_fallback: vec![],
        };
        for trial in 0..trials {
            let (net, fallback) = build(walk, 1500 + trial);
            // Thread usage uniformity: coefficient of variation of
            // per-thread membership counts.
            let mut counts = vec![0f64; K];
            for r in net.matrix().rows() {
                for &t in r.threads() {
                    counts[t as usize] += 1.0;
                }
            }
            row.thread_cv.push(stats::std_dev(&counts) / stats::mean(&counts));
            // Defect fraction under the standing failures.
            let mut rng = StdRng::seed_from_u64(7000 + trial);
            let est = defect::sample(net.matrix(), D, 300, &mut rng);
            row.defect.push(est.total_defect_fraction());
            // Worst working connectivity in a failure-free copy... here:
            // among working nodes as-is.
            let graph = net.graph();
            let min = net
                .matrix()
                .rows()
                .iter()
                .enumerate()
                .filter(|(_, r)| r.status() == NodeStatus::Working)
                .map(|(pos, _)| graph.connectivity_of_position(pos))
                .min()
                .unwrap_or(0);
            row.min_conn.push(min as f64);
            row.tracker_fallback.push(fallback);
        }
        row
    })
    .collect();

    let t = Table::new(&[
        "builder",
        "thread-use CV",
        "defect B/A",
        "p*d ref",
        "min conn",
        "tracker slots%",
    ]);
    t.header();
    for row in rows.drain(..) {
        t.row(&[
            row.label,
            format!("{:.3}", stats::mean(&row.thread_cv)),
            format!("{:.4}", stats::mean(&row.defect)),
            format!("{:.4}", P_FAIL * D as f64),
            format!("{:.1}", stats::mean(&row.min_conn)),
            format!("{:.1}%", 100.0 * stats::mean(&row.tracker_fallback)),
        ]);
    }
    println!();
    println!("expected shape: longer walks drive thread-use CV and defect toward");
    println!("the centralized values while the tracker-fallback share shrinks —");
    println!("the topology (hence all of §4's guarantees) survives full");
    println!("decentralization, as §3/§7 claim.");
}
