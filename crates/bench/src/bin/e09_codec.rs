//! E09 — practical network coding cost model ([CWJ03] via §1/§3): codec
//! throughput vs generation size / packet size, header overhead, field-size
//! ablation (GF(2⁸) vs GF(2¹⁶)), and the redundant-packet rate.

use curtain_bench::{runtime, table::Table};
use curtain_gf::{Field, Gf256, Gf2p16};
use curtain_rlnc::generic::{GenericDecoder, GenericEncoder};
use curtain_rlnc::{Decoder, Encoder, Recoder};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::time::Instant;

fn data(g: usize, s: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..g)
        .map(|_| {
            let mut v = vec![0u8; s];
            rng.fill(&mut v[..]);
            v
        })
        .collect()
}

fn mib_per_s(bytes: usize, elapsed_s: f64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0) / elapsed_s
}

fn main() {
    runtime::banner(
        "E09 / codec throughput and overhead",
        "per-packet cost ~ g*s GF ops; header overhead = g bytes; GF(2^16) halves redundancy, costs speed",
    );
    let scale = runtime::scale();
    let reps = 200 * scale as usize;

    println!("-- GF(2^8) pipeline throughput (MiB/s of payload) --");
    let t = Table::new(&["g", "s", "encode", "recode", "decode", "hdr overhead%"]);
    t.header();
    for &(g, s) in &[(16usize, 1024usize), (32, 1024), (64, 1024), (128, 1024), (64, 256), (64, 4096)] {
        let src = data(g, s, 1);
        let enc = Encoder::new(0, src.clone()).expect("valid");
        let mut rng = StdRng::seed_from_u64(2);

        let start = Instant::now();
        let mut packets = Vec::with_capacity(reps);
        for _ in 0..reps {
            packets.push(enc.encode(&mut rng));
        }
        let t_enc = start.elapsed().as_secs_f64();

        // Recode from a full-rank buffer.
        let mut rec = Recoder::new(0, g, s);
        for p in packets.iter().take(4 * g) {
            let _ = rec.push(p.clone());
        }
        let start = Instant::now();
        for _ in 0..reps {
            let _ = rec.recode(&mut rng);
        }
        let t_rec = start.elapsed().as_secs_f64();

        // Decode: g innovative packets, repeated.
        let decode_rounds = (reps / g).max(1);
        let start = Instant::now();
        for r in 0..decode_rounds {
            let mut dec = Decoder::new(0, g, s);
            let mut i = 0;
            while !dec.is_complete() {
                let p = &packets[(r * g + i) % packets.len()];
                let _ = dec.push(p.clone());
                i += 1;
            }
        }
        let t_dec = start.elapsed().as_secs_f64();

        let overhead = 100.0 * g as f64 / s as f64;
        t.row(&[
            g.to_string(),
            s.to_string(),
            format!("{:.0}", mib_per_s(reps * s, t_enc)),
            format!("{:.0}", mib_per_s(reps * s, t_rec)),
            format!("{:.0}", mib_per_s(decode_rounds * g * s, t_dec)),
            format!("{overhead:.1}"),
        ]);
    }

    println!();
    println!("-- field ablation: redundant-packet probability at full rank --");
    // Feed a complete decoder extra packets; count non-innovative ones while
    // filling (the classic 1/(q-1)-ish per-step redundancy).
    let t = Table::new(&["field", "g", "redundant/decode", "theory sum 1/(q^i)", "sym enc MiB/s"]);
    t.header();
    let g = 32;
    let s = 256;
    let fill_trials = 200 * scale as usize;

    fn run_generic<F: Field>(g: usize, s: usize, trials: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src: Vec<Vec<F>> = (0..g)
            .map(|_| (0..s).map(|_| F::random(&mut rng)).collect())
            .collect();
        let enc = GenericEncoder::new(src);
        let mut redundant = 0usize;
        let start = Instant::now();
        let mut symbols = 0usize;
        for _ in 0..trials {
            let mut dec = GenericDecoder::new(g, s);
            while !dec.is_complete() {
                let p = enc.encode(&mut rng);
                symbols += s;
                if !dec.push(&p) {
                    redundant += 1;
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        (
            redundant as f64 / trials as f64,
            symbols as f64 / (1024.0 * 1024.0) / elapsed,
        )
    }

    // Expected redundant receptions over a whole decode:
    // sum_{r=0}^{g-1} (q^{r-g}) / (1 - q^{r-g}) ~ 1/(q-1) for large g.
    let theory = |q: f64| -> f64 {
        (0..g)
            .map(|r| {
                let miss = q.powi(r as i32 - g as i32);
                miss / (1.0 - miss)
            })
            .sum()
    };
    let (red8, thr8) = run_generic::<Gf256>(g, s, fill_trials, 3);
    t.row(&[
        "GF(2^8)".into(),
        g.to_string(),
        format!("{red8:.4}"),
        format!("{:.4}", theory(256.0)),
        format!("{thr8:.0}"),
    ]);
    let (red16, thr16) = run_generic::<Gf2p16>(g, s, fill_trials, 4);
    t.row(&[
        "GF(2^16)".into(),
        g.to_string(),
        format!("{red16:.4}"),
        format!("{:.4}", theory(65536.0)),
        format!("{thr16:.0} (sym=u16)"),
    ]);
    println!();
    println!("expected shape: throughput scales ~1/g per payload byte for decode;");
    println!("header overhead is g/s; GF(2^16) makes redundancy negligible at a");
    println!("large constant-factor cost — why [CWJ03] (and we) default to GF(2^8).");
}
