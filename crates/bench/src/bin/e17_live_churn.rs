//! E17 — decodability under live topology change ([CWJ03] via §1/§3).
//!
//! The static experiments freeze the overlay; here the overlay churns *while
//! the broadcast runs*: joins attach mid-stream, leaves splice, failures go
//! silent and are repaired after the §2 repair interval. Because every
//! packet carries its coefficient vector, no receiver needs to know any of
//! this happened — completion among surviving members should stay high
//! across an order of magnitude of churn intensity.

use curtain_bench::{runtime, stats, table::Table};
use curtain_broadcast::{DynamicConfig, DynamicSession};
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 16;
const D: usize = 3;
const N: usize = 60;
const CHUNKS: usize = 24;
const TICKS: u64 = 600;

fn main() {
    runtime::banner(
        "E17 / broadcast under live churn",
        "in-flight joins/leaves/failures do not break decodability (self-describing packets)",
    );
    let scale = runtime::scale();
    let trials = 5 * scale;

    let t = Table::new(&[
        "churn level",
        "joins",
        "leaves",
        "fails",
        "repairs",
        "members end",
        "decoded%",
        "progress%",
    ]);
    t.header();
    for (label, mult) in [("none", 0.0f64), ("light", 1.0), ("heavy", 4.0), ("extreme", 10.0)] {
        let mut acc: Vec<[f64; 7]> = Vec::new();
        for trial in 0..trials {
            let seed = 1700 + trial;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
            for _ in 0..N {
                net.join(&mut rng);
            }
            let cfg = DynamicConfig::new(CHUNKS, 64)
                .with_churn(0.04 * mult, 0.02 * mult, 0.01 * mult, 20)
                .with_loss(0.02);
            let mut session = DynamicSession::new(net, cfg, seed ^ 0x17);
            let report = session.run(TICKS);
            let (j, l, f, r) = report.churn_counts;
            acc.push([
                j as f64,
                l as f64,
                f as f64,
                r as f64,
                report.final_members as f64,
                report.completion_fraction(),
                report.mean_progress,
            ]);
        }
        let col = |i: usize| -> Vec<f64> { acc.iter().map(|a| a[i]).collect() };
        t.row(&[
            label.into(),
            format!("{:.0}", stats::mean(&col(0))),
            format!("{:.0}", stats::mean(&col(1))),
            format!("{:.0}", stats::mean(&col(2))),
            format!("{:.0}", stats::mean(&col(3))),
            format!("{:.0}", stats::mean(&col(4))),
            format!("{:.1}%", 100.0 * stats::mean(&col(5))),
            format!("{:.1}%", 100.0 * stats::mean(&col(6))),
        ]);
    }
    println!();
    println!("expected shape: decoded% stays near 100% at every churn level (the");
    println!("shortfall is recent joiners still catching up, visible as the gap");
    println!("between decoded% and progress%). No strategy reconfiguration ever");
    println!("happens — repairs are local splices, packets self-describe.");
}
