//! E14 — the §7 conjecture: "the probability of losing κ ≪ d threads of
//! connectivity must be about the same as the probability of losing κ
//! parents."
//!
//! The paper proves the κ = 1 case (Theorem 4) and leaves the higher
//! moments open. We test it empirically: in the §4 arrival process, compare
//! the measured distribution of per-node connectivity loss against the
//! binomial Bin(d, p) distribution of *parent* losses.

use curtain_bench::{runtime, table::Table};
use curtain_overlay::churn::grow_with_failures;
use curtain_overlay::{CurtainNetwork, NodeStatus, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn binomial_pmf(d: usize, p: f64, kappa: usize) -> f64 {
    let choose = (0..kappa).fold(1.0, |acc, i| acc * (d - i) as f64 / (i + 1) as f64);
    choose * p.powi(kappa as i32) * (1.0 - p).powi((d - kappa) as i32)
}

fn main() {
    runtime::banner(
        "E14 / the §7 higher-moment conjecture",
        "P(lose kappa threads) ~ P(lose kappa parents) = Bin(d, p) for kappa << d",
    );
    let scale = runtime::scale();
    let trials = 10 * scale;
    let (k, d, p, n) = (48usize, 6usize, 0.06f64, 400usize);

    // Measured: per working node, lost connectivity and failed parents.
    let mut loss_hist = vec![0u64; d + 1];
    let mut parent_loss_hist = vec![0u64; d + 1];
    let mut total = 0u64;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(1400 + trial);
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
        grow_with_failures(&mut net, n, p, &mut rng);
        let graph = net.graph();
        for (pos, row) in net.matrix().rows().iter().enumerate() {
            if row.status() == NodeStatus::Failed {
                continue;
            }
            let conn = graph.connectivity_of_position(pos);
            loss_hist[d - conn.min(d)] += 1;
            let failed_parents = net
                .matrix()
                .parents_of_position(pos)
                .into_iter()
                .filter(|(_, h)| {
                    h.node()
                        .map(|id| net.matrix().status_of(id) == Some(NodeStatus::Failed))
                        .unwrap_or(false)
                })
                .count();
            parent_loss_hist[failed_parents] += 1;
            total += 1;
        }
    }

    let t = Table::new(&[
        "kappa",
        "P(lose kappa)",
        "P(k par-threads)",
        "Bin(d,p)",
        "ratio",
    ]);
    t.header();
    for kappa in 0..=d.min(4) {
        let measured = loss_hist[kappa] as f64 / total as f64;
        let parents = parent_loss_hist[kappa] as f64 / total as f64;
        let theory = binomial_pmf(d, p, kappa);
        t.row(&[
            kappa.to_string(),
            format!("{measured:.5}"),
            format!("{parents:.5}"),
            format!("{theory:.5}"),
            if theory > 0.0 {
                format!("{:.2}", measured / theory)
            } else {
                "-".into()
            },
        ]);
    }
    println!();
    println!("(d = {d}, k = {k}, p = {p}, N = {n}, {total} node observations)");
    println!();
    println!("expected shape: columns 1 and 2 match (often exactly): losing kappa");
    println!("threads means exactly kappa of your own in-threads lost their parent");
    println!("— no upstream effect at ANY order, the strong form of containment.");
    println!("Bin(d,p) is the idealized distinct-parent reference; the measured");
    println!("tail sits above it because one parent can serve several of a node's");
    println!("threads (shared-parent correlation), not because damage propagates.");
}
