//! E06 — data-plane throughput: GF(256) kernel backends and codec rates.
//!
//! The measurement core lives in `curtain_bench::exp::e06` (shared with
//! `curtain-lab`'s claim-gated sweep). Two tables:
//!
//! * axpy MiB/s for every backend available on this CPU (the SIMD
//!   dispatch's win over the scalar kernel);
//! * packets/s for encode / decode / recode at the paper's `g × s` grid,
//!   with the recode column compared against a reconstruction of the
//!   pre-refactor deep-copy emit path.
//!
//! Numbers are wall-clock: run on an idle machine, compare ratios across
//! machines rather than absolute rates.

use curtain_bench::args::ExpArgs;
use curtain_bench::exp::e06::{self, CodecParams, KernelParams};
use curtain_bench::{runtime, stats, table::Table};

fn main() {
    runtime::banner(
        "E06 / data-plane throughput",
        "SIMD axpy beats scalar; snapshot recode beats the deep-copy path",
    );
    let args = ExpArgs::parse();
    let trials = 3 * args.scale();

    println!("active backend: {}", curtain_gf::kernels::active().name());
    println!();

    let t = Table::new(&["backend", "len", "axpy MiB/s", "vs scalar"]);
    t.header();
    let kernel_grid = [
        KernelParams { len: 1 << 10, passes: 4096 },
        KernelParams { len: 16 << 10, passes: 1024 },
    ];
    for params in &kernel_grid {
        let mut scalar_mean = 0.0f64;
        for (i, &backend) in e06::available_backends().iter().rev().enumerate() {
            // Reversed so Scalar (always last) is measured first and the
            // speedup column can reference it.
            let rates: Vec<f64> = (0..trials)
                .map(|trial| e06::axpy_throughput(backend, params, args.seed_or(600) + trial))
                .collect();
            let mean = stats::mean(&rates);
            if i == 0 {
                scalar_mean = mean;
            }
            t.row(&[
                backend.name().into(),
                format!("{}", params.len),
                format!("{:.0}±{:.0}", mean, stats::std_dev(&rates)),
                format!("{:.2}x", mean / scalar_mean.max(1e-9)),
            ]);
        }
    }

    println!();
    let t = Table::new(&[
        "g",
        "s",
        "encode pkt/s",
        "decode pkt/s",
        "recode pkt/s",
        "clone-path pkt/s",
        "speedup",
    ]);
    t.header();
    for &(g, s) in &[(16usize, 256usize), (16, 2048), (64, 256), (64, 2048)] {
        let params = CodecParams { g, symbol_len: s, packets: 2048.min(256 * 1024 / s) };
        let (mut enc, mut dec, mut rec, mut clone, mut speedup) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for trial in 0..trials {
            let r = e06::codec_throughput(&params, args.seed_or(600) + trial);
            enc.push(r.encode_pps);
            dec.push(r.decode_pps);
            rec.push(r.recode_pps);
            clone.push(r.recode_clone_pps);
            speedup.push(r.recode_speedup());
        }
        t.row(&[
            format!("{g}"),
            format!("{s}"),
            format!("{:.0}", stats::mean(&enc)),
            format!("{:.0}", stats::mean(&dec)),
            format!("{:.0}", stats::mean(&rec)),
            format!("{:.0}", stats::mean(&clone)),
            format!("{:.2}x", stats::mean(&speedup)),
        ]);
    }
    println!();
    println!("expected shape: SIMD backends multiply the scalar axpy rate, and");
    println!("the snapshot recode path clears the deep-copy path at every grid");
    println!("point — widening with g, where the per-packet copy is largest.");
}
