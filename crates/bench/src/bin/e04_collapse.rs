//! E04 — Theorem 5: the time before collapse grows exponentially in `k/d³`.
//!
//! The measurement cores (`overlay_collapse_time`, `chain_collapse_time`)
//! live in `curtain_bench::exp::e04`, shared with `curtain-lab`'s
//! parallel sweeps; this binary runs the two printed sweeps:
//!
//! 1. the **full overlay process** at stress-level `p`, and
//! 2. the **scalar bound chain**, which extends the sweep to `k` values
//!    the full process cannot reach.
//!
//! With `--trace <path>`, the first trial of each `k` emits exact
//! `DefectSample` events at every 8-arrival checkpoint — the raw material
//! for `curtain_bench::trace::replay_defect`'s defect-over-time curve.

use curtain_bench::args::ExpArgs;
use curtain_bench::exp::e04;
use curtain_bench::{runtime, stats, table::Table};
use curtain_telemetry::SharedRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    runtime::banner(
        "E04 / Theorem 5",
        "expected arrivals before collapse >= (1/xi1)*exp(xi2*k/d^3)",
    );
    let args = ExpArgs::parse();
    let scale = args.scale();
    let trials = 12 * scale as usize;
    let (d, p) = (2usize, 0.36f64);
    let trace = args.trace();
    // Tracing every trial would interleave independent collapse runs;
    // trace only the first trial per k (timestamps stay monotone via the
    // shared arrival clock).
    let recorder = trace.recorder();
    let mut clock = 0u64;

    println!("-- full overlay process (d = {d}, p = {p}) --");
    let t = Table::new(&["k", "k/d^3", "trials", "mean T", "ln(mean T)"]);
    t.header();
    let cap = 60_000 * scale as usize;
    let mut fit: Vec<(f64, f64)> = Vec::new();
    for &k in &[4usize, 6, 8, 10, 12] {
        let times: Vec<f64> = (0..trials)
            .filter_map(|i| {
                let tr = if i == 0 { recorder.clone() } else { SharedRecorder::null() };
                let seed = args.seed_or(100) + i as u64;
                e04::overlay_collapse_time(k, d, p, cap, seed, &tr, &mut clock)
            })
            .map(|t| t as f64)
            .collect();
        let (mean_t, ln_t) = if times.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            let m = stats::mean(&times);
            (m, m.ln())
        };
        t.row(&[
            k.to_string(),
            format!("{:.2}", k as f64 / (d * d * d) as f64),
            format!("{}/{}", times.len(), trials),
            if mean_t.is_nan() { format!(">{cap} (censored)") } else { format!("{mean_t:.0}") },
            if ln_t.is_nan() { "-".into() } else { format!("{ln_t:.2}") },
        ]);
        if ln_t.is_finite() {
            fit.push((k as f64 / (d * d * d) as f64, ln_t));
        }
    }
    println!(
        "least-squares slope of ln(T) vs k/d^3: {:.2} (positive => exponential growth)",
        stats::slope(&fit)
    );

    println!();
    println!("-- scalar bound chain (d = {d}, p = 0.15, threshold b = 0.7) --");
    let t = Table::new(&["k", "k/d^3", "mean T", "ln(mean T)"]);
    t.header();
    let chain_trials = 20 * scale as usize;
    let mut fit: Vec<(f64, f64)> = Vec::new();
    for &k in &[6usize, 12, 24, 48, 96] {
        let params =
            e04::ChainParams { k, d, p: 0.15, threshold: 0.7, max_steps: 200_000_000 };
        let mut rng = StdRng::seed_from_u64(args.seed_or(k as u64));
        let times: Vec<f64> = (0..chain_trials)
            .filter_map(|_| e04::chain_collapse_time(&params, &mut rng).map(|t| t as f64))
            .collect();
        let m = stats::mean(&times);
        t.row(&[
            k.to_string(),
            format!("{:.2}", k as f64 / (d * d * d) as f64),
            format!("{m:.0}"),
            format!("{:.2}", m.ln()),
        ]);
        fit.push((k as f64 / (d * d * d) as f64, m.ln()));
    }
    println!(
        "least-squares slope of ln(T) vs k/d^3: {:.2}",
        stats::slope(&fit)
    );
    println!();
    println!("expected shape: ln(mean T) grows ~linearly in k/d^3 in both tables");
    println!("(exponential collapse-time scaling). Full-process rows may censor at");
    println!("the cap for larger k — that IS the theorem working.");
}
