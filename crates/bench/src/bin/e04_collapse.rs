//! E04 — Theorem 5: the time before collapse grows exponentially in `k/d³`.
//!
//! Two processes are measured:
//!
//! 1. The **full overlay process** at stress-level `p`: arrivals until all
//!    `k` hanging threads are simultaneously dead (no newcomer can ever
//!    receive anything — the paper's "no thread survives" absorbing state).
//!    Thread liveness is one BFS over the live DAG per checkpoint.
//! 2. The **scalar bound chain** (`curtain-analysis::defect_chain`), which
//!    extends the sweep to `k` values the full process cannot reach.
//!
//! With `--trace <path>`, the first trial of each `k` emits exact
//! `DefectSample` events at every 8-arrival checkpoint — the raw material
//! for `curtain_bench::trace::replay_defect`'s defect-over-time curve.

use curtain_analysis::defect_chain::{DefectChain, StepModel};
use curtain_analysis::drift::DriftParams;
use curtain_bench::{runtime, stats, table::Table, trace::Trace};
use curtain_overlay::{defect, CurtainNetwork, OverlayConfig, OverlayGraph};
use curtain_telemetry::{Event, SharedRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// True iff every hanging thread's bottom holder is unreachable from the
/// server through working nodes.
fn all_threads_dead(net: &CurtainNetwork) -> bool {
    let graph = net.graph();
    let depths = graph.depths();
    (0..net.config().k).all(|t| {
        let bottom = graph.bottom_of(t as u16);
        bottom != OverlayGraph::SERVER && depths[bottom].is_none()
    })
}

/// Arrivals until full collapse (capped). When `trace` is enabled, every
/// 8-arrival checkpoint emits an exact `DefectSample` (timestamped by
/// `clock` + local arrivals, so stitched trials stay monotone).
fn overlay_collapse_time(
    k: usize,
    d: usize,
    p: f64,
    cap: usize,
    seed: u64,
    trace: &SharedRecorder,
    clock: &mut u64,
) -> Option<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
    let mut outcome = None;
    for t in 1..=cap {
        net.join_with_failure_prob(p, &mut rng);
        if t % 8 == 0 {
            if trace.is_enabled() {
                let counts = defect::exact(net.matrix(), d);
                trace.set_time(*clock + t as u64);
                trace.record(&Event::DefectSample {
                    defect: counts.total_defect(),
                    tuples: counts.inspected,
                });
            }
            if all_threads_dead(&net) {
                outcome = Some(t);
                break;
            }
        }
    }
    *clock += outcome.unwrap_or(cap) as u64;
    outcome
}

/// Least-squares slope of y on x.
fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    runtime::banner(
        "E04 / Theorem 5",
        "expected arrivals before collapse >= (1/xi1)*exp(xi2*k/d^3)",
    );
    let scale = runtime::scale();
    let trials = 12 * scale as usize;
    let (d, p) = (2usize, 0.36f64);
    let trace = Trace::from_args();
    // Tracing every trial would interleave independent collapse runs;
    // trace only the first trial per k (timestamps stay monotone via the
    // shared arrival clock).
    let recorder = trace.recorder();
    let mut clock = 0u64;

    println!("-- full overlay process (d = {d}, p = {p}) --");
    let t = Table::new(&["k", "k/d^3", "trials", "mean T", "ln(mean T)"]);
    t.header();
    let cap = 60_000 * scale as usize;
    let mut fit: Vec<(f64, f64)> = Vec::new();
    for &k in &[4usize, 6, 8, 10, 12] {
        let times: Vec<f64> = (0..trials)
            .filter_map(|i| {
                let tr = if i == 0 { recorder.clone() } else { SharedRecorder::null() };
                overlay_collapse_time(k, d, p, cap, 100 + i as u64, &tr, &mut clock)
            })
            .map(|t| t as f64)
            .collect();
        let (mean_t, ln_t) = if times.is_empty() {
            (f64::NAN, f64::NAN)
        } else {
            let m = stats::mean(&times);
            (m, m.ln())
        };
        t.row(&[
            k.to_string(),
            format!("{:.2}", k as f64 / (d * d * d) as f64),
            format!("{}/{}", times.len(), trials),
            if mean_t.is_nan() { format!(">{cap} (censored)") } else { format!("{mean_t:.0}") },
            if ln_t.is_nan() { "-".into() } else { format!("{ln_t:.2}") },
        ]);
        if ln_t.is_finite() {
            fit.push((k as f64 / (d * d * d) as f64, ln_t));
        }
    }
    println!(
        "least-squares slope of ln(T) vs k/d^3: {:.2} (positive => exponential growth)",
        slope(&fit)
    );

    println!();
    println!("-- scalar bound chain (d = {d}, p = 0.15, threshold b = 0.7) --");
    let t = Table::new(&["k", "k/d^3", "mean T", "ln(mean T)"]);
    t.header();
    let chain_trials = 20 * scale as usize;
    let mut fit: Vec<(f64, f64)> = Vec::new();
    for &k in &[6usize, 12, 24, 48, 96] {
        let params = DriftParams { p: 0.15, d, k };
        let mut rng = StdRng::seed_from_u64(k as u64);
        let times: Vec<f64> = (0..chain_trials)
            .filter_map(|_| {
                let mut chain = DefectChain::new(params, StepModel::Pessimistic);
                chain
                    .run_to_collapse(0.7, 200_000_000, &mut rng)
                    .map(|t| t as f64)
            })
            .collect();
        let m = stats::mean(&times);
        t.row(&[
            k.to_string(),
            format!("{:.2}", k as f64 / (d * d * d) as f64),
            format!("{m:.0}"),
            format!("{:.2}", m.ln()),
        ]);
        fit.push((k as f64 / (d * d * d) as f64, m.ln()));
    }
    println!(
        "least-squares slope of ln(T) vs k/d^3: {:.2}",
        slope(&fit)
    );
    println!();
    println!("expected shape: ln(mean T) grows ~linearly in k/d^3 in both tables");
    println!("(exponential collapse-time scaling). Full-process rows may censor at");
    println!("the cap for larger k — that IS the theorem working.");
}
