//! E07 — the §1 motivation: distribution-strategy shoot-out under failures.
//!
//! Same overlay, same bandwidth, same content; four ways to use it:
//! uncoded chunk gossip (routing), source-only Reed–Solomon (erasure),
//! RLNC recoding, and — as the reference line — the Edmonds tree-packing
//! capacity (the "theoretically optimal but impractical" §1 alternative).

use curtain_analysis::treepack::{greedy_pack, DiGraph};
use curtain_bench::{runtime, stats, table::Table};
use curtain_broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const K: usize = 12;
const D: usize = 3;
const N: usize = 150;
const CHUNKS: usize = 24;

fn main() {
    runtime::banner(
        "E07 / strategy comparison",
        "RLNC tracks the min-cut optimum under failures; erasure and routing degrade",
    );
    let scale = runtime::scale();
    let trials = 5 * scale;

    let t = Table::new(&[
        "fail frac",
        "strategy",
        "decoded%",
        "mean tick",
        "goodput x1e3",
    ]);
    t.header();
    for &pfail in &[0.0f64, 0.02, 0.05, 0.10, 0.20] {
        let mut decoded = vec![Vec::new(); 3];
        let mut tick = vec![Vec::new(); 3];
        let mut goodput = vec![Vec::new(); 3];
        let mut tree_counts = Vec::new();
        let mut edmonds = Vec::new();
        for trial in 0..trials {
            let seed = 500 + trial;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
            for _ in 0..N {
                net.join(&mut rng);
            }
            let mut topo = TopologySpec::from_curtain(&net);
            let kill: Vec<usize> = (0..N).filter(|_| rng.random_bool(pfail)).collect();
            topo.kill(&kill);
            for &id in &kill {
                net.fail(net.node_ids()[id]).expect("working");
            }
            // Tree packing on the live graph (routing's theoretical ceiling).
            let g = DiGraph::from_overlay(&net.graph());
            let pack = greedy_pack(&g, 0);
            tree_counts.push(pack.count() as f64);
            edmonds.push(pack.edmonds_bound as f64);
            // The three simulated strategies.
            for (i, strategy) in [Strategy::Rlnc, Strategy::SourceErasure, Strategy::Routing]
                .into_iter()
                .enumerate()
            {
                let cfg = SessionConfig::new(strategy, CHUNKS, 64).with_max_ticks(3000);
                let r = Session::run(&topo, &cfg, seed ^ 0x77);
                decoded[i].push(r.completion_fraction());
                if let Some(t) = r.mean_completion_tick() {
                    tick[i].push(t);
                }
                goodput[i].push(r.goodput());
            }
        }
        for (i, name) in ["rlnc", "erasure", "routing"].into_iter().enumerate() {
            t.row(&[
                format!("{pfail:.2}"),
                name.into(),
                format!("{:.1}%", 100.0 * stats::mean(&decoded[i])),
                if tick[i].is_empty() { "-".into() } else { format!("{:.0}", stats::mean(&tick[i])) },
                format!("{:.3}", 1e3 * stats::mean(&goodput[i])),
            ]);
        }
        t.row(&[
            format!("{pfail:.2}"),
            "treepack(info)".into(),
            format!(
                "{:.1}/{:.1} trees",
                stats::mean(&tree_counts),
                stats::mean(&edmonds)
            ),
            "-".into(),
            "-".into(),
        ]);
    }
    println!();
    println!("expected shape: at 0 failures all three decode 100% (routing slowest");
    println!("— coupon collector). As failures grow, erasure collapses first (dead");
    println!("columns are unrecoverable), routing degrades, RLNC keeps decoding");
    println!("wherever the min-cut is positive. Tree packing shows the min-cut");
    println!("capacity (= RLNC's achieved rate) and greedy's shortfall versus it.");
}
