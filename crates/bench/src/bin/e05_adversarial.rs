//! E05 — §5: coordinated adversarial failures vs iid random failures, and
//! the random-row-insertion defense.
//!
//! Protocol: 40%-grown network, a flash crowd of colluders joins
//! consecutively, the network keeps growing, then the colluders all fail at
//! once. Compare survivor damage under append vs random-position insertion
//! against the iid-random baseline, across adversary fractions.

use curtain_bench::{runtime, stats, table::Table};
use curtain_overlay::adversary::{strike, Cohort};
use curtain_overlay::{CurtainNetwork, InsertPolicy, NodeId, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 24;
const D: usize = 3;
const N: usize = 400;

/// Scenario label plus per-trial loss / affected / disconnected series.
type ScenarioRow = (String, Vec<f64>, Vec<f64>, Vec<f64>);

fn flash_crowd(policy: InsertPolicy, frac: f64, seed: u64) -> (CurtainNetwork, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CurtainNetwork::new(OverlayConfig::new(K, D).with_insert_policy(policy))
        .expect("valid config");
    let adversaries = (N as f64 * frac).round() as usize;
    let before = (N - adversaries) / 2;
    for _ in 0..before {
        net.join(&mut rng);
    }
    let colluders: Vec<NodeId> = (0..adversaries).map(|_| net.join(&mut rng)).collect();
    for _ in 0..(N - before - adversaries) {
        net.join(&mut rng);
    }
    (net, colluders)
}

fn main() {
    runtime::banner(
        "E05 / adversarial failures",
        "with random row insertion, coordinated strikes == iid random failures",
    );
    let scale = runtime::scale();
    let trials = 10 * scale;

    let t = Table::new(&[
        "fraction",
        "scenario",
        "mean loss",
        "affected%",
        "disconnected%",
    ]);
    t.header();
    for &frac in &[0.05f64, 0.10, 0.20] {
        let mut rows: Vec<ScenarioRow> = vec![
            ("flash+append".into(), vec![], vec![], vec![]),
            ("flash+rand-insert".into(), vec![], vec![], vec![]),
            ("iid random".into(), vec![], vec![], vec![]),
        ];
        for trial in 0..trials {
            let seed = 1000 + trial;
            // Scenario 0: append policy, colluders adjacent.
            let (mut net, colluders) = flash_crowd(InsertPolicy::Append, frac, seed);
            let r = strike(&mut net, &colluders);
            rows[0].1.push(r.mean_loss);
            rows[0].2.push(r.affected_fraction);
            rows[0].3.push(r.disconnected_fraction);
            // Scenario 1: random insertion scatters them.
            let (mut net, colluders) = flash_crowd(InsertPolicy::RandomPosition, frac, seed);
            let r = strike(&mut net, &colluders);
            rows[1].1.push(r.mean_loss);
            rows[1].2.push(r.affected_fraction);
            rows[1].3.push(r.disconnected_fraction);
            // Scenario 2: iid random cohort of the same size.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
            for _ in 0..N {
                net.join(&mut rng);
            }
            let cohort = Cohort::RandomFraction(frac).select(&net, &mut rng);
            let r = strike(&mut net, &cohort);
            rows[2].1.push(r.mean_loss);
            rows[2].2.push(r.affected_fraction);
            rows[2].3.push(r.disconnected_fraction);
        }
        for (name, loss, affected, disc) in rows {
            t.row(&[
                format!("{frac:.2}"),
                name,
                format!("{:.3} ± {:.3}", stats::mean(&loss), stats::std_dev(&loss)),
                format!("{:.1}%", 100.0 * stats::mean(&affected)),
                format!("{:.2}%", 100.0 * stats::mean(&disc)),
            ]);
        }
    }
    println!();
    println!("expected shape: 'flash+append' does clearly more damage than the");
    println!("baseline at every fraction; 'flash+rand-insert' matches");
    println!("the iid baseline — §5's argument realized.");
}
