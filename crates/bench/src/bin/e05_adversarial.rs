//! E05 — §5: coordinated adversarial failures vs iid random failures, and
//! the random-row-insertion defense.
//!
//! The measurement core lives in `curtain_bench::exp::e05` (shared with
//! `curtain-lab`'s parallel sweeps): 40%-grown network, a flash crowd of
//! colluders joins consecutively, the network keeps growing, then the
//! colluders all fail at once. This binary compares survivor damage under
//! append vs random-position insertion against the iid-random baseline,
//! across adversary fractions.

use curtain_bench::args::ExpArgs;
use curtain_bench::exp::e05::{self, Scenario};
use curtain_bench::{runtime, stats, table::Table};

const K: usize = 24;
const D: usize = 3;
const N: usize = 400;

fn main() {
    runtime::banner(
        "E05 / adversarial failures",
        "with random row insertion, coordinated strikes == iid random failures",
    );
    let args = ExpArgs::parse();
    let trials = 10 * args.scale();

    let t = Table::new(&[
        "fraction",
        "scenario",
        "mean loss",
        "affected%",
        "disconnected%",
    ]);
    t.header();
    for &frac in &[0.05f64, 0.10, 0.20] {
        let params = e05::Params { k: K, d: D, n: N, frac };
        for scenario in Scenario::ALL {
            let (mut loss, mut affected, mut disc) = (Vec::new(), Vec::new(), Vec::new());
            for trial in 0..trials {
                let seed = args.seed_or(1000) + trial;
                let r = e05::strike_outcome(scenario, &params, seed);
                loss.push(r.mean_loss);
                affected.push(r.affected_fraction);
                disc.push(r.disconnected_fraction);
            }
            let name = match scenario {
                Scenario::FlashAppend => "flash+append",
                Scenario::FlashRandomInsert => "flash+rand-insert",
                Scenario::IidRandom => "iid random",
            };
            t.row(&[
                format!("{frac:.2}"),
                name.into(),
                format!("{:.3} ± {:.3}", stats::mean(&loss), stats::std_dev(&loss)),
                format!("{:.1}%", 100.0 * stats::mean(&affected)),
                format!("{:.2}%", 100.0 * stats::mean(&disc)),
            ]);
        }
    }
    println!();
    println!("expected shape: 'flash+append' does clearly more damage than the");
    println!("baseline at every fraction; 'flash+rand-insert' matches");
    println!("the iid baseline — §5's argument realized.");
}
