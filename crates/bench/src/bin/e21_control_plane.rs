//! E21 — control-plane durability and availability over real sockets.
//!
//! The measurement core lives in `curtain_bench::exp::e21` (shared with
//! `curtain-lab`'s claim-gated sweep). Two tables:
//!
//! * admitted joins/second under a WAL whose fsync costs 2 ms, group
//!   commit vs fsync-per-mutation, as the client count grows — group
//!   commit amortizes one sync across a whole admitted batch;
//! * the failover drill — kill a primary mid-transfer and check the
//!   warm standby promotes at the same address, survivors finish
//!   byte-identical, and nothing gives up repair.
//!
//! Both tables are wall-clock: `--seed` pins the workload, the rates
//! are the machine's. The lab claims gate only the group/per-mutation
//! ratio and the drill's pass/fail flags.

use curtain_bench::args::ExpArgs;
use curtain_bench::exp::e21::{self, FailoverParams, JoinParams};
use curtain_bench::stats;
use curtain_bench::table::Table;
use curtain_bench::runtime;

fn main() {
    runtime::banner(
        "E21 / control plane",
        "group commit >= 3x fsync-per-mutation joins; failover drill heals without loss",
    );
    let args = ExpArgs::parse();
    let trials = 3 * args.scale();
    let seed0 = args.seed_or(2100);

    println!("join storm: 2 ms per WAL sync, joins admitted only once durable");
    println!();
    let t = Table::new(&["mode", "clients", "joins", "joins/s", "ratio vs per-mutation"]);
    t.header();
    for &clients in &[2usize, 4, 8] {
        let base = JoinParams {
            group_commit: true,
            clients,
            joins_per_client: 16,
            sync_delay_us: 2000,
        };
        let mut rates = [Vec::new(), Vec::new()];
        for trial in 0..trials {
            for (i, group) in [(0usize, true), (1, false)] {
                let out = e21::join_throughput(
                    &JoinParams { group_commit: group, ..base },
                    seed0 + trial,
                );
                rates[i].push(out.joins_per_s);
            }
        }
        let group = stats::mean(&rates[0]);
        let per = stats::mean(&rates[1]);
        for (mode, rate) in [("group", group), ("per_mutation", per)] {
            t.row(&[
                mode.into(),
                format!("{clients}"),
                format!("{}", clients * 16),
                format!("{rate:.0}"),
                if mode == "group" {
                    format!("{:.2}x", group / per.max(1e-9))
                } else {
                    "1.00x".into()
                },
            ]);
        }
    }

    println!();
    println!("failover drill: kill the primary mid-transfer, warm standby takes over");
    println!();
    let t = Table::new(&["peers", "payload", "promoted", "byte-identical", "give-ups"]);
    t.header();
    for &peers in &[2usize, 4] {
        let params = FailoverParams { peers, payload: 16 * 1024 };
        let mut promoted = 0u64;
        let mut byte_ok = 0u64;
        let mut give_ups = 0u64;
        for trial in 0..trials {
            let out = e21::failover_drill(&params, seed0 + trial);
            promoted += u64::from(out.promoted);
            byte_ok += u64::from(out.byte_ok);
            give_ups += out.give_ups;
        }
        t.row(&[
            format!("{peers}"),
            format!("{} KiB", params.payload / 1024),
            format!("{promoted}/{trials}"),
            format!("{byte_ok}/{trials}"),
            format!("{give_ups}"),
        ]);
    }

    println!();
    println!("(claim gate: `cargo run -p curtain-lab -- check --exp e21` writes BENCH_e21.json)");
}
