//! E16 — §6/§7 open issue: can the server disconnect once the content has
//! been seeded? "In the file download scenario it may be possible
//! eventually for the server to disconnect itself completely from the
//! network after the content has been delivered to a small fraction of the
//! population."
//!
//! Protocol: RLNC download sessions where the server departs at tick T.
//! Sweep T and measure what fraction of the swarm still completes — the
//! transition from "stranded" to "self-sustaining".

use curtain_bench::{runtime, stats, table::Table};
use curtain_broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 12;
const D: usize = 3;
const N: usize = 120;
const CHUNKS: usize = 32;

fn main() {
    runtime::banner(
        "E16 / server departure (§6-§7 open issue)",
        "once the collective swarm rank covers the content, the source is unnecessary",
    );
    let scale = runtime::scale();
    let trials = 5 * scale;

    // Reference: how long the server needs to stay so that *someone* near
    // the top holds full rank ~ CHUNKS/D + depth.
    let self_sufficient_at = CHUNKS / D;
    println!(
        "content = {CHUNKS} packets; server alone seeds full rank in ~{self_sufficient_at} ticks\n"
    );

    let t = Table::new(&[
        "departure tick",
        "decoded%",
        "mean progress%",
        "mean tick",
    ]);
    t.header();
    for &depart in &[2u64, 5, 8, 12, 16, 24, 48, 10_000] {
        let mut ok = Vec::new();
        let mut progress = Vec::new();
        let mut ticks = Vec::new();
        for trial in 0..trials {
            let seed = 1600 + trial;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
            for _ in 0..N {
                net.join(&mut rng);
            }
            let topo = TopologySpec::from_curtain(&net);
            let cfg = SessionConfig::new(Strategy::Rlnc, CHUNKS, 64)
                .with_server_departure(depart)
                .with_max_ticks(4000);
            let r = Session::run(&topo, &cfg, seed ^ 0x16);
            ok.push(r.completion_fraction());
            progress.push(r.mean_progress());
            if let Some(t) = r.mean_completion_tick() {
                ticks.push(t);
            }
        }
        t.row(&[
            if depart == 10_000 { "never leaves".into() } else { depart.to_string() },
            format!("{:.1}%", 100.0 * stats::mean(&ok)),
            format!("{:.1}%", 100.0 * stats::mean(&progress)),
            if ticks.is_empty() { "-".into() } else { format!("{:.0}", stats::mean(&ticks)) },
        ]);
    }
    println!();
    println!("expected shape: below ~{self_sufficient_at} ticks the swarm is stranded at the");
    println!("rank the server managed to inject (mean progress caps well below");
    println!("100%); past it, decoded% jumps to 100% — the swarm recodes among");
    println!("itself and finishes without the source, answering the open issue");
    println!("affirmatively for the download scenario.");
}
