//! E12 — §7 attack taxonomy: failure vs entropy-destruction vs jamming.
//!
//! "Our system is fairly robust to failure attacks … fairly robust, at
//! least in the short term, to entropy destruction attacks … not robust to
//! jamming attacks." One cohort, three behaviours, measured side by side.

use curtain_bench::{runtime, stats, table::Table};
use curtain_broadcast::attacks::{pick_cohort, AttackMode};
use curtain_broadcast::{Session, SessionConfig, Strategy, TopologySpec};
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const K: usize = 16;
const D: usize = 3;
const N: usize = 150;
const CHUNKS: usize = 24;

fn main() {
    runtime::banner(
        "E12 / member attacks",
        "failure ~ contained; entropy destruction stalls quietly; jamming poisons everything",
    );
    let scale = runtime::scale();
    let trials = 5 * scale;

    let t = Table::new(&[
        "fraction",
        "attack",
        "decoded ok%",
        "corrupted%",
        "stalled%",
        "mean tick",
        "traffic%",
    ]);
    t.header();
    for &frac in &[0.05f64, 0.10, 0.20] {
        let mut baseline_traffic = 1.0f64;
        for mode in [
            None,
            Some(AttackMode::Fail),
            Some(AttackMode::EntropyDestruction),
            Some(AttackMode::Jamming),
        ] {
            let mut ok = Vec::new();
            let mut corrupt = Vec::new();
            let mut stalled = Vec::new();
            let mut ticks = Vec::new();
            let mut traffic = Vec::new();
            for trial in 0..trials {
                let seed = 1500 + trial;
                let mut rng = StdRng::seed_from_u64(seed);
                let mut net =
                    CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
                for _ in 0..N {
                    net.join(&mut rng);
                }
                let topo = TopologySpec::from_curtain(&net);
                let mut cfg =
                    SessionConfig::new(Strategy::Rlnc, CHUNKS, 128).with_max_ticks(1500);
                if let Some(m) = mode {
                    let cohort = pick_cohort(N, frac, &mut rng);
                    cfg = cfg.with_attacks(&cohort, m);
                }
                let r = Session::run(&topo, &cfg, seed ^ 0x12);
                // Traffic per tick, relative: is the attack *visible* in
                // aggregate volume? (Failure: yes. Entropy destruction: no.)
                traffic.push(r.net.offered as f64 / r.ticks_run.max(1) as f64);
                ok.push(r.completion_fraction());
                corrupt.push(r.corruption_fraction());
                stalled.push(1.0 - r.completion_fraction() - r.corruption_fraction());
                if let Some(t) = r.mean_completion_tick() {
                    ticks.push(t);
                }
            }
            let name = match mode {
                None => "none",
                Some(AttackMode::Fail) => "failure",
                Some(AttackMode::EntropyDestruction) => "entropy-destr",
                Some(AttackMode::Jamming) => "jamming",
                Some(AttackMode::Honest) => unreachable!(),
            };
            if mode.is_none() {
                baseline_traffic = stats::mean(&traffic);
            }
            t.row(&[
                format!("{frac:.2}"),
                name.into(),
                format!("{:.1}%", 100.0 * stats::mean(&ok)),
                format!("{:.1}%", 100.0 * stats::mean(&corrupt)),
                format!("{:.1}%", 100.0 * stats::mean(&stalled)),
                if ticks.is_empty() { "-".into() } else { format!("{:.0}", stats::mean(&ticks)) },
                format!("{:.0}%", 100.0 * stats::mean(&traffic) / baseline_traffic),
            ]);
        }
        println!();
    }
    println!("expected shape: failure cohorts barely dent decoded% (Theorem 4's");
    println!("containment); entropy destruction converts some decoded% into");
    println!("stalled% (it reduces usable min-cut while looking alive) — note its");
    println!("traffic%: unlike failure, the volume looks normal, which is why the");
    println!("paper calls it harder to detect; jamming");
    println!("turns nearly all decoded% into corrupted% — the §7 open problem");
    println!("(homomorphic packet signatures) is what's missing.");
}
