//! E22 — vnet scale: 1000 real-protocol peers in one process.
//!
//! The measurement core lives in `curtain_bench::exp::e22` (shared with
//! `curtain-lab`'s claim-gated sweep). The soak joins `N` peers over
//! the in-process virtual network, waits for the completion wave, then
//! runs churn rounds that join and kill 5% of the swarm each — the
//! paper's Theorem 4 says the resulting defect probability must not
//! move as `N` grows.
//!
//! Unlike e06/e21 nothing here is wall-clock: the vnet runs on a
//! virtual clock, so every number in the table (and the journal digest)
//! is a pure function of `(params, seed)`.

use curtain_bench::args::ExpArgs;
use curtain_bench::exp::e22::{self, ChurnParams};
use curtain_bench::runtime;
use curtain_bench::stats;
use curtain_bench::table::Table;

fn main() {
    runtime::banner(
        "E22 / vnet scale",
        "single-process churn soak: defect probability independent of N",
    );
    let args = ExpArgs::parse();
    let trials = 2 * args.scale();
    let seed0 = args.seed_or(2200);

    println!("churn soak: 4 rounds, each joins and kills 5% of the swarm mid-transfer");
    println!();
    let t = Table::new(&["N", "defect p", "repairs", "give-ups", "lost frames", "virtual ms"]);
    t.header();
    for &peers in &[100usize, 300, 1000] {
        let params = ChurnParams {
            peers,
            fanout: 8,
            reserve: 2,
            churn_rounds: 4,
            churn_frac: 0.05,
            loss: 0.01,
        };
        let mut defect = Vec::new();
        let mut repairs = 0u64;
        let mut give_ups = 0u64;
        let mut lost = 0u64;
        let mut virtual_ms = Vec::new();
        for trial in 0..trials {
            let out = e22::churn_soak(&params, seed0 + trial);
            assert!(out.all_complete, "swarm at N={peers} never drained");
            defect.push(out.defect_p);
            repairs += out.repairs;
            give_ups += out.gave_up;
            lost += out.frames_lost;
            virtual_ms.push(out.virtual_ms);
        }
        t.row(&[
            format!("{peers}"),
            format!("{:.4}", stats::mean(&defect)),
            format!("{repairs}"),
            format!("{give_ups}"),
            format!("{lost}"),
            format!("{:.0}", stats::mean(&virtual_ms)),
        ]);
    }

    println!();
    println!("determinism: the same (params, seed) cell replayed twice");
    println!();
    let t = Table::new(&["N", "seed", "journals match"]);
    t.header();
    let params = ChurnParams {
        peers: 100,
        fanout: 8,
        reserve: 2,
        churn_rounds: 2,
        churn_frac: 0.05,
        loss: 0.01,
    };
    for trial in 0..trials {
        let identical = e22::replay_identical(&params, seed0 + trial);
        t.row(&[
            "100".into(),
            format!("{}", seed0 + trial),
            if identical { "yes".into() } else { "DIVERGED".to_owned() },
        ]);
        assert!(identical, "vnet journal diverged at seed {}", seed0 + trial);
    }

    println!();
    println!("(claim gate: `cargo run -p curtain-lab -- check --exp e22` writes BENCH_e22.json)");
}
