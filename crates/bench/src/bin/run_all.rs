//! Runs every experiment binary in order — the one-command reproduction of
//! the paper's entire evaluation.
//!
//! ```text
//! cargo run --release -p curtain-bench --bin run_all
//! CURTAIN_SCALE=5 cargo run --release -p curtain-bench --bin run_all
//! cargo run --release -p curtain-bench --bin run_all -- --trace traces/
//! ```
//!
//! With `--trace <dir>`, each experiment that supports event tracing gets
//! `--trace <dir>/<experiment>.jsonl` appended to its invocation.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "e01_theorem4",
    "e02_locality",
    "e03_drift",
    "e04_collapse",
    "e05_adversarial",
    "e06_delay",
    "e07_strategies",
    "e08_variance",
    "e09_codec",
    "e10_server_load",
    "e11_heterogeneous",
    "e12_attacks",
    "e13_congestion",
    "e14_conjecture",
    "e15_gossip",
    "e16_selfsustain",
    "e17_live_churn",
    "e18_streaming",
    "e19_fairness",
];

/// Experiments accepting a `--trace <path>` flag.
const TRACEABLE: &[&str] = &["e01_theorem4", "e03_drift", "e04_collapse"];

/// Parses `--trace <dir>` from our own arguments and ensures the
/// directory exists.
fn trace_dir() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let dir = PathBuf::from(args.next().expect("--trace requires a directory"));
            std::fs::create_dir_all(&dir).expect("create trace directory");
            return Some(dir);
        }
    }
    None
}

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let trace_dir = trace_dir();
    let total = Instant::now();
    let mut failed = Vec::new();
    for (i, exp) in EXPERIMENTS.iter().enumerate() {
        println!("\n################ [{}/{}] {exp} ################", i + 1, EXPERIMENTS.len());
        let start = Instant::now();
        let mut cmd = Command::new(bin_dir.join(exp));
        if let Some(dir) = trace_dir.as_ref().filter(|_| TRACEABLE.contains(exp)) {
            let path = dir.join(format!("{exp}.jsonl"));
            println!("(tracing to {})", path.display());
            cmd.arg("--trace").arg(path);
        }
        let status = cmd.status();
        match status {
            Ok(s) if s.success() => {
                println!("---------------- {exp} finished in {:.1?}", start.elapsed());
            }
            Ok(s) => {
                eprintln!("!!! {exp} exited with {s}");
                failed.push(*exp);
            }
            Err(e) => {
                eprintln!("!!! {exp} failed to launch: {e} (build with --release first)");
                failed.push(*exp);
            }
        }
    }
    println!(
        "\n================ all experiments done in {:.1?} ================",
        total.elapsed()
    );
    if failed.is_empty() {
        println!("every experiment ran to completion.");
    } else {
        eprintln!("failures: {failed:?}");
        std::process::exit(1);
    }
}
