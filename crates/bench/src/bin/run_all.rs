//! Runs every experiment binary in order — the one-command reproduction of
//! the paper's entire evaluation.
//!
//! ```text
//! cargo run --release -p curtain-bench --bin run_all
//! CURTAIN_SCALE=5 cargo run --release -p curtain-bench --bin run_all
//! cargo run --release -p curtain-bench --bin run_all -- --trace traces/
//! cargo run --release -p curtain-bench --bin run_all -- --only defect --only collapse
//! ```
//!
//! With `--trace <dir>`, each experiment that supports event tracing gets
//! `--trace <dir>/<experiment>.jsonl` appended to its invocation. With
//! `--only <substring>` (repeatable), only experiments whose name contains
//! one of the given substrings run. Invocation errors print usage and
//! exit with status 2.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "e01_theorem4",
    "e02_locality",
    "e03_drift",
    "e04_collapse",
    "e05_adversarial",
    "e06_delay",
    "e07_strategies",
    "e08_variance",
    "e09_codec",
    "e10_server_load",
    "e11_heterogeneous",
    "e12_attacks",
    "e13_congestion",
    "e14_conjecture",
    "e15_gossip",
    "e16_selfsustain",
    "e17_live_churn",
    "e18_streaming",
    "e19_fairness",
];

/// Experiments accepting a `--trace <path>` flag.
const TRACEABLE: &[&str] = &["e01_theorem4", "e03_drift", "e04_collapse"];

const USAGE: &str = "usage: run_all [--trace <dir>] [--only <substring>]...\n\
                     \n\
                     --trace <dir>       per-experiment JSONL traces into <dir>\n\
                     --only <substring>  run only experiments whose name contains\n\
                     \x20                   the substring (repeatable)";

/// The parsed invocation: an optional trace directory plus name filters.
struct RunArgs {
    trace_dir: Option<PathBuf>,
    only: Vec<String>,
}

impl RunArgs {
    fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut parsed = RunArgs { trace_dir: None, only: Vec::new() };
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trace" => {
                    let dir = args.next().ok_or("--trace requires a directory")?;
                    parsed.trace_dir = Some(PathBuf::from(dir));
                }
                "--only" => {
                    parsed.only.push(args.next().ok_or("--only requires a substring")?);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(parsed)
    }

    /// True when `exp` passes the `--only` filters (no filters = all).
    fn selects(&self, exp: &str) -> bool {
        self.only.is_empty() || self.only.iter().any(|s| exp.contains(s.as_str()))
    }
}

/// Prints the invocation error and usage, then exits with status 2.
fn die_usage(message: &str) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args = RunArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| die_usage(&e));
    let selected: Vec<&str> =
        EXPERIMENTS.iter().copied().filter(|exp| args.selects(exp)).collect();
    if selected.is_empty() {
        die_usage(&format!(
            "--only {:?} matches no experiment; known: {}",
            args.only,
            EXPERIMENTS.join(", ")
        ));
    }
    let trace_dir = args.trace_dir.as_ref().map(|dir| {
        if let Err(e) = std::fs::create_dir_all(dir) {
            die_usage(&format!("cannot create trace directory {}: {e}", dir.display()));
        }
        dir.clone()
    });

    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let total = Instant::now();
    let mut failed = Vec::new();
    for (i, exp) in selected.iter().enumerate() {
        println!("\n################ [{}/{}] {exp} ################", i + 1, selected.len());
        let start = Instant::now();
        let mut cmd = Command::new(bin_dir.join(exp));
        if let Some(dir) = trace_dir.as_ref().filter(|_| TRACEABLE.contains(exp)) {
            let path = dir.join(format!("{exp}.jsonl"));
            println!("(tracing to {})", path.display());
            cmd.arg("--trace").arg(path);
        }
        let status = cmd.status();
        match status {
            Ok(s) if s.success() => {
                println!("---------------- {exp} finished in {:.1?}", start.elapsed());
            }
            Ok(s) => {
                eprintln!("!!! {exp} exited with {s}");
                failed.push(*exp);
            }
            Err(e) => {
                eprintln!("!!! {exp} failed to launch: {e} (build with --release first)");
                failed.push(*exp);
            }
        }
    }
    println!(
        "\n================ {} experiment(s) done in {:.1?} ================",
        selected.len(),
        total.elapsed()
    );
    if failed.is_empty() {
        println!("every selected experiment ran to completion.");
    } else {
        eprintln!("failures: {failed:?}");
        std::process::exit(1);
    }
}
