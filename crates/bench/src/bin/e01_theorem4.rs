//! E01 — Theorem 4: the steady-state total defect fraction `E[B]/A` stays
//! at `(1+ε)·p·d`, independent of the network size.
//!
//! The measurement core lives in `curtain_bench::exp::e01` (shared with
//! `curtain-lab`'s parallel sweeps); this binary iterates the printed
//! tables of `EXPERIMENTS.md` over it.
//!
//! With `--trace <path>`, every checkpoint also emits a `DefectSample`
//! telemetry event (timestamped by cumulative arrivals) to a JSONL file —
//! `curtain_bench::trace::replay_defect` rebuilds the curve offline.

use curtain_analysis::drift::DriftParams;
use curtain_bench::args::ExpArgs;
use curtain_bench::exp::e01;
use curtain_bench::{runtime, table::Table};

fn main() {
    runtime::banner(
        "E01 / Theorem 4",
        "steady-state defect E[B]/A <= (1+eps)*p*d, independent of N",
    );
    let args = ExpArgs::parse();
    let scale = args.scale();
    let samples = 300 * scale;
    let trace = args.trace();
    let recorder = trace.recorder();
    let mut clock = 0u64;

    println!("-- defect vs p and d (k = 8*d^2, N = 600) --");
    let t = Table::new(&["d", "k", "p", "p*d", "a1 (theory)", "measured B/A", "ratio/pd"]);
    t.header();
    for &d in &[2usize, 3, 4] {
        let k = 8 * d * d;
        for &p in &[0.005f64, 0.01, 0.02, 0.04] {
            let params = e01::Params { k, d, p, n: 600, samples, trials: 6 };
            let seed = args.seed_or(42) + d as u64;
            let measured = e01::measure(&params, seed, &recorder, &mut clock);
            let a1 = DriftParams::new(p, d, k)
                .theorem4_bound()
                .map_or("-".to_string(), |a| format!("{a:.4}"));
            t.row(&[
                d.to_string(),
                k.to_string(),
                format!("{p:.3}"),
                format!("{:.4}", p * d as f64),
                a1,
                format!("{measured:.4}"),
                format!("{:.2}", measured / (p * d as f64)),
            ]);
        }
    }

    println!();
    println!("-- independence from network size (k=32, d=2, p=0.02) --");
    let t = Table::new(&["N", "measured B/A", "p*d"]);
    t.header();
    for &n in &[150usize, 300, 600, 1200, 2400] {
        let params = e01::Params { k: 32, d: 2, p: 0.02, n, samples, trials: 6 };
        let measured = e01::measure(&params, args.seed_or(7), &recorder, &mut clock);
        t.row(&[
            n.to_string(),
            format!("{measured:.4}"),
            format!("{:.4}", 0.04),
        ]);
    }
    println!();
    println!("expected shape: 'measured B/A' tracks p*d (ratio ~1) at every d,");
    println!("and the N sweep is flat — failures are locally contained.");
}
