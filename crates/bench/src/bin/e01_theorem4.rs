//! E01 — Theorem 4: the steady-state total defect fraction `E[B]/A` stays
//! at `(1+ε)·p·d`, independent of the network size.
//!
//! Protocol: run the §4 arrival process (each arrival failed w.p. `p`) and
//! Monte-Carlo-estimate the defect fraction at several checkpoints; compare
//! with `p·d` and with the exact drift root `a₁` from `curtain-analysis`.
//!
//! With `--trace <path>`, every checkpoint also emits a `DefectSample`
//! telemetry event (timestamped by cumulative arrivals) to a JSONL file —
//! `curtain_bench::trace::replay_defect` rebuilds the curve offline.

use curtain_analysis::drift::DriftParams;
use curtain_bench::{runtime, stats, table::Table, trace::Trace};
use curtain_overlay::churn::grow_with_failures;
use curtain_overlay::{defect, CurtainNetwork, OverlayConfig};
use curtain_telemetry::{Event, SharedRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[allow(clippy::too_many_arguments)]
fn measure(
    k: usize,
    d: usize,
    p: f64,
    n: usize,
    seed: u64,
    samples: u64,
    trace: &SharedRecorder,
    clock: &mut u64,
) -> f64 {
    // The defect is a drifting random process: average over independent
    // instances and several checkpoints per instance.
    let trials = 6;
    let mut acc = Vec::new();
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed + 1000 * t);
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
        grow_with_failures(&mut net, n, p, &mut rng);
        *clock += n as u64;
        for _ in 0..4 {
            let step = n / 20 + 1;
            grow_with_failures(&mut net, step, p, &mut rng);
            *clock += step as u64;
            let est = defect::sample(net.matrix(), d, samples, &mut rng);
            acc.push(est.total_defect_fraction());
            // Timestamp = cumulative arrivals, so the trace's defect curve
            // is a function of the paper's "time" (arrival count).
            trace.set_time(*clock);
            trace.record(&Event::DefectSample {
                defect: est.total_defect(),
                tuples: est.inspected,
            });
        }
    }
    stats::mean(&acc)
}

fn main() {
    runtime::banner(
        "E01 / Theorem 4",
        "steady-state defect E[B]/A <= (1+eps)*p*d, independent of N",
    );
    let scale = runtime::scale();
    let samples = 300 * scale;
    let trace = Trace::from_args();
    let recorder = trace.recorder();
    let mut clock = 0u64;

    println!("-- defect vs p and d (k = 8*d^2, N = 600) --");
    let t = Table::new(&["d", "k", "p", "p*d", "a1 (theory)", "measured B/A", "ratio/pd"]);
    t.header();
    for &d in &[2usize, 3, 4] {
        let k = 8 * d * d;
        for &p in &[0.005f64, 0.01, 0.02, 0.04] {
            let measured = measure(k, d, p, 600, 42 + d as u64, samples, &recorder, &mut clock);
            let a1 = DriftParams::new(p, d, k)
                .theorem4_bound()
                .map_or("-".to_string(), |a| format!("{a:.4}"));
            t.row(&[
                d.to_string(),
                k.to_string(),
                format!("{p:.3}"),
                format!("{:.4}", p * d as f64),
                a1,
                format!("{measured:.4}"),
                format!("{:.2}", measured / (p * d as f64)),
            ]);
        }
    }

    println!();
    println!("-- independence from network size (k=32, d=2, p=0.02) --");
    let t = Table::new(&["N", "measured B/A", "p*d"]);
    t.header();
    for &n in &[150usize, 300, 600, 1200, 2400] {
        let measured = measure(32, 2, 0.02, n, 7, samples, &recorder, &mut clock);
        t.row(&[
            n.to_string(),
            format!("{measured:.4}"),
            format!("{:.4}", 0.04),
        ]);
    }
    println!();
    println!("expected shape: 'measured B/A' tracks p*d (ratio ~1) at every d,");
    println!("and the N sweep is flat — failures are locally contained.");
}
