//! E20 — codec backends: generation size, class overlap, and window
//! tradeoffs (Li, Soljanin & Spasojević, arXiv:1011.3498).
//!
//! The measurement core lives in `curtain_bench::exp::e20` (shared with
//! `curtain-lab`'s claim-gated sweep). Two tables:
//!
//! * completion overhead (packets sent per source packet, no feedback)
//!   over a `backend × g × overlap × loss` grid — the coupon-collector
//!   tail disjoint generations pay and overlapping classes cap;
//! * p95 in-order delivery latency of the sliding-window backend as the
//!   stream length grows 8× — flat, which is the point of windowing.
//!
//! All cells are deterministic in `--seed`; `--scale` multiplies trials.

use curtain_bench::args::ExpArgs;
use curtain_bench::exp::e20::{self, Backend, StreamParams, TransferParams};
use curtain_bench::table::Table;
use curtain_bench::{runtime, stats};

fn main() {
    runtime::banner(
        "E20 / codec tradeoffs",
        "overlap beats disjoint generations under loss; window p95 latency flat in stream length",
    );
    let args = ExpArgs::parse();
    let trials = 6 * args.scale();
    let seed0 = args.seed_or(2000);

    println!("transfer: N generations x 16 packets x 32 B over an iid loss channel, no feedback");
    println!();
    let t = Table::new(&["backend", "gens", "overlap", "loss", "overhead", "net of loss"]);
    t.header();
    let g = 16usize;
    for &generations in &[16usize, 32] {
        for &loss in &[0.0f64, 0.1, 0.2] {
            for (backend, overlap) in [
                (Backend::Rlnc, 0),
                (Backend::Overlap, g / 4),
                (Backend::Overlap, g / 2),
                (Backend::Window, 0),
            ] {
                let params =
                    TransferParams { backend, generations, g, s: 32, overlap, loss };
                let (mut sent, mut net) = (Vec::new(), Vec::new());
                for trial in 0..trials {
                    let out = e20::transfer(&params, seed0 + trial);
                    assert!(out.matches, "{backend:?} corrupted the object");
                    sent.push(out.overhead);
                    net.push(out.delivered_overhead);
                }
                t.row(&[
                    backend.label().into(),
                    format!("{generations}"),
                    format!("{overlap}"),
                    format!("{loss:.2}"),
                    format!("{:.3}±{:.3}", stats::mean(&sent), stats::std_dev(&sent)),
                    format!("{:.3}", stats::mean(&net)),
                ]);
            }
        }
    }

    println!();
    println!(
        "stream: sliding window of 32 packets, one packet released per tick, \
         2 coded emissions per tick, 25% loss"
    );
    println!();
    let t = Table::new(&["packets", "p95 latency (ticks)", "mean latency", "delivered"]);
    t.header();
    for &packets in &[64usize, 128, 256, 512] {
        let params = StreamParams { packets, g: 8, s: 64, window: 32, rate: 2, loss: 0.25 };
        let (mut p95, mut mean, mut frac) = (Vec::new(), Vec::new(), Vec::new());
        for trial in 0..trials {
            let out = e20::live_stream(&params, seed0 + trial);
            p95.push(out.p95_latency);
            mean.push(out.mean_latency);
            frac.push(out.delivered_fraction);
        }
        t.row(&[
            format!("{packets}"),
            format!("{:.2}±{:.2}", stats::mean(&p95), stats::std_dev(&p95)),
            format!("{:.2}", stats::mean(&mean)),
            format!("{:.3}", stats::mean(&frac)),
        ]);
    }

    println!();
    println!("(claim gate: `cargo run -p curtain-lab -- check --exp e20` writes BENCH_e20.json)");
}
