//! E03 — Lemmas 6 & 7: the one-step defect drift.
//!
//! Protocol: small `k` so the defect `B` can be computed *exactly* over all
//! `C(k,d)` tuples. Run the arrival process at a `p` high enough to visit a
//! range of defect levels; record `(b, ΔB)` transitions; report measured
//! conditional drift per `b`-bin against the analytic bound `f(b)`, and the
//! worst observed `|ΔB|` against Lemma 6's cap `(d²/k)·A`.
//!
//! With `--trace <path>`, the exact defect after every arrival is emitted
//! as a `DefectSample` telemetry event to a JSONL file.

use curtain_analysis::drift::DriftParams;
use curtain_bench::{runtime, stats, table::Table, trace::Trace};
use curtain_overlay::{defect, CurtainNetwork, OverlayConfig};
use curtain_telemetry::Event;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

fn main() {
    runtime::banner(
        "E03 / Lemmas 6-7",
        "E[B'] - B <= f(B/A) per arrival; |B' - B| <= (d^2/k)*A always",
    );
    let scale = runtime::scale();
    let (k, d, p) = (12usize, 2usize, 0.25f64);
    let arrivals = 4000 * scale as usize;
    let a = defect::binomial(k as u64, d as u64) as f64;
    let params = DriftParams::new(p, d, k);
    let trace = Trace::from_args();
    let recorder = trace.recorder();

    let mut rng = StdRng::seed_from_u64(3);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
    let bins = 10usize;
    let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); bins];
    let mut max_step: f64 = 0.0;
    let mut before = defect::exact(net.matrix(), d).total_defect() as f64;

    for arrival in 0..arrivals {
        let b = before / a;
        net.join_with_failure_prob(p, &mut rng);
        let after = defect::exact(net.matrix(), d).total_defect() as f64;
        // The exact per-arrival defect series, for offline replay.
        recorder.set_time(arrival as u64 + 1);
        recorder.record(&Event::DefectSample { defect: after as u64, tuples: a as u64 });
        let delta = after - before;
        max_step = max_step.max(delta.abs());
        let bin = ((b * bins as f64) as usize).min(bins - 1);
        deltas[bin].push(delta / a);
        before = after;
        // Restart when the process nears collapse so we keep sampling the
        // interesting range (and the graph stays small).
        if b > 0.85 || net.len() > 1500 {
            net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
            // Re-seed some defect so mid-range bins fill quickly.
            for _ in 0..rng.random_range(0..5) {
                net.join_failed(&mut rng);
            }
            before = defect::exact(net.matrix(), d).total_defect() as f64;
        }
    }

    let t = Table::new(&["b bin", "samples", "measured E[db]", "theory f(b)", "bound holds"]);
    t.header();
    for (i, bin) in deltas.iter().enumerate() {
        if bin.is_empty() {
            continue;
        }
        let b_mid = (i as f64 + 0.5) / bins as f64;
        let measured = stats::mean(bin);
        let theory = params.f(b_mid);
        // Statistical slack: the bound is on the expectation.
        let sem = stats::std_dev(bin) / (bin.len() as f64).sqrt();
        let holds = measured <= theory + 3.0 * sem + 1e-9;
        t.row(&[
            format!("{:.2}", b_mid),
            bin.len().to_string(),
            format!("{measured:+.5}"),
            format!("{theory:+.5}"),
            if holds { "yes".into() } else { "VIOLATED".into() },
        ]);
    }
    println!();
    println!(
        "Lemma 6 cap: max observed |dB| = {:.1}, bound (d^2/k)*A = {:.1}  ({})",
        max_step,
        d as f64 * d as f64 / k as f64 * a,
        if max_step <= d as f64 * d as f64 / k as f64 * a + 1e-9 { "holds" } else { "VIOLATED" },
    );
    println!();
    println!("expected shape: measured drift is below f(b) everywhere; it is positive");
    println!("only near b=0 (fresh failures) and would turn positive again near b=1.");
}
