//! E03 — Lemmas 6 & 7: the one-step defect drift.
//!
//! The measurement core lives in `curtain_bench::exp::e03` (shared with
//! `curtain-lab`'s parallel sweeps); this binary reports the measured
//! conditional drift per `b`-bin against the analytic bound `f(b)`, and
//! the worst observed `|ΔB|` against Lemma 6's cap `(d²/k)·A`.
//!
//! With `--trace <path>`, the exact defect after every arrival is emitted
//! as a `DefectSample` telemetry event to a JSONL file.

use curtain_analysis::drift::DriftParams;
use curtain_bench::args::ExpArgs;
use curtain_bench::exp::e03;
use curtain_bench::{runtime, stats, table::Table};

fn main() {
    runtime::banner(
        "E03 / Lemmas 6-7",
        "E[B'] - B <= f(B/A) per arrival; |B' - B| <= (d^2/k)*A always",
    );
    let args = ExpArgs::parse();
    let scale = args.scale();
    let (k, d, p) = (12usize, 2usize, 0.25f64);
    let params = e03::Params { k, d, p, arrivals: 4000 * scale as usize, bins: 10 };
    let drift = DriftParams::new(p, d, k);
    let trace = args.trace();

    let run = e03::run(&params, args.seed_or(3), &trace.recorder());
    let a = run.tuples;

    let t = Table::new(&["b bin", "samples", "measured E[db]", "theory f(b)", "bound holds"]);
    t.header();
    for (i, bin) in run.deltas.iter().enumerate() {
        if bin.is_empty() {
            continue;
        }
        let b_mid = (i as f64 + 0.5) / params.bins as f64;
        let measured = stats::mean(bin);
        let theory = drift.f(b_mid);
        // Statistical slack: the bound is on the expectation.
        let sem = stats::std_dev(bin) / (bin.len() as f64).sqrt();
        let holds = measured <= theory + 3.0 * sem + 1e-9;
        t.row(&[
            format!("{:.2}", b_mid),
            bin.len().to_string(),
            format!("{measured:+.5}"),
            format!("{theory:+.5}"),
            if holds { "yes".into() } else { "VIOLATED".into() },
        ]);
    }
    println!();
    println!(
        "Lemma 6 cap: max observed |dB| = {:.1}, bound (d^2/k)*A = {:.1}  ({})",
        run.max_step,
        d as f64 * d as f64 / k as f64 * a,
        if run.max_step <= d as f64 * d as f64 / k as f64 * a + 1e-9 { "holds" } else { "VIOLATED" },
    );
    println!();
    println!("expected shape: measured drift is below f(b) everywhere; it is positive");
    println!("only near b=0 (fresh failures) and would turn positive again near b=1.");
}
