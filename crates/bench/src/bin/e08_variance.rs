//! E08 — §7: the choice of `d` does not change the *expected* bandwidth
//! loss (≈ p), but larger `d` shrinks its variance.
//!
//! "As d increases, the bandwidth carried on each thread decreases
//! inversely with d. Hence the expected fraction of bandwidth lost is
//! essentially p, independent of d. … the variance of the fraction of
//! bandwidth lost decreases inversely with d" (conjectured; our
//! measurement confirms the trend).

use curtain_bench::{runtime, stats, table::Table};
use curtain_overlay::churn::grow_with_failures;
use curtain_overlay::{CurtainNetwork, OverlayConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    runtime::banner(
        "E08 / bandwidth-loss mean and variance vs d",
        "E[loss fraction] ~ p for every d; Var[loss fraction] decreases with d",
    );
    let scale = runtime::scale();
    let trials = 8 * scale;
    let p = 0.03f64;
    let n = 400usize;

    let t = Table::new(&[
        "d",
        "k (=10d)",
        "mean loss frac",
        "target p",
        "std of loss",
        "std*sqrt(d)",
    ]);
    t.header();
    for &d in &[2usize, 3, 4, 6, 8] {
        let k = 10 * d; // server bandwidth fixed in node-bandwidth units
        let mut per_node_losses = Vec::new();
        for trial in 0..trials {
            let mut rng = StdRng::seed_from_u64(7000 + trial);
            let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
            grow_with_failures(&mut net, n, p, &mut rng);
            // Per working node: fraction of its bandwidth currently lost.
            let hist = net.working_connectivity_histogram();
            for (c, &count) in hist.iter().enumerate() {
                let loss_frac = (d - c) as f64 / d as f64;
                for _ in 0..count {
                    per_node_losses.push(loss_frac);
                }
            }
        }
        let mean = stats::mean(&per_node_losses);
        let std = stats::std_dev(&per_node_losses);
        t.row(&[
            d.to_string(),
            k.to_string(),
            format!("{mean:.4}"),
            format!("{p:.4}"),
            format!("{std:.4}"),
            format!("{:.4}", std * (d as f64).sqrt()),
        ]);
    }
    println!();
    println!("expected shape: 'mean loss frac' ~ p in every row (d-independent);");
    println!("'std of loss' decreases as d grows, with 'std*sqrt(d)' roughly flat");
    println!("— i.e. Var ~ 1/d, the paper's conjecture. Practical reading: pick");
    println!("d = 2 for long downloads, larger d for jitter-sensitive streaming.");
}
