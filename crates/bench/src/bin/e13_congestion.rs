//! E13 — §5 congestion handling: a congested node sheds a thread (its
//! parent and child on that thread are joined directly) and reattaches
//! later; the network absorbs both operations gracefully.
//!
//! Protocol: a congestion wave hits a fraction of nodes (each drops one
//! thread), runs degraded, then recovers (each restores one). We track the
//! connectivity distribution through the three phases, plus the §2 framing
//! that congestion handled this way beats treating it as a failure.

use curtain_bench::{runtime, stats, table::Table};
use curtain_overlay::{CurtainNetwork, NodeId, OverlayConfig};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const K: usize = 24;
const D: usize = 3;
const N: usize = 300;

fn mean_connectivity(net: &CurtainNetwork) -> f64 {
    let hist = net.working_connectivity_histogram();
    let total: u64 = hist.iter().sum();
    let weighted: u64 = hist.iter().enumerate().map(|(c, &n)| c as u64 * n).sum();
    weighted as f64 / total.max(1) as f64
}

fn main() {
    runtime::banner(
        "E13 / congestion drop-restore (§5)",
        "shedding a thread degrades the shedder by exactly one unit and nobody else; restore heals",
    );
    let scale = runtime::scale();
    let trials = 6 * scale;

    let t = Table::new(&[
        "congested%",
        "phase",
        "mean conn",
        "min conn",
        "affected others%",
    ]);
    t.header();
    for &frac in &[0.1f64, 0.3, 0.6] {
        let mut phase_stats: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> =
            vec![(vec![], vec![], vec![]); 3];
        for trial in 0..trials {
            let mut rng = StdRng::seed_from_u64(1300 + trial);
            let mut net = CurtainNetwork::new(OverlayConfig::new(K, D)).expect("valid config");
            for _ in 0..N {
                net.join(&mut rng);
            }
            let ids = net.node_ids();
            let congested: Vec<NodeId> = ids
                .iter()
                .copied()
                .filter(|_| rng.random_bool(frac))
                .collect();
            let record = |net: &CurtainNetwork,
                          congested: &[NodeId],
                          slot: &mut (Vec<f64>, Vec<f64>, Vec<f64>)| {
                slot.0.push(mean_connectivity(net));
                slot.1.push(
                    net.working_connectivity_histogram()
                        .iter()
                        .position(|&c| c > 0)
                        .unwrap_or(0) as f64,
                );
                // Bystanders hurt: non-congested nodes below full d.
                let graph = net.graph();
                let mut hurt = 0usize;
                let mut others = 0usize;
                for (pos, row) in net.matrix().rows().iter().enumerate() {
                    if congested.contains(&row.node()) {
                        continue;
                    }
                    others += 1;
                    if graph.connectivity_of_position(pos) < D {
                        hurt += 1;
                    }
                }
                slot.2.push(hurt as f64 / others.max(1) as f64);
            };
            // Phase 0: healthy.
            record(&net, &congested, &mut phase_stats[0]);
            // Phase 1: congestion wave — each congested node sheds a thread.
            for &id in &congested {
                let _ = net.server_mut().drop_thread(id, &mut rng);
            }
            record(&net, &congested, &mut phase_stats[1]);
            // Phase 2: recovery — each restores one thread.
            for &id in &congested {
                let _ = net.server_mut().restore_thread(id, &mut rng);
            }
            record(&net, &congested, &mut phase_stats[2]);
        }
        for (phase, name) in ["healthy", "congested", "recovered"].iter().enumerate() {
            let (conn, min, hurt) = &phase_stats[phase];
            t.row(&[
                format!("{:.0}%", frac * 100.0),
                (*name).into(),
                format!("{:.3}", stats::mean(conn)),
                format!("{:.1}", stats::mean(min)),
                format!("{:.2}%", 100.0 * stats::mean(hurt)),
            ]);
        }
    }
    println!();
    println!("expected shape: during congestion the mean connectivity drops by");
    println!("~(congested% x 1/d x d)/N worth of units — the shedders' own unit —");
    println!("while 'affected others%' stays ~0: the splice joins parent to child");
    println!("directly, so bystanders keep every stream. Recovery restores d.");
    println!("Contrast §2: treating congestion as failure would punish children.");
}
