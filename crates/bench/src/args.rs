//! Shared command-line parsing for the experiment binaries.
//!
//! Every `e*` binary accepts the same small flag set; parsing it in one
//! place means a new flag (like `--seed` or `--scale`) lands everywhere at
//! once instead of growing another hand-rolled `while let` loop per
//! binary. Misuse prints a usage message and exits with status 2 — an
//! invocation error, not a panic.

use std::path::PathBuf;

use crate::runtime;
use crate::trace::Trace;

/// The flags shared by the experiment binaries.
///
/// | Flag | Meaning |
/// |------|---------|
/// | `--trace <path>` | stream telemetry events to a JSONL file |
/// | `--seed <u64>` | override the experiment's base RNG seed |
/// | `--scale <n≥1>` | override the `CURTAIN_SCALE` environment knob |
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExpArgs {
    /// `--trace <path>`, if given.
    pub trace_path: Option<PathBuf>,
    /// `--seed <u64>`, if given.
    pub seed: Option<u64>,
    /// `--scale <u64>`, if given (≥ 1).
    pub scale: Option<u64>,
}

impl ExpArgs {
    /// Parses the process arguments; on misuse prints the error and usage
    /// to stderr and exits with status 2.
    #[must_use]
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("error: {e}\n\n{}", Self::usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable form of
    /// [`ExpArgs::parse`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending flag on a missing value, an
    /// unparsable value, or an unknown flag.
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut parsed = ExpArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trace" => {
                    let path = args.next().ok_or("--trace requires a file path")?;
                    parsed.trace_path = Some(PathBuf::from(path));
                }
                "--seed" => {
                    let v = args.next().ok_or("--seed requires an integer")?;
                    parsed.seed =
                        Some(v.parse().map_err(|_| format!("--seed: not an integer: {v:?}"))?);
                }
                "--scale" => {
                    let v = args.next().ok_or("--scale requires an integer >= 1")?;
                    let scale: u64 =
                        v.parse().map_err(|_| format!("--scale: not an integer: {v:?}"))?;
                    if scale < 1 {
                        return Err("--scale must be >= 1".into());
                    }
                    parsed.scale = Some(scale);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(parsed)
    }

    /// The usage text printed on misuse.
    #[must_use]
    pub fn usage() -> &'static str {
        "usage: <experiment> [--trace <path>] [--seed <u64>] [--scale <n>]\n\
         \n\
         --trace <path>   stream telemetry events to a JSONL file\n\
         --seed <u64>     override the experiment's base RNG seed\n\
         --scale <n>      sample-count multiplier (overrides CURTAIN_SCALE)"
    }

    /// The effective scale: the `--scale` flag if given, else the
    /// `CURTAIN_SCALE` environment knob (default 1).
    #[must_use]
    pub fn scale(&self) -> u64 {
        self.scale.unwrap_or_else(runtime::scale)
    }

    /// The effective base seed: the `--seed` flag if given, else
    /// `default`.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        self.seed.unwrap_or(default)
    }

    /// Opens the trace handle: enabled when `--trace` was given, null
    /// otherwise. On file-creation failure prints the error and exits
    /// with status 2 (an invocation error, like an unwritable path).
    #[must_use]
    pub fn trace(&self) -> Trace {
        match &self.trace_path {
            None => Trace::default(),
            Some(path) => match Trace::to_path(path) {
                Ok(trace) => trace,
                Err(e) => {
                    eprintln!("error: cannot create trace file {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_all_flags() {
        let a = ExpArgs::try_parse(strings(&[
            "--trace", "out.jsonl", "--seed", "7", "--scale", "3",
        ]))
        .unwrap();
        assert_eq!(a.trace_path, Some(PathBuf::from("out.jsonl")));
        assert_eq!(a.seed_or(42), 7);
        assert_eq!(a.scale(), 3);
    }

    #[test]
    fn defaults_fall_through() {
        let a = ExpArgs::try_parse(strings(&[])).unwrap();
        assert_eq!(a.trace_path, None);
        assert_eq!(a.seed_or(42), 42);
        // Scale falls back to the environment knob (1 unless set).
        if std::env::var("CURTAIN_SCALE").is_err() {
            assert_eq!(a.scale(), 1);
        }
    }

    #[test]
    fn rejects_misuse_with_messages() {
        assert!(ExpArgs::try_parse(strings(&["--trace"])).unwrap_err().contains("--trace"));
        assert!(ExpArgs::try_parse(strings(&["--seed", "x"])).unwrap_err().contains("--seed"));
        assert!(ExpArgs::try_parse(strings(&["--scale", "0"])).unwrap_err().contains("--scale"));
        assert!(ExpArgs::try_parse(strings(&["--wat"])).unwrap_err().contains("--wat"));
    }
}
