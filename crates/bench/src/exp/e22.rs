//! E22 measurement core — vnet churn soak at scale: the paper's
//! N-independence claim, measured in one OS process.
//!
//! Theorem 4's punchline is that the steady-state defect probability —
//! the fraction of subscription-time a node spends cut off from the
//! source along one of its threads — depends on the churn *rate* and
//! the repair time, never on the swarm size `N`. No TCP harness can
//! check that at interesting `N`: a thousand socket-holding peers is a
//! thousand threads of scheduler noise. The vnet transport
//! ([`curtain_net::transport::vnet`]) runs the same sans-io peer and
//! coordinator state machines on a virtual clock instead, so one
//! process hosts the whole swarm and the measurement is deterministic
//! in `(params, seed)` — byte-identical journals on every rerun.
//!
//! One cell = [`churn_soak`]: join `peers` staggered, wait for the
//! initial completion wave, then run churn rounds. Each round admits a
//! cohort of fresh joiners, lets them get mid-transfer, and kills
//! `churn_frac · peers` random live peers — the joiners are the
//! measured population, since completed peers owe nothing and accrue
//! neither subscription-time nor defect-time. The defect reading
//! brackets exactly the churn window; repairs (stall → complaint →
//! redirect) run through the coordinator like they would over sockets.
//!
//! [`replay_identical`] runs the same cell twice and compares journal
//! digests — the determinism gate CI's `vnet-scale` job rides on.

use curtain_net::transport::vnet::{LinkProfile, VnetConfig, World};
use curtain_net::RepairPolicy;
use curtain_overlay::OverlayConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Virtual microseconds between staggered joins (initial wave and
/// churn cohorts alike): peers arrive over time, not in one burst.
const JOIN_STAGGER_US: u64 = 200;

/// Virtual length of one churn round: joiners run a quarter of it
/// before the kills land, then the rest is repair-and-finish time.
const ROUND_GAP_US: u64 = 50_000;

/// Drain budget for a completion wave, in virtual microseconds.
const DRAIN_DEADLINE_US: u64 = 240_000_000;

/// One churn-soak cell.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Swarm size `N` — the axis the defect probability must ignore.
    pub peers: usize,
    /// Overlay threads per object (`k`).
    pub fanout: usize,
    /// Parents per node (`d`).
    pub reserve: usize,
    /// Churn rounds after the initial completion wave.
    pub churn_rounds: usize,
    /// Fraction of `peers` joined *and* killed per round (size-coupled
    /// churn: the per-node failure exposure stays constant across `N`).
    pub churn_frac: f64,
    /// Independent per-frame loss probability on every link.
    pub loss: f64,
}

/// What one soak measured.
#[derive(Debug, Clone, Copy)]
pub struct ChurnOutcome {
    /// Defect probability over the churn window: defect-time divided by
    /// subscription-time, in-transfer peers only.
    pub defect_p: f64,
    /// Successful repair episodes (complaint answered by a redirect).
    pub repairs: u64,
    /// Resync readmissions (complaints that hit an unknowing coordinator).
    pub resyncs: u64,
    /// Repair episodes that exhausted their deadline. The claim gate
    /// wants zero: give-ups are the collapse the paper's bound excludes.
    pub gave_up: u64,
    /// Frames dropped by link loss.
    pub frames_lost: u64,
    /// True when every surviving peer decoded the object by the final
    /// drain deadline.
    pub all_complete: bool,
    /// Peers that reported completion over the soak's whole life.
    pub completed: u64,
    /// Virtual time the soak covered, in milliseconds.
    pub virtual_ms: f64,
    /// FNV-1a digest of the world's event journal — the determinism
    /// fingerprint.
    pub journal_digest: u64,
}

fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(131).wrapping_add(7) % 256) as u8).collect()
}

fn vnet_config(params: &ChurnParams) -> VnetConfig {
    VnetConfig {
        overlay: OverlayConfig::new(params.fanout, params.reserve),
        // 64 innovations per peer: slow enough that a churn-round kill
        // lands mid-transfer and the stall detector participates, fast
        // enough that a round's cohort finishes within the round.
        generations: 4,
        generation_size: 16,
        policy: RepairPolicy {
            stall_timeout: Duration::from_millis(20),
            max_backoff: Duration::from_millis(100),
            ..VnetConfig::default().policy
        },
        ..VnetConfig::default()
    }
}

fn fnv1a(journal: &[String]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for line in journal {
        for &byte in line.as_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs one churn soak. Deterministic in `(params, seed)`.
#[must_use]
pub fn churn_soak(params: &ChurnParams, seed: u64) -> ChurnOutcome {
    churn_soak_with_journal(params, seed).0
}

/// [`churn_soak`], also returning the world's full event journal — what
/// CI's `vnet-scale` job writes to disk twice and byte-diffs.
#[must_use]
pub fn churn_soak_with_journal(params: &ChurnParams, seed: u64) -> (ChurnOutcome, Vec<String>) {
    let cfg = vnet_config(params);
    let content = pattern(cfg.generations * cfg.generation_size * cfg.packet_len);
    let mut world = World::new(seed, cfg, &content);
    world.set_default_link(LinkProfile { loss: params.loss, ..LinkProfile::default() });

    // Initial wave: everyone joins staggered, everyone completes.
    for _ in 0..params.peers {
        world.join_peer();
        world.run_for(JOIN_STAGGER_US);
    }
    world.run_until_all_complete(world.clock_us() + DRAIN_DEADLINE_US);

    // Scenario decisions draw from their own stream, so the world's
    // internal randomness (loss samples, backoff jitter) cannot shift
    // which peers the scenario kills.
    let mut scenario = StdRng::seed_from_u64(seed ^ 0xE22C);
    let cohort = ((params.peers as f64 * params.churn_frac).round() as usize).max(1);
    let start = world.defect_report();
    for _ in 0..params.churn_rounds {
        for _ in 0..cohort {
            world.join_peer();
            world.run_for(JOIN_STAGGER_US);
        }
        world.run_for(ROUND_GAP_US / 4);
        // Kills land while the cohort is mid-transfer. Victims are
        // uniform over the live swarm — mostly completed peers, some of
        // them parents of in-transfer joiners: those links go dark and
        // must heal through stall → complaint → redirect.
        for _ in 0..cohort {
            let pool = world.alive_nodes();
            let (victim, _) = pool[scenario.random_range(0..pool.len())];
            world.kill_peer(victim);
        }
        world.run_for(3 * ROUND_GAP_US / 4);
    }
    let window = world.defect_report().since(&start);

    let all_complete = world.run_until_all_complete(world.clock_us() + DRAIN_DEADLINE_US);
    let stats = world.stats();
    let outcome = ChurnOutcome {
        defect_p: window.probability(),
        repairs: stats.repairs,
        resyncs: stats.resyncs,
        gave_up: stats.gave_up,
        frames_lost: stats.frames_lost,
        all_complete,
        completed: stats.completed,
        virtual_ms: world.clock_us() as f64 / 1_000.0,
        journal_digest: fnv1a(world.journal()),
    };
    (outcome, world.journal().to_vec())
}

/// Runs the same cell twice and reports whether the two journals are
/// byte-identical — the vnet's determinism contract.
#[must_use]
pub fn replay_identical(params: &ChurnParams, seed: u64) -> bool {
    let first = churn_soak(params, seed);
    let second = churn_soak(params, seed);
    first.journal_digest == second.journal_digest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(churn_rounds: usize) -> ChurnParams {
        ChurnParams {
            peers: 24,
            fanout: 8,
            reserve: 2,
            churn_rounds,
            churn_frac: 0.1,
            loss: 0.01,
        }
    }

    #[test]
    fn churn_produces_defects_that_heal_without_give_ups() {
        let out = churn_soak(&small(2), 7);
        assert!(out.all_complete, "{out:?}");
        assert_eq!(out.gave_up, 0, "{out:?}");
        assert!(out.defect_p > 0.0, "churn left no defect trace: {out:?}");
        assert!(out.defect_p < 1.0, "{out:?}");
        assert!(out.frames_lost > 0, "1% loss dropped nothing: {out:?}");
        assert!(
            out.completed as usize >= 24,
            "initial wave never completed: {out:?}"
        );
    }

    #[test]
    fn no_churn_means_no_defect() {
        let out = churn_soak(&small(0), 7);
        assert!(out.all_complete, "{out:?}");
        assert_eq!(out.gave_up, 0, "{out:?}");
        assert_eq!(out.defect_p, 0.0, "defect without churn: {out:?}");
    }

    #[test]
    fn same_seed_replays_identically_and_seeds_diverge() {
        assert!(replay_identical(&small(1), 11));
        let a = churn_soak(&small(1), 11);
        let b = churn_soak(&small(1), 13);
        assert_ne!(a.journal_digest, b.journal_digest);
    }
}
