//! E20 measurement core — generation size, class overlap, and window
//! tradeoffs across the codec backends.
//!
//! Two cell shapes, both deterministic in `(params, seed)`:
//!
//! * [`transfer`] — a source streams coded packets over an iid loss
//!   channel to one sink until the whole object decodes, with **no
//!   feedback** (the broadcast regime). The metric is completion
//!   overhead: packets sent per source packet. Disjoint generations pay
//!   a coupon-collector tail — the source keeps spraying generations
//!   the sink already finished — which overlapping classes cap by
//!   letting a neighbour's packets finish the last class (Silva, Zeng &
//!   Kschischang, arXiv:0905.2796; tradeoff curves per Li, Soljanin &
//!   Spasojević, arXiv:1011.3498).
//! * [`live_stream`] — the sliding-window backend under a paced live
//!   release (one source packet per tick, `rate` coded emissions per
//!   tick, ack feedback each tick). The metric is in-order delivery
//!   latency in ticks; a stationary stream keeps its p95 flat as the
//!   stream grows, which is the whole point of windowed coding.
//!
//! Content is a fixed pattern (not seeded), so the decoded-bytes digest
//! is comparable across backends *and* seeds — the byte-identical gate
//! in `curtain-lab` relies on this.

use curtain_codec::{CodecConfig, CodecKind};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Codec backend under test (stable labels for sweep parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Whole-object RLNC over disjoint generations.
    Rlnc,
    /// Overlapping classes with cross-class repair.
    Overlap,
    /// Sliding-window coding (window clamped to the object for
    /// feedback-free transfers).
    Window,
}

impl Backend {
    /// All backends, in display order.
    pub const ALL: [Backend; 3] = [Backend::Rlnc, Backend::Overlap, Backend::Window];

    /// A stable snake_case label (used as a sweep parameter value).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Backend::Rlnc => "rlnc",
            Backend::Overlap => "overlap",
            Backend::Window => "window",
        }
    }

    /// Parses a [`Backend::label`] back.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Backend::ALL.into_iter().find(|b| b.label() == label)
    }
}

/// One feedback-free loss-channel transfer cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferParams {
    /// Backend under test.
    pub backend: Backend,
    /// Nominal `g`-sized generations in the object.
    pub generations: usize,
    /// Generation (class) size in packets.
    pub g: usize,
    /// Packet payload length in bytes.
    pub s: usize,
    /// Packets shared between consecutive classes (Overlap only).
    pub overlap: usize,
    /// iid per-packet loss probability.
    pub loss: f64,
}

/// What one [`transfer`] run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// Coded packets the source emitted.
    pub sent: u64,
    /// Packets that survived the loss channel.
    pub delivered: u64,
    /// `sent / source packets` — the completion overhead.
    pub overhead: f64,
    /// `delivered / source packets` — overhead net of channel loss.
    pub delivered_overhead: f64,
    /// Decoded bytes equal the original object.
    pub matches: bool,
    /// FNV-1a (32-bit) digest of the decoded bytes.
    pub digest: u32,
}

/// One paced live-stream cell for the sliding-window backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamParams {
    /// Stream length in source packets.
    pub packets: usize,
    /// Nominal segment size (sizes telemetry segments, not the window).
    pub g: usize,
    /// Packet payload length in bytes.
    pub s: usize,
    /// Window span in source packets.
    pub window: usize,
    /// Coded emissions per released source packet.
    pub rate: usize,
    /// iid per-packet loss probability.
    pub loss: f64,
}

/// What one [`live_stream`] run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOutcome {
    /// p95 of per-packet delivery latency (ticks), over delivered packets.
    pub p95_latency: f64,
    /// Mean delivery latency in ticks.
    pub mean_latency: f64,
    /// Fraction of the stream delivered in order before the tick cap.
    pub delivered_fraction: f64,
}

/// The fixed content pattern: depends only on `len`, never on the seed
/// or backend, so decoded digests are comparable across every cell.
#[must_use]
pub fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(131).wrapping_add(7) % 256) as u8).collect()
}

/// FNV-1a, folded to 32 bits so the digest survives an `f64` metric slot
/// exactly.
#[must_use]
pub fn digest32(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    ((h >> 32) ^ (h & 0xffff_ffff)) as u32
}

fn config_for(p: &TransferParams) -> CodecConfig {
    match p.backend {
        Backend::Rlnc => CodecConfig::new(CodecKind::Rlnc, p.g, p.s),
        Backend::Overlap => {
            CodecConfig::new(CodecKind::Overlap, p.g, p.s).with_overlap(p.overlap)
        }
        // No feedback channel in a broadcast transfer, so the window must
        // cover the whole object (the session layer makes the same call).
        Backend::Window => {
            CodecConfig::new(CodecKind::Window, p.g, p.s).with_window(p.generations * p.g)
        }
    }
}

/// iid packet drop, deterministic in the rng stream.
fn lost(rng: &mut StdRng, loss: f64) -> bool {
    // 53-bit uniform in [0, 1): bias-free for any printable loss rate.
    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    u < loss
}

/// Streams one object source → loss channel → sink until decode.
/// Deterministic in `(params, seed)`.
///
/// # Panics
///
/// Panics if the transfer does not converge within `256 ×` the source
/// packet count (a misbehaving backend, not a slow channel).
#[must_use]
pub fn transfer(params: &TransferParams, seed: u64) -> TransferOutcome {
    let total = params.generations * params.g;
    let data = content(total * params.s);
    let cfg = config_for(params);
    let mut src = cfg.source(&data);
    let mut sink = cfg.sink(data.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut sent, mut delivered) = (0u64, 0u64);
    let cap = 256 * total as u64;
    while !sink.is_complete() {
        let packet = src.encode(&mut rng).expect("source never runs dry");
        sent += 1;
        assert!(sent <= cap, "transfer did not converge ({params:?})");
        if lost(&mut rng, params.loss) {
            continue;
        }
        delivered += 1;
        sink.ingest(packet).expect("source emits well-formed packets");
    }
    let decoded = sink.decoded().expect("complete sink decodes");
    TransferOutcome {
        sent,
        delivered,
        overhead: sent as f64 / total as f64,
        delivered_overhead: delivered as f64 / total as f64,
        matches: decoded == data,
        digest: digest32(&decoded),
    }
}

/// Runs the sliding-window backend under a paced live release and
/// measures in-order delivery latency. Deterministic in `(params, seed)`.
#[must_use]
pub fn live_stream(params: &StreamParams, seed: u64) -> StreamOutcome {
    let data = content(params.packets * params.s);
    let cfg = CodecConfig::new(CodecKind::Window, params.g, params.s)
        .with_window(params.window)
        .with_live(true);
    let mut src = cfg.source(&data);
    let mut sink = cfg.sink(data.len());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut delivered_at: Vec<Option<u64>> = vec![None; params.packets];
    let mut prev_delivered = 0usize;
    // The release phase, then a bounded drain for the stream's tail.
    let drain = 8 * params.window as u64 + 64;
    for tick in 0..params.packets as u64 + drain {
        src.advance_to((tick + 1).min(params.packets as u64));
        for _ in 0..params.rate {
            let Some(packet) = src.encode(&mut rng) else { continue };
            if lost(&mut rng, params.loss) {
                continue;
            }
            let _ = sink.ingest(packet);
        }
        let now = sink.progress().delivered_packets as usize;
        for slot in &mut delivered_at[prev_delivered..now] {
            *slot = Some(tick);
        }
        prev_delivered = now;
        src.on_feedback(now as u64);
        if now == params.packets {
            break;
        }
    }
    // Latency of packet i counts from its release tick (i).
    let mut latencies: Vec<f64> = delivered_at
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|t| t.saturating_sub(i as u64) as f64))
        .collect();
    latencies.sort_by(f64::total_cmp);
    let delivered = latencies.len();
    let p95 = if delivered == 0 {
        f64::INFINITY
    } else {
        latencies[((delivered - 1) as f64 * 0.95).round() as usize]
    };
    let mean = if delivered == 0 {
        f64::INFINITY
    } else {
        latencies.iter().sum::<f64>() / delivered as f64
    };
    StreamOutcome {
        p95_latency: p95,
        mean_latency: mean,
        delivered_fraction: delivered as f64 / params.packets as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_label(b.label()), Some(b));
        }
        assert_eq!(Backend::from_label("wat"), None);
    }

    #[test]
    fn lossless_transfer_is_near_optimal_and_byte_identical() {
        let mut digests = Vec::new();
        for backend in Backend::ALL {
            let params = TransferParams {
                backend,
                generations: 4,
                g: 8,
                s: 32,
                overlap: 2,
                loss: 0.0,
            };
            let out = transfer(&params, 11);
            assert!(out.matches, "{backend:?} corrupted the object");
            assert!(
                out.overhead < 1.8,
                "{backend:?} lossless overhead {:.2} is absurd",
                out.overhead
            );
            digests.push(out.digest);
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]), "backends disagree on bytes");
    }

    #[test]
    fn live_stream_delivers_with_bounded_latency() {
        let params = StreamParams {
            packets: 96,
            g: 8,
            s: 32,
            window: 32,
            rate: 2,
            loss: 0.1,
        };
        let out = live_stream(&params, 7);
        assert!(out.delivered_fraction > 0.99, "stream stalled: {out:?}");
        assert!(out.p95_latency.is_finite() && out.p95_latency < params.window as f64 * 4.0);
    }
}
