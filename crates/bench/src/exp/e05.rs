//! E05 measurement core — §5's coordinated adversarial failures.
//!
//! A 40%-grown network, a flash crowd of colluders joining consecutively,
//! further growth, then a simultaneous strike — compared under append vs
//! random-position insertion, against an iid-random cohort baseline.

use curtain_overlay::adversary::{strike, Cohort};
use curtain_overlay::{CurtainNetwork, InsertPolicy, NodeId, OverlayConfig};
pub use curtain_overlay::adversary::StrikeReport;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One E05 measurement cell (scenario aside).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Server threads.
    pub k: usize,
    /// Per-node degree.
    pub d: usize,
    /// Total arrivals.
    pub n: usize,
    /// Fraction of the network that colludes.
    pub frac: f64,
}

/// Which failure scenario strikes the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Append insertion: the flash crowd sits adjacently (worst case).
    FlashAppend,
    /// Random-position insertion scatters the flash crowd (§5's fix).
    FlashRandomInsert,
    /// An iid random cohort of the same size (the baseline).
    IidRandom,
}

impl Scenario {
    /// All scenarios, in the tables' display order.
    pub const ALL: [Scenario; 3] =
        [Scenario::FlashAppend, Scenario::FlashRandomInsert, Scenario::IidRandom];

    /// A stable snake_case label (used as a sweep parameter value).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scenario::FlashAppend => "flash_append",
            Scenario::FlashRandomInsert => "flash_rand_insert",
            Scenario::IidRandom => "iid_random",
        }
    }

    /// Parses a [`Scenario::label`] back.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Scenario::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// Grows a network with a consecutive flash crowd of colluders in the
/// middle; returns the network and the colluding cohort.
fn flash_crowd(
    params: &Params,
    policy: InsertPolicy,
    seed: u64,
) -> (CurtainNetwork, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net =
        CurtainNetwork::new(OverlayConfig::new(params.k, params.d).with_insert_policy(policy))
            .expect("valid config");
    let adversaries = (params.n as f64 * params.frac).round() as usize;
    let before = (params.n - adversaries) / 2;
    for _ in 0..before {
        net.join(&mut rng);
    }
    let colluders: Vec<NodeId> = (0..adversaries).map(|_| net.join(&mut rng)).collect();
    for _ in 0..(params.n - before - adversaries) {
        net.join(&mut rng);
    }
    (net, colluders)
}

/// Builds the scenario's network, strikes the cohort, and reports the
/// survivor damage. Deterministic in `(scenario, params, seed)`.
#[must_use]
pub fn strike_outcome(scenario: Scenario, params: &Params, seed: u64) -> StrikeReport {
    match scenario {
        Scenario::FlashAppend => {
            let (mut net, colluders) = flash_crowd(params, InsertPolicy::Append, seed);
            strike(&mut net, &colluders)
        }
        Scenario::FlashRandomInsert => {
            let (mut net, colluders) = flash_crowd(params, InsertPolicy::RandomPosition, seed);
            strike(&mut net, &colluders)
        }
        Scenario::IidRandom => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
            let mut net = CurtainNetwork::new(OverlayConfig::new(params.k, params.d))
                .expect("valid config");
            for _ in 0..params.n {
                net.join(&mut rng);
            }
            let cohort = Cohort::RandomFraction(params.frac).select(&net, &mut rng);
            strike(&mut net, &cohort)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_labels_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_label(s.label()), Some(s));
        }
        assert_eq!(Scenario::from_label("wat"), None);
    }
}
