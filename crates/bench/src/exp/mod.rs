//! Measurement cores of the experiment binaries, hoisted to library level.
//!
//! Each submodule holds the typed parameters and the per-run measurement
//! function of one experiment, so the same code is called from two places:
//!
//! * the thin `src/bin/e*.rs` binaries, which iterate a hard-coded grid
//!   and print the plain-text tables of `EXPERIMENTS.md`;
//! * `curtain-lab`, which sweeps the (parameter × seed) cell matrix in
//!   parallel, caches per-cell results, and regression-checks the paper's
//!   claims against the aggregated curves.
//!
//! Everything here is deterministic in its `seed` argument: a cell's
//! result depends only on its parameters and seed, never on global state
//! or scheduling — the property `curtain-lab` relies on for byte-identical
//! reports at any `--jobs` count. The exemptions are [`e06`] and
//! [`e21`], whose measurements are wall-clock (kernel throughputs and
//! real-socket control-plane rates respectively): the seed pins the
//! data, but the values depend on the machine (their claims gate
//! machine-independent ratios and pass/fail flags, not absolute rates).

pub mod e01;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e20;
pub mod e21;
pub mod e22;
