//! E04 measurement core — Theorem 5's time before collapse.
//!
//! Two processes:
//!
//! 1. the **full overlay process**: arrivals until all `k` hanging
//!    threads are simultaneously dead (the paper's "no thread survives"
//!    absorbing state), liveness checked by one BFS per checkpoint;
//! 2. the **scalar bound chain** (`curtain-analysis::defect_chain`),
//!    which extends the sweep to `k` values the full process cannot reach.

use curtain_analysis::defect_chain::{DefectChain, StepModel};
use curtain_analysis::drift::DriftParams;
use curtain_overlay::{defect, CurtainNetwork, OverlayConfig, OverlayGraph};
use curtain_telemetry::{Event, SharedRecorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// True iff every hanging thread's bottom holder is unreachable from the
/// server through working nodes.
#[must_use]
pub fn all_threads_dead(net: &CurtainNetwork) -> bool {
    let graph = net.graph();
    let depths = graph.depths();
    (0..net.config().k).all(|t| {
        let bottom = graph.bottom_of(t as u16);
        bottom != OverlayGraph::SERVER && depths[bottom].is_none()
    })
}

/// Arrivals until full collapse of the overlay process (`None` when
/// censored at `cap`). When `trace` is enabled, every 8-arrival
/// checkpoint emits an exact `DefectSample` (timestamped by `clock` +
/// local arrivals, so stitched trials stay monotone).
#[must_use]
pub fn overlay_collapse_time(
    k: usize,
    d: usize,
    p: f64,
    cap: usize,
    seed: u64,
    trace: &SharedRecorder,
    clock: &mut u64,
) -> Option<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
    let mut outcome = None;
    for t in 1..=cap {
        net.join_with_failure_prob(p, &mut rng);
        if t % 8 == 0 {
            if trace.is_enabled() {
                let counts = defect::exact(net.matrix(), d);
                trace.set_time(*clock + t as u64);
                trace.record(&Event::DefectSample {
                    defect: counts.total_defect(),
                    tuples: counts.inspected,
                });
            }
            if all_threads_dead(&net) {
                outcome = Some(t);
                break;
            }
        }
    }
    *clock += outcome.unwrap_or(cap) as u64;
    outcome
}

/// One scalar bound-chain cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainParams {
    /// Server threads.
    pub k: usize,
    /// Per-node degree.
    pub d: usize,
    /// Failure probability per arrival.
    pub p: f64,
    /// Defect fraction counting as collapse.
    pub threshold: f64,
    /// Step cap (`None` result when the chain never crosses it).
    pub max_steps: u64,
}

/// Steps until the scalar defect chain crosses `threshold` (`None` when
/// censored at `max_steps`).
#[must_use]
pub fn chain_collapse_time<R: Rng + ?Sized>(params: &ChainParams, rng: &mut R) -> Option<u64> {
    let drift = DriftParams { p: params.p, d: params.d, k: params.k };
    let mut chain = DefectChain::new(drift, StepModel::Pessimistic);
    chain.run_to_collapse(params.threshold, params.max_steps, rng)
}
