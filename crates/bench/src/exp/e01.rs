//! E01 measurement core — Theorem 4's steady-state defect fraction.
//!
//! Runs the §4 arrival process (each arrival failed w.p. `p`) and
//! Monte-Carlo-estimates the steady-state total defect fraction `E[B]/A`
//! at several checkpoints across several independent instances.

use curtain_overlay::churn::grow_with_failures;
use curtain_overlay::{defect, CurtainNetwork, OverlayConfig};
use curtain_telemetry::{Event, SharedRecorder};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::stats;

/// One E01 measurement cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Server threads.
    pub k: usize,
    /// Per-node degree.
    pub d: usize,
    /// Failure probability per arrival.
    pub p: f64,
    /// Arrivals before the first checkpoint (the network size).
    pub n: usize,
    /// Tuples sampled per defect estimate.
    pub samples: u64,
    /// Independent network instances averaged per cell.
    pub trials: u64,
}

/// Mean total defect fraction `B/A` over `trials` independent instances
/// and several checkpoints per instance.
///
/// Deterministic in `(params, seed)`. When `trace` is enabled, every
/// checkpoint emits a `DefectSample` event timestamped by cumulative
/// arrivals via `clock`, so stitched cells stay monotone in trace time.
#[must_use]
pub fn measure(params: &Params, seed: u64, trace: &SharedRecorder, clock: &mut u64) -> f64 {
    let &Params { k, d, p, n, samples, trials } = params;
    // The defect is a drifting random process: average over independent
    // instances and several checkpoints per instance.
    let mut acc = Vec::new();
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed + 1000 * t);
        let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
        grow_with_failures(&mut net, n, p, &mut rng);
        *clock += n as u64;
        for _ in 0..4 {
            let step = n / 20 + 1;
            grow_with_failures(&mut net, step, p, &mut rng);
            *clock += step as u64;
            let est = defect::sample(net.matrix(), d, samples, &mut rng);
            acc.push(est.total_defect_fraction());
            // Timestamp = cumulative arrivals, so the trace's defect curve
            // is a function of the paper's "time" (arrival count).
            trace.set_time(*clock);
            trace.record(&Event::DefectSample {
                defect: est.total_defect(),
                tuples: est.inspected,
            });
        }
    }
    stats::mean(&acc)
}
