//! E21 measurement core — control-plane durability and availability.
//!
//! Two cell shapes, both over real TCP sockets (like [`super::e06`],
//! the metrics are wall-clock, so values depend on the machine; claims
//! gate only machine-independent ratios and pass/fail flags):
//!
//! * [`join_throughput`] — `clients` threads hammer the coordinator's
//!   hello protocol while every mutation is written to a WAL whose
//!   `sync` costs a fixed [`JoinParams::sync_delay_us`] (emulating a
//!   real disk flush, and drowning the noise of whatever filesystem the
//!   benchmark host has). Group commit amortizes one sync over a whole
//!   admitted batch; fsync-per-mutation serializes behind the matrix
//!   lock, so the ratio between the two modes is the number the paper's
//!   durability story rides on.
//! * [`failover_drill`] — a primary with peers mid-transfer, a warm
//!   standby tailing it over the control port. Kill the primary: the
//!   standby must promote *at the same address*, survivors must finish
//!   byte-identical without a single repair give-up, and a fresh joiner
//!   admitted by the promoted coordinator must complete too.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use curtain_net::{
    proto, Coordinator, Peer, Source, Standby, StandbyOptions, Wal, WalOptions, WalRecord,
    WalStore,
};
use curtain_overlay::OverlayConfig;
use curtain_telemetry::{MemorySink, SharedRecorder};

/// A [`WalStore`] whose `sync`/`compact` cost a fixed delay on top of
/// the real file I/O — a portable stand-in for a disk's flush latency.
struct SlowWal {
    inner: Wal,
    delay: Duration,
}

impl WalStore for SlowWal {
    fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.inner.append(record)
    }

    fn sync(&mut self) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.sync()
    }

    fn compact(&mut self, checkpoint: &WalRecord) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.compact(checkpoint)
    }

    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn records(&self) -> u64 {
        self.inner.records()
    }

    fn needs_compaction(&self) -> bool {
        self.inner.needs_compaction()
    }
}

/// One join-throughput cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinParams {
    /// `true` = group commit (the default production mode); `false` =
    /// one fsync per mutation.
    pub group_commit: bool,
    /// Concurrent client threads.
    pub clients: usize,
    /// Hello calls per client.
    pub joins_per_client: usize,
    /// Artificial per-sync delay in microseconds.
    pub sync_delay_us: u64,
}

/// What one [`join_throughput`] run measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinOutcome {
    /// Total joins admitted (every one durable before its response).
    pub joins: u64,
    /// Wall-clock seconds for the whole storm.
    pub elapsed_s: f64,
    /// Admitted joins per second.
    pub joins_per_s: f64,
}

/// A scratch WAL path unique to this process and `tag`.
fn wal_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("curtain-e21-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.wal"))
}

/// Runs a join storm against a coordinator whose WAL sync costs
/// [`JoinParams::sync_delay_us`], and measures admitted joins/second.
///
/// # Panics
///
/// Panics on socket or WAL errors — a broken environment, not a result.
#[must_use]
pub fn join_throughput(params: &JoinParams, seed: u64) -> JoinOutcome {
    let mode = if params.group_commit { "group" } else { "per_mutation" };
    let path = wal_path(&format!("join-{mode}-{seed}"));
    // No compaction during the storm: the threshold is unreachable.
    let wal = Wal::create(&path, u64::MAX).expect("create wal");
    let store: Box<dyn WalStore> = Box::new(SlowWal {
        inner: wal,
        delay: Duration::from_micros(params.sync_delay_us),
    });
    let coordinator = Coordinator::start_durable_with_store(
        OverlayConfig::new(8, 2),
        seed,
        SharedRecorder::null(),
        store,
        params.group_commit,
        false,
    )
    .expect("start coordinator");
    let addr = coordinator.addr();
    // Hellos are only admitted once a source is registered; nothing
    // subscribes in this cell, so the advertised address is a dummy.
    let registered = proto::call(
        addr,
        &proto::Request::RegisterSource {
            data_addr: "127.0.0.1:19999".parse().expect("addr"),
            generations: 1,
            generation_size: 4,
            packet_len: 16,
            content_len: 64,
        },
        Duration::from_secs(30),
    )
    .expect("register source");
    assert_eq!(registered, proto::Response::Ok);

    let port = Arc::new(AtomicU64::new(20000));
    let start = Instant::now();
    let workers: Vec<_> = (0..params.clients)
        .map(|_| {
            let port = Arc::clone(&port);
            let joins = params.joins_per_client;
            std::thread::spawn(move || {
                for _ in 0..joins {
                    // Unique fake data addresses: nothing subscribes in
                    // this cell, the matrix mutation is the workload.
                    let p = port.fetch_add(1, Ordering::Relaxed) % 40000 + 20000;
                    let data_addr: SocketAddr =
                        format!("127.0.0.1:{p}").parse().expect("addr");
                    let resp = proto::call(
                        addr,
                        &proto::Request::Hello { data_addr },
                        Duration::from_secs(30),
                    )
                    .expect("hello call");
                    assert!(
                        matches!(resp, proto::Response::Welcome { .. }),
                        "join rejected: {resp:?}"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let joins = (params.clients * params.joins_per_client) as u64;
    coordinator.kill();
    let _ = std::fs::remove_file(&path);
    JoinOutcome { joins, elapsed_s: elapsed, joins_per_s: joins as f64 / elapsed.max(1e-9) }
}

/// One failover-drill cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverParams {
    /// Peers mid-transfer when the primary dies.
    pub peers: usize,
    /// Object size in bytes.
    pub payload: usize,
}

/// What one [`failover_drill`] run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverOutcome {
    /// The standby promoted itself at the primary's address.
    pub promoted: bool,
    /// Every survivor (and the post-failover joiner) decoded the exact
    /// source bytes.
    pub byte_ok: bool,
    /// Survivors that completed within the drill deadline.
    pub completed: usize,
    /// `repair_gave_up` counter across every peer at the end.
    pub give_ups: u64,
}

/// The fixed drill payload (pattern, not seeded — digests comparable).
#[must_use]
pub fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(197).wrapping_add(13) % 256) as u8).collect()
}

/// Primary + warm standby + peers; kill the primary mid-transfer and
/// check the control plane heals without data loss.
///
/// # Panics
///
/// Panics on setup errors (bind/register failures) — a broken
/// environment, not a measured outcome. Protocol-level failures
/// (no promotion, incomplete transfer) are reported in the outcome.
#[must_use]
pub fn failover_drill(params: &FailoverParams, seed: u64) -> FailoverOutcome {
    const PACE: Duration = Duration::from_micros(150);
    let primary_path = wal_path(&format!("drill-primary-{seed}"));
    let standby_path = wal_path(&format!("drill-standby-{seed}"));
    let sink = MemorySink::new();
    let recorder = SharedRecorder::wall_clock(sink.clone());
    let config = OverlayConfig::new(4, 2);

    let primary = Coordinator::start_durable(
        config,
        seed,
        recorder.clone(),
        &WalOptions::new(&primary_path),
    )
    .expect("start primary");
    let addr = primary.addr();
    let data = content(params.payload);
    let _source =
        Source::start_with_shape(addr, &data, 16, 128, PACE).expect("start source");
    let peers: Vec<Peer> = (0..params.peers)
        .map(|_| Peer::join_traced(addr, PACE, recorder.clone()).expect("peer join"))
        .collect();

    let mut standby = Standby::start(
        StandbyOptions::new(addr, WalOptions::new(&standby_path), config)
            .with_poll_interval(Duration::from_millis(25))
            .with_fail_threshold(3),
        recorder.clone(),
    );
    // Register + every hello must be shipped before the plug is pulled.
    let wanted = 1 + params.peers as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while standby.last_seq() < wanted && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    primary.kill();
    let promoted_coordinator = if standby.wait_promoted(Duration::from_secs(15)) {
        standby.take_promoted().and_then(Result::ok)
    } else {
        None
    };
    let promoted =
        promoted_coordinator.as_ref().map(|c| c.addr() == addr).unwrap_or(false);

    let mut completed = 0usize;
    let mut byte_ok = promoted;
    for peer in &peers {
        if peer.wait_complete(Duration::from_secs(30)) {
            completed += 1;
            byte_ok &= peer.decoded_content().as_deref() == Some(&data[..]);
        } else {
            byte_ok = false;
        }
    }
    // A fresh joiner admitted by the promoted coordinator completes too.
    if promoted {
        match Peer::join_traced(addr, PACE, recorder.clone()) {
            Ok(joiner) => {
                if joiner.wait_complete(Duration::from_secs(30)) {
                    byte_ok &= joiner.decoded_content().as_deref() == Some(&data[..]);
                } else {
                    byte_ok = false;
                }
                joiner.leave();
            }
            Err(_) => byte_ok = false,
        }
    }
    let give_ups =
        sink.metrics().snapshot().counters.get("repair_gave_up").copied().unwrap_or(0);
    for peer in peers {
        peer.leave();
    }
    drop(promoted_coordinator);
    let _ = std::fs::remove_file(&primary_path);
    let _ = std::fs::remove_file(&standby_path);
    FailoverOutcome { promoted, byte_ok, completed, give_ups }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_commit_beats_per_mutation_under_slow_sync() {
        let base = JoinParams {
            group_commit: true,
            clients: 4,
            joins_per_client: 8,
            sync_delay_us: 2000,
        };
        let group = join_throughput(&base, 5);
        let per = join_throughput(&JoinParams { group_commit: false, ..base }, 5);
        assert_eq!(group.joins, 32);
        assert_eq!(per.joins, 32);
        // The lab claim gates >= 3x over more samples; the unit test
        // only asserts the direction so it cannot flake on slow runners.
        assert!(
            group.joins_per_s > per.joins_per_s,
            "group {:.0}/s not above per-mutation {:.0}/s",
            group.joins_per_s,
            per.joins_per_s
        );
    }

    #[test]
    fn failover_drill_heals_without_data_loss() {
        let out = failover_drill(&FailoverParams { peers: 2, payload: 8 * 1024 }, 7);
        assert!(out.promoted, "standby never promoted: {out:?}");
        assert!(out.byte_ok, "bytes diverged: {out:?}");
        assert_eq!(out.completed, 2, "{out:?}");
        assert_eq!(out.give_ups, 0, "{out:?}");
    }
}
