//! E06-dataplane measurement core — single-node data-plane throughput.
//!
//! Three families of numbers, all wall-clock:
//!
//! * **Kernel throughput** — MiB/s of the `dst ^= c·src` axpy for each
//!   compiled-in [`GfBackend`], the quantity the SIMD dispatch exists to
//!   improve ([`axpy_throughput`]).
//! * **Codec throughput** — packets/s for encode, decode (progressive
//!   elimination per ingest), and recode at a `(g, symbol_len)` grid point
//!   ([`codec_throughput`]).
//! * **Recode-path comparison** — the new `Arc`-snapshot emit path against
//!   a faithful reconstruction of the pre-refactor one (deep-copy the
//!   basis rows per emitted packet, as `Peer::snapshot_next()`'s
//!   `Recoder::clone()` used to), so `BENCH_e06.json` records the
//!   refactor's speedup, not just its absolute numbers.
//!
//! Unlike every other experiment core, the measurements here are *timings*
//! and therefore not deterministic in `(params, seed)`: the seed pins the
//! data and the coefficient streams, but the reported rates track the
//! machine they ran on. The lab's caching still makes re-reports
//! byte-stable; cross-machine comparisons should use the recorded ratios
//! (`simd_speedup`, `recode_speedup`), which are what the claims gate.

use std::time::Instant;

use curtain_gf::kernels::{self, GfBackend};
use curtain_gf::vec_ops;
use curtain_rlnc::{BufPool, CodedPacket, Decoder, Encoder, Recoder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizing of one kernel-throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Buffer length in bytes (a typical coded-symbol length).
    pub len: usize,
    /// Axpy passes over the buffer (total traffic = `len * passes`).
    pub passes: usize,
}

/// Backends compiled in *and* usable on this CPU, fastest-preference
/// first, always ending in `Scalar`.
#[must_use]
pub fn available_backends() -> Vec<GfBackend> {
    kernels::available_backends()
}

/// Measures axpy throughput (MiB/s) for `backend`. Coefficients rotate
/// through 2..=255 so the `c ∈ {0, 1}` fast paths never fire.
#[must_use]
pub fn axpy_throughput(backend: GfBackend, params: &KernelParams, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = vec![0u8; params.len];
    rng.fill(&mut src[..]);
    let mut dst = vec![0u8; params.len];
    rng.fill(&mut dst[..]);
    // Warm the tables/caches outside the timed window.
    kernels::axpy_on(backend, &mut dst, 29, &src);
    let mut c: u8 = 2;
    let start = Instant::now();
    for _ in 0..params.passes {
        kernels::axpy_on(backend, &mut dst, c, &src);
        c = if c == 255 { 2 } else { c + 1 };
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    // `dst` feeds back into the next pass, so the loop cannot be hoisted.
    std::hint::black_box(&dst);
    (params.len * params.passes) as f64 / secs / (1024.0 * 1024.0)
}

/// Sizing of one codec-throughput measurement cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecParams {
    /// Generation size `g` (packets per generation).
    pub g: usize,
    /// Symbol length `s` in bytes.
    pub symbol_len: usize,
    /// Packets to push through each timed loop.
    pub packets: usize,
}

/// Wall-clock packets/s for each stage of the data plane at one grid
/// point, plus the pre-refactor recode baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecThroughput {
    /// Source-side `Encoder::encode` rate.
    pub encode_pps: f64,
    /// Receiver-side `Decoder::push` rate (progressive elimination,
    /// redundant packets included — their reduction work is real).
    pub decode_pps: f64,
    /// The new emit path: cached `Arc` snapshot + pool-backed recode.
    pub recode_pps: f64,
    /// The pre-refactor emit path: deep-copy the basis rows per packet
    /// (what cloning a `Vec<u8>`-rowed `Recoder` under the lock cost),
    /// then mix from the copy with the same kernels.
    pub recode_clone_pps: f64,
}

impl CodecThroughput {
    /// `recode_pps / recode_clone_pps` — the refactor's speedup on the
    /// serving path.
    #[must_use]
    pub fn recode_speedup(&self) -> f64 {
        self.recode_pps / self.recode_clone_pps.max(1e-9)
    }
}

/// Random source data for one generation.
fn generation_data(g: usize, symbol_len: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    (0..g)
        .map(|_| {
            let mut p = vec![0u8; symbol_len];
            rng.fill(&mut p[..]);
            p
        })
        .collect()
}

/// Mixes one random combination from deep-copied rows — the inner loop of
/// the pre-refactor baseline. Uses the same dispatched kernels as the
/// real path so the measured difference is the copy + allocation traffic,
/// not a kernel handicap.
fn mix_rows(rows: &[(Vec<u8>, Vec<u8>)], g: usize, symbol_len: usize, rng: &mut StdRng) -> CodedPacket {
    let mut coeffs = vec![0u8; g];
    let mut payload = vec![0u8; symbol_len];
    loop {
        let mut any = false;
        for (rc, rp) in rows {
            let weight: u8 = rng.random();
            if weight == 0 {
                continue;
            }
            any = true;
            vec_ops::axpy(&mut coeffs, weight, rc);
            vec_ops::axpy(&mut payload, weight, rp);
        }
        if any {
            break;
        }
    }
    CodedPacket::new(0, coeffs, payload)
}

/// Measures the full codec grid point. Deterministic *data* in `seed`;
/// the rates are wall-clock (see the module docs).
#[must_use]
pub fn codec_throughput(params: &CodecParams, seed: u64) -> CodecThroughput {
    let CodecParams { g, symbol_len, packets } = *params;
    let mut rng = StdRng::seed_from_u64(seed);
    let enc = Encoder::new(0, generation_data(g, symbol_len, &mut rng)).expect("non-empty");

    // Encode rate (also produces the decode workload).
    let start = Instant::now();
    let coded: Vec<CodedPacket> = (0..packets).map(|_| enc.encode(&mut rng)).collect();
    let encode_pps = packets as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Decode rate: one pooled decoder ingesting the whole stream.
    let pool = BufPool::default();
    let mut dec = Decoder::with_pool(0, g, symbol_len, pool.clone());
    let start = Instant::now();
    for p in coded.iter().cloned() {
        let _ = dec.push(p);
    }
    let decode_pps = packets as f64 / start.elapsed().as_secs_f64().max(1e-9);
    assert!(dec.is_complete(), "decode workload must complete the generation");

    // A full recoder to serve from.
    let mut rec = Recoder::with_pool(0, g, symbol_len, pool);
    while !rec.is_complete() {
        let _ = rec.push(enc.encode(&mut rng));
    }

    // New path: cached Arc snapshot per packet (what `snapshot_next` now
    // does under the lock), recode from shared rows.
    let start = Instant::now();
    for _ in 0..packets {
        let snap = rec.snapshot();
        std::hint::black_box(snap.recode(&mut rng));
    }
    let recode_pps = packets as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Pre-refactor path: deep-copy the basis per packet, mix from the
    // copy. This is what `Recoder::clone()` under the lock used to cost
    // when rows were plain `Vec<u8>`s.
    let basis: Vec<(Vec<u8>, Vec<u8>)> = rec
        .snapshot()
        .rows()
        .map(|(c, p)| (c.to_vec(), p.to_vec()))
        .collect();
    let start = Instant::now();
    for _ in 0..packets {
        let copy = basis.clone();
        std::hint::black_box(mix_rows(&copy, g, symbol_len, &mut rng));
    }
    let recode_clone_pps = packets as f64 / start.elapsed().as_secs_f64().max(1e-9);

    CodecThroughput { encode_pps, decode_pps, recode_pps, recode_clone_pps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_available_backend_reports_positive_throughput() {
        let params = KernelParams { len: 4096, passes: 64 };
        for backend in available_backends() {
            let mibs = axpy_throughput(backend, &params, 7);
            assert!(mibs > 0.0, "{backend:?} reported {mibs}");
        }
    }

    #[test]
    fn scalar_is_always_among_available() {
        assert!(available_backends().contains(&GfBackend::Scalar));
    }

    #[test]
    fn codec_throughput_is_positive_and_decodes() {
        let t = codec_throughput(&CodecParams { g: 8, symbol_len: 128, packets: 64 }, 3);
        assert!(t.encode_pps > 0.0);
        assert!(t.decode_pps > 0.0);
        assert!(t.recode_pps > 0.0);
        assert!(t.recode_clone_pps > 0.0);
        assert!(t.recode_speedup() > 0.0);
    }

    #[test]
    fn baseline_mix_produces_valid_packets() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<(Vec<u8>, Vec<u8>)> =
            (0..4).map(|i| (vec![i as u8 + 1; 4], vec![i as u8; 16])).collect();
        let p = mix_rows(&rows, 4, 16, &mut rng);
        assert_eq!(p.coefficients().len(), 4);
        assert_eq!(p.payload().len(), 16);
        assert!(!p.is_vacuous());
    }
}
