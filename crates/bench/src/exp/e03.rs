//! E03 measurement core — Lemmas 6 & 7's one-step defect drift.
//!
//! Small `k` so the defect `B` is computed *exactly* over all `C(k,d)`
//! tuples. Runs the arrival process at a `p` high enough to visit a range
//! of defect levels and records `(b, ΔB)` transitions binned by `b`.

use curtain_overlay::{defect, CurtainNetwork, OverlayConfig};
use curtain_telemetry::{Event, SharedRecorder};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// One E03 measurement cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Server threads (small: the defect is computed exactly).
    pub k: usize,
    /// Per-node degree.
    pub d: usize,
    /// Failure probability per arrival (high: visit many defect levels).
    pub p: f64,
    /// Arrivals to record.
    pub arrivals: usize,
    /// Number of equal-width `b`-bins for the conditional drift.
    pub bins: usize,
}

/// The recorded drift transitions of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRun {
    /// Per-`b`-bin observed one-step changes `ΔB/A` (bin `i` covers
    /// `b ∈ [i/bins, (i+1)/bins)`).
    pub deltas: Vec<Vec<f64>>,
    /// Largest observed `|ΔB|` (unnormalized), for the Lemma 6 cap.
    pub max_step: f64,
    /// The tuple count `A = C(k, d)`.
    pub tuples: f64,
}

/// Runs the arrival process and returns the binned drift observations.
///
/// Deterministic in `(params, seed)`. When `recorder` is enabled, the
/// exact defect after every arrival is emitted as a `DefectSample` event
/// timestamped by arrival count.
#[must_use]
pub fn run(params: &Params, seed: u64, recorder: &SharedRecorder) -> DriftRun {
    let &Params { k, d, p, arrivals, bins } = params;
    let a = defect::binomial(k as u64, d as u64) as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
    let mut deltas: Vec<Vec<f64>> = vec![Vec::new(); bins];
    let mut max_step: f64 = 0.0;
    let mut before = defect::exact(net.matrix(), d).total_defect() as f64;

    for arrival in 0..arrivals {
        let b = before / a;
        net.join_with_failure_prob(p, &mut rng);
        let after = defect::exact(net.matrix(), d).total_defect() as f64;
        // The exact per-arrival defect series, for offline replay.
        recorder.set_time(arrival as u64 + 1);
        recorder.record(&Event::DefectSample { defect: after as u64, tuples: a as u64 });
        let delta = after - before;
        max_step = max_step.max(delta.abs());
        let bin = ((b * bins as f64) as usize).min(bins - 1);
        deltas[bin].push(delta / a);
        before = after;
        // Restart when the process nears collapse so we keep sampling the
        // interesting range (and the graph stays small).
        if b > 0.85 || net.len() > 1500 {
            net = CurtainNetwork::new(OverlayConfig::new(k, d)).expect("valid config");
            // Re-seed some defect so mid-range bins fill quickly.
            for _ in 0..rng.random_range(0..5) {
                net.join_failed(&mut rng);
            }
            before = defect::exact(net.matrix(), d).total_defect() as f64;
        }
    }

    DriftRun { deltas, max_step, tuples: a }
}
