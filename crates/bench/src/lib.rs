//! Shared infrastructure for the experiment binaries (`src/bin/e*.rs`).
//!
//! Every binary reproduces one claim of the paper (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md` for the index). They share:
//!
//! * [`table`] — aligned plain-text table output (the "figures" of a
//!   terminal reproduction);
//! * [`stats`] — means, standard deviations and percentiles;
//! * [`runtime`] — the `CURTAIN_SCALE` environment knob: `1` (default)
//!   finishes each experiment in seconds; larger values multiply sample
//!   counts for tighter error bars;
//! * [`args`] — the shared `--trace` / `--seed` / `--scale` flag parser
//!   (one place to add a flag for every binary at once);
//! * [`trace`] — the `--trace <path>` flag's handle: experiments that
//!   support it stream `curtain-telemetry` events to a JSONL file, and
//!   [`trace::replay_defect`] reconstructs the defect-over-time curve from
//!   such a file for offline cross-checks against `curtain-analysis`;
//! * [`exp`] — the hoisted measurement cores of e01/e03/e04/e05, called
//!   both by the thin binaries and by `curtain-lab`'s parallel,
//!   regression-gated sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod exp;

/// Aligned plain-text tables.
pub mod table {
    /// A fixed-column table printer.
    ///
    /// # Example
    ///
    /// ```
    /// use curtain_bench::table::Table;
    ///
    /// let t = Table::new(&["k", "d", "defect"]);
    /// t.header();
    /// t.row(&["64".into(), "3".into(), format!("{:.4}", 0.0321)]);
    /// ```
    pub struct Table {
        columns: Vec<String>,
        width: usize,
    }

    impl Table {
        /// Creates a table with the given column names.
        #[must_use]
        pub fn new(columns: &[&str]) -> Self {
            let width = columns.iter().map(|c| c.len()).max().unwrap_or(0).max(10) + 2;
            Table { columns: columns.iter().map(ToString::to_string).collect(), width }
        }

        /// Prints the header row and a rule.
        pub fn header(&self) {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| format!("{c:>width$}", width = self.width))
                .collect();
            println!("{}", cells.join(""));
            println!("{}", "-".repeat(self.width * self.columns.len()));
        }

        /// Prints one data row.
        ///
        /// # Panics
        ///
        /// Panics if the cell count differs from the column count.
        pub fn row(&self, cells: &[String]) {
            assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
            let cells: Vec<String> = cells
                .iter()
                .map(|c| format!("{c:>width$}", width = self.width))
                .collect();
            println!("{}", cells.join(""));
        }
    }
}

/// Summary statistics over f64 samples.
pub mod stats {
    /// Arithmetic mean (0.0 for empty input).
    #[must_use]
    pub fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// Population standard deviation (0.0 for fewer than two samples).
    #[must_use]
    pub fn std_dev(xs: &[f64]) -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        let m = mean(xs);
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    /// The `pct` percentile (0–100) by nearest-rank on a copy.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or `pct` is out of range.
    #[must_use]
    pub fn percentile(xs: &[f64], pct: f64) -> f64 {
        assert!(!xs.is_empty(), "empty sample");
        assert!((0.0..=100.0).contains(&pct), "percentile out of range");
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let rank = ((pct / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[rank]
    }

    /// Least-squares slope of `y` on `x` (NaN for degenerate input).
    #[must_use]
    pub fn slope(points: &[(f64, f64)]) -> f64 {
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }
}

/// Experiment sizing.
pub mod runtime {
    /// Reads `CURTAIN_SCALE` (default 1): a multiplier on sample counts.
    #[must_use]
    pub fn scale() -> u64 {
        std::env::var("CURTAIN_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&s| s >= 1)
            .unwrap_or(1)
    }

    /// Prints the standard experiment banner.
    pub fn banner(id: &str, claim: &str) {
        println!("=== {id} ===");
        println!("claim: {claim}");
        println!("scale: CURTAIN_SCALE={} (set higher for tighter error bars)", scale());
        println!();
    }
}

/// The `--trace <path>` flag and offline trace replay.
pub mod trace {
    use std::fs::File;
    use std::io::{self, BufReader};
    use std::path::Path;

    use curtain_telemetry::replay::{read_trace, TracedEvent};
    use curtain_telemetry::{Event, JsonlSink, SharedRecorder};

    /// The experiment's trace handle: an enabled [`SharedRecorder`]
    /// streaming JSONL to the `--trace` path, or a null recorder when the
    /// flag is absent. Dropping the handle flushes the file.
    #[derive(Debug, Default)]
    pub struct Trace {
        recorder: SharedRecorder,
    }

    impl Trace {
        /// Parses `--trace <path>` from the process arguments. Returns a
        /// null (zero-cost) handle when the flag is absent.
        ///
        /// # Panics
        ///
        /// Panics when `--trace` is present without a path, or the file
        /// cannot be created — an experiment invocation error, reported
        /// loudly rather than silently untraced.
        #[must_use]
        pub fn from_args() -> Self {
            let mut args = std::env::args().skip(1);
            while let Some(arg) = args.next() {
                if arg == "--trace" {
                    let path = args.next().expect("--trace requires a file path");
                    return Self::to_path(&path).expect("create trace file");
                }
            }
            Trace::default()
        }

        /// A handle writing to `path` unconditionally.
        ///
        /// # Errors
        ///
        /// Propagates file-creation errors.
        pub fn to_path(path: impl AsRef<Path>) -> io::Result<Self> {
            let sink = JsonlSink::buffered(File::create(path)?);
            Ok(Trace { recorder: SharedRecorder::new(sink) })
        }

        /// A clone of the underlying recorder, for threading into
        /// simulations.
        #[must_use]
        pub fn recorder(&self) -> SharedRecorder {
            self.recorder.clone()
        }

        /// True when `--trace` was given.
        #[must_use]
        pub fn is_enabled(&self) -> bool {
            self.recorder.is_enabled()
        }
    }

    impl Drop for Trace {
        fn drop(&mut self) {
            if let Err(e) = self.recorder.flush() {
                eprintln!("warning: trace flush failed: {e}");
            }
        }
    }

    /// Reads a JSONL trace file written via `--trace`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse errors as human-readable strings.
    pub fn read_trace_file(path: impl AsRef<Path>) -> Result<Vec<TracedEvent>, String> {
        let file = File::open(path.as_ref())
            .map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
        read_trace(BufReader::new(file))
    }

    /// Reconstructs the defect-over-time curve `(t, B/A)` from a trace's
    /// `DefectSample` events — the checkpoints experiments emit while the
    /// arrival process runs.
    #[must_use]
    pub fn replay_defect(events: &[TracedEvent]) -> Vec<(u64, f64)> {
        events
            .iter()
            .filter_map(|te| match te.event {
                Event::DefectSample { defect, tuples } if tuples > 0 => {
                    Some((te.at, defect as f64 / tuples as f64))
                }
                _ => None,
            })
            .collect()
    }

    /// Reconstructs the *cumulative* defect from `ThreadDefect` deltas —
    /// the per-repair accounting the overlay server emits. Returns the
    /// running total after each delta, clamped at zero (a trace may begin
    /// mid-run, after some defect already existed).
    #[must_use]
    pub fn replay_thread_defect(events: &[TracedEvent]) -> Vec<(u64, i64)> {
        let mut total = 0i64;
        events
            .iter()
            .filter_map(|te| match te.event {
                Event::ThreadDefect { delta, .. } => {
                    total = (total + delta).max(0);
                    Some((te.at, total))
                }
                _ => None,
            })
            .collect()
    }

    /// Mean of the curve's values after discarding the first
    /// `burn_in_fraction` of points (the transient before the drift
    /// equilibrium). Returns `None` for an empty tail.
    ///
    /// # Panics
    ///
    /// Panics if `burn_in_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn steady_state_mean(curve: &[(u64, f64)], burn_in_fraction: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&burn_in_fraction),
            "burn-in fraction out of range"
        );
        let skip = (curve.len() as f64 * burn_in_fraction) as usize;
        let tail = &curve[skip.min(curve.len())..];
        if tail.is_empty() {
            return None;
        }
        Some(tail.iter().map(|(_, b)| b).sum::<f64>() / tail.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(stats::mean(&xs), 2.5);
        assert!((stats::std_dev(&xs) - 1.118033988749895).abs() < 1e-12);
        assert_eq!(stats::percentile(&xs, 0.0), 1.0);
        assert_eq!(stats::percentile(&xs, 100.0), 4.0);
        assert_eq!(stats::percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn stats_edge_cases() {
        assert_eq!(stats::mean(&[]), 0.0);
        assert_eq!(stats::std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn slope_recovers_a_line() {
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((stats::slope(&pts) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn scale_defaults_to_one() {
        // Unless the caller set it in the environment.
        if std::env::var("CURTAIN_SCALE").is_err() {
            assert_eq!(runtime::scale(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn table_rejects_ragged_rows() {
        let t = table::Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn replay_reconstructs_defect_curve() {
        use curtain_telemetry::replay::parse_trace;
        use curtain_telemetry::{Event, JsonlSink, SharedRecorder};

        let sink = JsonlSink::new(Vec::new());
        let r = SharedRecorder::new(sink.clone());
        for (t, defect) in [(1u64, 0u64), (2, 3), (3, 6), (4, 6)] {
            r.set_time(t);
            r.record(&Event::DefectSample { defect, tuples: 12 });
        }
        r.record(&Event::ThreadDefect { thread: 0, delta: 2 });
        r.record(&Event::ThreadDefect { thread: 1, delta: -2 });
        r.flush().unwrap();

        let events = parse_trace(&String::from_utf8(sink.bytes()).unwrap()).unwrap();
        let curve = trace::replay_defect(&events);
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0], (1, 0.0));
        assert!((curve[2].1 - 0.5).abs() < 1e-12);
        // Burn-in of 50% keeps the last two points: (6 + 6) / 12 / 2.
        let mean = trace::steady_state_mean(&curve, 0.5).unwrap();
        assert!((mean - 0.5).abs() < 1e-12);
        assert_eq!(trace::steady_state_mean(&[], 0.0), None);
        // The ThreadDefect running total clamps at zero and cancels.
        assert_eq!(trace::replay_thread_defect(&events), vec![(4, 2), (4, 0)]);
    }

    #[test]
    fn trace_file_roundtrip() {
        let dir = std::env::temp_dir().join("curtain_bench_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.jsonl");
        {
            let t = trace::Trace::to_path(&path).unwrap();
            assert!(t.is_enabled());
            let r = t.recorder();
            r.set_time(9);
            r.record(&curtain_telemetry::Event::DefectSample { defect: 4, tuples: 8 });
        } // drop flushes
        let events = trace::read_trace_file(&path).unwrap();
        assert_eq!(trace::replay_defect(&events), vec![(9, 0.5)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn default_trace_is_null() {
        let t = trace::Trace::default();
        assert!(!t.is_enabled());
        t.recorder().record(&curtain_telemetry::Event::GoodBye { node: 0 });
    }
}
