//! Shared infrastructure for the experiment binaries (`src/bin/e*.rs`).
//!
//! Every binary reproduces one claim of the paper (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md` for the index). They share:
//!
//! * [`table`] — aligned plain-text table output (the "figures" of a
//!   terminal reproduction);
//! * [`stats`] — means, standard deviations and percentiles;
//! * [`runtime`] — the `CURTAIN_SCALE` environment knob: `1` (default)
//!   finishes each experiment in seconds; larger values multiply sample
//!   counts for tighter error bars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Aligned plain-text tables.
pub mod table {
    /// A fixed-column table printer.
    ///
    /// # Example
    ///
    /// ```
    /// use curtain_bench::table::Table;
    ///
    /// let t = Table::new(&["k", "d", "defect"]);
    /// t.header();
    /// t.row(&["64".into(), "3".into(), format!("{:.4}", 0.0321)]);
    /// ```
    pub struct Table {
        columns: Vec<String>,
        width: usize,
    }

    impl Table {
        /// Creates a table with the given column names.
        #[must_use]
        pub fn new(columns: &[&str]) -> Self {
            let width = columns.iter().map(|c| c.len()).max().unwrap_or(0).max(10) + 2;
            Table { columns: columns.iter().map(ToString::to_string).collect(), width }
        }

        /// Prints the header row and a rule.
        pub fn header(&self) {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| format!("{c:>width$}", width = self.width))
                .collect();
            println!("{}", cells.join(""));
            println!("{}", "-".repeat(self.width * self.columns.len()));
        }

        /// Prints one data row.
        ///
        /// # Panics
        ///
        /// Panics if the cell count differs from the column count.
        pub fn row(&self, cells: &[String]) {
            assert_eq!(cells.len(), self.columns.len(), "cell count mismatch");
            let cells: Vec<String> = cells
                .iter()
                .map(|c| format!("{c:>width$}", width = self.width))
                .collect();
            println!("{}", cells.join(""));
        }
    }
}

/// Summary statistics over f64 samples.
pub mod stats {
    /// Arithmetic mean (0.0 for empty input).
    #[must_use]
    pub fn mean(xs: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// Population standard deviation (0.0 for fewer than two samples).
    #[must_use]
    pub fn std_dev(xs: &[f64]) -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        let m = mean(xs);
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
    }

    /// The `pct` percentile (0–100) by nearest-rank on a copy.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or `pct` is out of range.
    #[must_use]
    pub fn percentile(xs: &[f64], pct: f64) -> f64 {
        assert!(!xs.is_empty(), "empty sample");
        assert!((0.0..=100.0).contains(&pct), "percentile out of range");
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        let rank = ((pct / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[rank]
    }
}

/// Experiment sizing.
pub mod runtime {
    /// Reads `CURTAIN_SCALE` (default 1): a multiplier on sample counts.
    #[must_use]
    pub fn scale() -> u64 {
        std::env::var("CURTAIN_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&s| s >= 1)
            .unwrap_or(1)
    }

    /// Prints the standard experiment banner.
    pub fn banner(id: &str, claim: &str) {
        println!("=== {id} ===");
        println!("claim: {claim}");
        println!("scale: CURTAIN_SCALE={} (set higher for tighter error bars)", scale());
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(stats::mean(&xs), 2.5);
        assert!((stats::std_dev(&xs) - 1.118033988749895).abs() < 1e-12);
        assert_eq!(stats::percentile(&xs, 0.0), 1.0);
        assert_eq!(stats::percentile(&xs, 100.0), 4.0);
        assert_eq!(stats::percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn stats_edge_cases() {
        assert_eq!(stats::mean(&[]), 0.0);
        assert_eq!(stats::std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn scale_defaults_to_one() {
        // Unless the caller set it in the environment.
        if std::env::var("CURTAIN_SCALE").is_err() {
            assert_eq!(runtime::scale(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn table_rejects_ragged_rows() {
        let t = table::Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}
