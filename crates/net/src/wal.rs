//! Write-ahead log for the coordinator's matrix state.
//!
//! Losing the matrix `M` strands every stream: the paper's repair story
//! (Theorems 4–5) assumes the server can always splice a failed node out,
//! and a coordinator that forgets `M` turns every complaint into a fatal
//! "unknown child". This module makes the mutations durable.
//!
//! ## Format
//!
//! The log is a flat sequence of length-prefixed, checksummed records:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a of payload][payload]
//! ```
//!
//! where the payload is one [`WalRecord`] rendered as a single JSON object
//! via [`curtain_telemetry::json`] — the same dependency-free JSON layer
//! the wire protocol uses, so the WAL adds no serialization dependency.
//!
//! ## Durability semantics
//!
//! [`Wal::append`] buffers in the OS; [`Wal::sync`] fsyncs. The
//! coordinator group-commits by default: concurrent mutations park on a
//! commit queue and one fsync covers the whole admitted batch, with each
//! response withheld until its batch is durable
//! ([`WalOptions::group_commit`]). A torn tail — a record cut mid-write by a crash — is expected and
//! tolerated: [`Wal::open`] replays the longest valid prefix, truncates
//! the garbage, and resumes appending after it.
//!
//! ## Compaction
//!
//! Every mutation appends forever, so once the log passes
//! [`Wal::compact_threshold`] the coordinator rewrites it as a single
//! [`WalRecord::Checkpoint`] (the full state, including the overlay
//! snapshot JSON from `CurtainServer::to_json`). The rewrite goes to a
//! temp file, is fsync'd, and is renamed over the log — a crash at any
//! point leaves either the old log or the new one, never neither.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use curtain_telemetry::json::{self, JsonValue};

/// Refuse absurd length prefixes (a torn header can claim anything).
const MAX_RECORD: u32 = 16 * 1024 * 1024;
/// Bytes of framing per record (length prefix + checksum).
const HEADER_LEN: usize = 4 + 8;

/// 64-bit FNV-1a over the payload bytes.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The source registration carried by [`WalRecord::RegisterSource`] and
/// inside checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalSourceInfo {
    /// Source data-plane listener (as advertised to peers).
    pub addr: SocketAddr,
    /// Number of generations.
    pub generations: usize,
    /// Packets per generation.
    pub generation_size: usize,
    /// Bytes per packet.
    pub packet_len: usize,
    /// Original (unpadded) object length.
    pub content_len: usize,
}

impl WalSourceInfo {
    fn to_json(self) -> JsonValue {
        let mut f = BTreeMap::new();
        f.insert("addr".into(), JsonValue::Str(self.addr.to_string()));
        f.insert("generations".into(), JsonValue::Int(self.generations as i64));
        f.insert("generation_size".into(), JsonValue::Int(self.generation_size as i64));
        f.insert("packet_len".into(), JsonValue::Int(self.packet_len as i64));
        f.insert("content_len".into(), JsonValue::Int(self.content_len as i64));
        JsonValue::Object(f)
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        Ok(WalSourceInfo {
            addr: addr_field(v, "addr")?,
            generations: usize_field(v, "generations")?,
            generation_size: usize_field(v, "generation_size")?,
            packet_len: usize_field(v, "packet_len")?,
            content_len: usize_field(v, "content_len")?,
        })
    }
}

/// One durable matrix mutation (or a full-state checkpoint).
///
/// Hello/Resync records carry the *outcome* of the mutation (the assigned
/// id, position, and thread set), not the request — replay is pure data
/// manipulation, independent of the RNG and insert policy that produced
/// the grant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A full-state snapshot; every record before it is superseded.
    Checkpoint {
        /// The overlay state (`CurtainServer::to_json` JSON, opaque here).
        server: String,
        /// Data-plane address per member node.
        addrs: Vec<(u64, SocketAddr)>,
        /// The registered source, if any.
        source: Option<WalSourceInfo>,
        /// Nodes that reported full decode.
        completed: Vec<u64>,
        /// The id-allocation high-water mark (`next_id`) at checkpoint
        /// time. Recovery fences fresh grants above this even when the
        /// wall clock steps backwards. Logs written before this field
        /// existed parse as `0` (no fence floor).
        epoch: u64,
    },
    /// The source registered (or re-registered at the same address).
    RegisterSource(WalSourceInfo),
    /// A hello was granted: the row as inserted.
    Hello {
        /// Assigned node id.
        node: u64,
        /// Matrix position the row was inserted at.
        position: u64,
        /// The row's thread set (sorted).
        threads: Vec<u16>,
        /// The peer's data-plane listener.
        data_addr: SocketAddr,
    },
    /// An amnesiac coordinator re-admitted a row from a peer's resync
    /// report (appended at the bottom of `M`).
    Resync {
        /// The reclaimed node id.
        node: u64,
        /// The row's thread set (sorted).
        threads: Vec<u16>,
        /// The peer's data-plane listener.
        data_addr: SocketAddr,
    },
    /// A graceful leave removed the row.
    Goodbye {
        /// The departed node.
        node: u64,
    },
    /// A complaint-driven repair spliced the row out.
    Splice {
        /// The failed node.
        node: u64,
    },
    /// A peer reported full decode.
    Completed {
        /// The peer.
        node: u64,
    },
}

impl WalRecord {
    /// The JSON payload (single line, no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut f = BTreeMap::new();
        let tag = |f: &mut BTreeMap<String, JsonValue>, t: &str| {
            f.insert("rec".into(), JsonValue::Str(t.into()));
        };
        match self {
            WalRecord::Checkpoint { server, addrs, source, completed, epoch } => {
                tag(&mut f, "checkpoint");
                f.insert("epoch".into(), JsonValue::Int(*epoch as i64));
                f.insert("server".into(), JsonValue::Str(server.clone()));
                f.insert(
                    "addrs".into(),
                    JsonValue::Array(
                        addrs
                            .iter()
                            .map(|(n, a)| {
                                JsonValue::Array(vec![
                                    JsonValue::Int(*n as i64),
                                    JsonValue::Str(a.to_string()),
                                ])
                            })
                            .collect(),
                    ),
                );
                f.insert(
                    "source".into(),
                    source.map_or(JsonValue::Null, WalSourceInfo::to_json),
                );
                f.insert(
                    "completed".into(),
                    JsonValue::Array(
                        completed.iter().map(|n| JsonValue::Int(*n as i64)).collect(),
                    ),
                );
            }
            WalRecord::RegisterSource(info) => {
                tag(&mut f, "register_source");
                f.insert("source".into(), info.to_json());
            }
            WalRecord::Hello { node, position, threads, data_addr } => {
                tag(&mut f, "hello");
                f.insert("node".into(), JsonValue::Int(*node as i64));
                f.insert("position".into(), JsonValue::Int(*position as i64));
                f.insert("threads".into(), threads_json(threads));
                f.insert("data_addr".into(), JsonValue::Str(data_addr.to_string()));
            }
            WalRecord::Resync { node, threads, data_addr } => {
                tag(&mut f, "resync");
                f.insert("node".into(), JsonValue::Int(*node as i64));
                f.insert("threads".into(), threads_json(threads));
                f.insert("data_addr".into(), JsonValue::Str(data_addr.to_string()));
            }
            WalRecord::Goodbye { node } => {
                tag(&mut f, "goodbye");
                f.insert("node".into(), JsonValue::Int(*node as i64));
            }
            WalRecord::Splice { node } => {
                tag(&mut f, "splice");
                f.insert("node".into(), JsonValue::Int(*node as i64));
            }
            WalRecord::Completed { node } => {
                tag(&mut f, "completed");
                f.insert("node".into(), JsonValue::Int(*node as i64));
            }
        }
        JsonValue::Object(f).render()
    }

    /// Parses one payload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed payloads.
    pub fn parse_json(payload: &str) -> Result<Self, String> {
        let v = json::parse_document(payload.trim())?;
        let rec = v
            .get("rec")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"rec\" tag")?;
        match rec {
            "checkpoint" => {
                let addrs_json = v
                    .get("addrs")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing addrs array")?;
                let mut addrs = Vec::with_capacity(addrs_json.len());
                for pair in addrs_json {
                    let [n, a] = pair.as_array().ok_or("bad addr pair")? else {
                        return Err("addr pair is not 2-element".into());
                    };
                    addrs.push((
                        n.as_u64().ok_or("bad addr pair node")?,
                        a.as_str()
                            .ok_or("bad addr pair address")?
                            .parse()
                            .map_err(|e| format!("bad address: {e}"))?,
                    ));
                }
                let source = match v.get("source") {
                    Some(JsonValue::Null) | None => None,
                    Some(s) => Some(WalSourceInfo::from_json(s)?),
                };
                let completed = v
                    .get("completed")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing completed array")?
                    .iter()
                    .map(|n| n.as_u64().ok_or("bad completed id"))
                    .collect::<Result<_, _>>()?;
                Ok(WalRecord::Checkpoint {
                    server: v
                        .get("server")
                        .and_then(JsonValue::as_str)
                        .ok_or("missing server snapshot")?
                        .to_string(),
                    addrs,
                    source,
                    completed,
                    // Absent in pre-epoch logs: replay as "no fence floor".
                    epoch: v.get("epoch").and_then(JsonValue::as_u64).unwrap_or(0),
                })
            }
            "register_source" => Ok(WalRecord::RegisterSource(WalSourceInfo::from_json(
                v.get("source").ok_or("missing source")?,
            )?)),
            "hello" => Ok(WalRecord::Hello {
                node: u64_field(&v, "node")?,
                position: u64_field(&v, "position")?,
                threads: parse_threads(&v)?,
                data_addr: addr_field(&v, "data_addr")?,
            }),
            "resync" => Ok(WalRecord::Resync {
                node: u64_field(&v, "node")?,
                threads: parse_threads(&v)?,
                data_addr: addr_field(&v, "data_addr")?,
            }),
            "goodbye" => Ok(WalRecord::Goodbye { node: u64_field(&v, "node")? }),
            "splice" => Ok(WalRecord::Splice { node: u64_field(&v, "node")? }),
            "completed" => Ok(WalRecord::Completed { node: u64_field(&v, "node")? }),
            other => Err(format!("unknown record {other:?}")),
        }
    }
}

fn threads_json(threads: &[u16]) -> JsonValue {
    JsonValue::Array(threads.iter().map(|t| JsonValue::Int(i64::from(*t))).collect())
}

fn parse_threads(v: &JsonValue) -> Result<Vec<u16>, String> {
    v.get("threads")
        .and_then(JsonValue::as_array)
        .ok_or("missing threads array")?
        .iter()
        .map(|t| {
            t.as_u64()
                .and_then(|x| u16::try_from(x).ok())
                .ok_or_else(|| "bad thread id".to_string())
        })
        .collect()
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn usize_field(v: &JsonValue, key: &str) -> Result<usize, String> {
    usize::try_from(u64_field(v, key)?).map_err(|_| format!("field {key:?} overflows usize"))
}

fn addr_field(v: &JsonValue, key: &str) -> Result<SocketAddr, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing addr field {key:?}"))?
        .parse()
        .map_err(|e| format!("bad socket address in {key:?}: {e}"))
}

/// Where a coordinator's WAL lives, when it compacts, and how mutations
/// commit.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Log file path (created if absent).
    pub path: PathBuf,
    /// Compaction trigger in bytes (see [`Wal::compact`]).
    pub compact_threshold: u64,
    /// One fsync per admitted *batch* of mutations (the default) instead
    /// of one per mutation. Responses are still withheld until the batch
    /// holding the mutation is durable, so the guarantee is unchanged —
    /// only the fsync count drops.
    pub group_commit: bool,
    /// Refuse mutating requests (with `Response::Unavailable`) once the
    /// WAL has failed, instead of serving from memory in degraded mode.
    pub strict: bool,
}

impl WalOptions {
    /// Options for `path` with the default compaction threshold,
    /// group commit on, strict mode off.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        WalOptions {
            path: path.into(),
            compact_threshold: Wal::DEFAULT_COMPACT_THRESHOLD,
            group_commit: true,
            strict: false,
        }
    }

    /// Overrides the compaction threshold (tests use tiny ones to force
    /// compaction quickly).
    #[must_use]
    pub fn with_compact_threshold(mut self, bytes: u64) -> Self {
        self.compact_threshold = bytes;
        self
    }

    /// Selects group commit (one fsync per batch) or per-mutation fsync.
    #[must_use]
    pub fn with_group_commit(mut self, on: bool) -> Self {
        self.group_commit = on;
        self
    }

    /// Selects strict mode: degraded coordinators refuse mutations.
    #[must_use]
    pub fn with_strict(mut self, on: bool) -> Self {
        self.strict = on;
        self
    }
}

/// The WAL operations the coordinator's commit path needs, as a trait so
/// tests (and benchmarks) can inject fault- or latency-wrapped stores.
/// [`Wal`] is the canonical implementation.
pub trait WalStore: Send {
    /// Appends one record (unsynced).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    fn append(&mut self, record: &WalRecord) -> io::Result<()>;

    /// Makes everything appended so far durable.
    ///
    /// # Errors
    ///
    /// Propagates fsync errors.
    fn sync(&mut self) -> io::Result<()>;

    /// Atomically rewrites the log as `checkpoint`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; the old log must survive failure.
    fn compact(&mut self, checkpoint: &WalRecord) -> io::Result<()>;

    /// Bytes currently in the log.
    fn bytes(&self) -> u64;

    /// Records appended through this handle.
    fn records(&self) -> u64;

    /// Whether the log has outgrown its compaction threshold.
    fn needs_compaction(&self) -> bool;
}

impl WalStore for Wal {
    fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        Wal::append(self, record)
    }

    fn sync(&mut self) -> io::Result<()> {
        Wal::sync(self)
    }

    fn compact(&mut self, checkpoint: &WalRecord) -> io::Result<()> {
        Wal::compact(self, checkpoint)
    }

    fn bytes(&self) -> u64 {
        Wal::bytes(self)
    }

    fn records(&self) -> u64 {
        Wal::records(self)
    }

    fn needs_compaction(&self) -> bool {
        Wal::needs_compaction(self)
    }
}

/// An open write-ahead log positioned for appending.
pub struct Wal {
    path: PathBuf,
    file: File,
    bytes: u64,
    records: u64,
    compact_threshold: u64,
}

impl Wal {
    /// Default [`Wal::compact_threshold`]: 512 KiB.
    pub const DEFAULT_COMPACT_THRESHOLD: u64 = 512 * 1024;

    /// Opens (creating if absent) the log at `path`, replaying every valid
    /// record and truncating any torn tail. Returns the replayed records
    /// and the log positioned for appending after them.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors. A corrupt *tail* is not an error
    /// (it is the expected crash artifact); corruption is only surfaced by
    /// the shorter-than-expected record list.
    pub fn open(path: impl AsRef<Path>, compact_threshold: u64) -> io::Result<(Vec<WalRecord>, Self)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, valid_len) = decode_all(&raw);
        if (valid_len as u64) < raw.len() as u64 {
            file.set_len(valid_len as u64)?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        Ok((
            records,
            Wal {
                path,
                file,
                bytes: valid_len as u64,
                records: 0,
                compact_threshold,
            },
        ))
    }

    /// Creates a fresh, empty log at `path` (truncating any existing one).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn create(path: impl AsRef<Path>, compact_threshold: u64) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Wal { path, file, bytes: 0, records: 0, compact_threshold })
    }

    /// Appends one record (unsynced — call [`Wal::sync`] to make the batch
    /// durable).
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let payload = record.to_json();
        let frame = encode(payload.as_bytes());
        self.file.write_all(&frame)?;
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Fsyncs everything appended so far.
    ///
    /// # Errors
    ///
    /// Propagates fsync errors.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Bytes currently in the log.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended through this handle (excludes replayed history).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The compaction trigger: once [`Wal::bytes`] exceeds this, the owner
    /// should call [`Wal::compact`] with a fresh checkpoint.
    #[must_use]
    pub fn compact_threshold(&self) -> u64 {
        self.compact_threshold
    }

    /// Whether the log has outgrown its threshold.
    #[must_use]
    pub fn needs_compaction(&self) -> bool {
        self.bytes > self.compact_threshold
    }

    /// Rewrites the log as the single `checkpoint` record, atomically
    /// (temp file + fsync + rename), and repositions for appending.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; on error the old log is untouched.
    pub fn compact(&mut self, checkpoint: &WalRecord) -> io::Result<()> {
        let tmp_path = self.path.with_extension("wal.tmp");
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let frame = encode(checkpoint.to_json().as_bytes());
        tmp.write_all(&frame)?;
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = tmp;
        self.bytes = frame.len() as u64;
        self.records += 1;
        Ok(())
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("bytes", &self.bytes)
            .finish()
    }
}

fn encode(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&u32::try_from(payload.len()).expect("record size").to_le_bytes());
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Decodes the longest valid record prefix; returns the records and the
/// byte offset where validity ends (torn-tail truncation point).
fn decode_all(raw: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while raw.len() - offset >= HEADER_LEN {
        let len = u32::from_le_bytes(raw[offset..offset + 4].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            break;
        }
        let sum = u64::from_le_bytes(raw[offset + 4..offset + 12].try_into().expect("8 bytes"));
        let start = offset + HEADER_LEN;
        let Some(end) = start.checked_add(len as usize).filter(|e| *e <= raw.len()) else {
            break; // torn mid-payload
        };
        let payload = &raw[start..end];
        if fnv1a64(payload) != sum {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(record) = WalRecord::parse_json(text) else {
            break;
        };
        records.push(record);
        offset = end;
    }
    (records, offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::RegisterSource(WalSourceInfo {
                addr: addr(9000),
                generations: 4,
                generation_size: 32,
                packet_len: 256,
                content_len: 32_768,
            }),
            WalRecord::Hello {
                node: 0,
                position: 0,
                threads: vec![1, 3],
                data_addr: addr(9001),
            },
            WalRecord::Hello {
                node: 1,
                position: 1,
                threads: vec![0, 2],
                data_addr: addr(9002),
            },
            WalRecord::Resync { node: 7, threads: vec![0, 1], data_addr: addr(9007) },
            WalRecord::Completed { node: 1 },
            WalRecord::Goodbye { node: 1 },
            WalRecord::Splice { node: 0 },
            WalRecord::Checkpoint {
                server: r#"{"k":4}"#.into(),
                addrs: vec![(7, addr(9007))],
                source: Some(WalSourceInfo {
                    addr: addr(9000),
                    generations: 4,
                    generation_size: 32,
                    packet_len: 256,
                    content_len: 32_768,
                }),
                completed: vec![1],
                epoch: 1_700_000_000_000,
            },
            WalRecord::Checkpoint {
                server: "{}".into(),
                addrs: vec![],
                source: None,
                completed: vec![],
                epoch: 0,
            },
        ]
    }

    #[test]
    fn record_json_round_trips() {
        for r in sample_records() {
            let s = r.to_json();
            assert_eq!(WalRecord::parse_json(&s).expect(&s), r, "payload: {s}");
        }
    }

    #[test]
    fn append_sync_reopen_replays_everything() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.wal");
        let records = sample_records();
        {
            let mut wal = Wal::create(&path, 1 << 20).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.records(), records.len() as u64);
        }
        let (replayed, wal) = Wal::open(&path, 1 << 20).unwrap();
        assert_eq!(replayed, records);
        assert!(wal.bytes() > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        {
            let mut wal = Wal::create(&path, 1 << 20).unwrap();
            wal.append(&WalRecord::Goodbye { node: 1 }).unwrap();
            wal.append(&WalRecord::Goodbye { node: 2 }).unwrap();
            wal.sync().unwrap();
        }
        // Simulate a crash mid-write: chop the last record in half, then
        // smear garbage over the cut.
        let full = std::fs::read(&path).unwrap();
        let cut = full.len() - 7;
        let mut torn = full[..cut].to_vec();
        torn.extend_from_slice(&[0xFF; 3]);
        std::fs::write(&path, &torn).unwrap();

        let (replayed, mut wal) = Wal::open(&path, 1 << 20).unwrap();
        assert_eq!(replayed, vec![WalRecord::Goodbye { node: 1 }]);
        // Appending after the truncation yields a clean log again.
        wal.append(&WalRecord::Goodbye { node: 3 }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (replayed, _) = Wal::open(&path, 1 << 20).unwrap();
        assert_eq!(
            replayed,
            vec![WalRecord::Goodbye { node: 1 }, WalRecord::Goodbye { node: 3 }]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_mismatch_stops_replay() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.wal");
        {
            let mut wal = Wal::create(&path, 1 << 20).unwrap();
            wal.append(&WalRecord::Goodbye { node: 1 }).unwrap();
            wal.append(&WalRecord::Goodbye { node: 2 }).unwrap();
            wal.sync().unwrap();
        }
        // Flip one payload byte of the second record.
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x55;
        std::fs::write(&path, &raw).unwrap();
        let (replayed, _) = Wal::open(&path, 1 << 20).unwrap();
        assert_eq!(replayed, vec![WalRecord::Goodbye { node: 1 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_rewrites_to_one_checkpoint() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.wal");
        let mut wal = Wal::create(&path, 64).unwrap(); // tiny threshold
        for node in 0..20 {
            wal.append(&WalRecord::Goodbye { node }).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.needs_compaction());
        let checkpoint = WalRecord::Checkpoint {
            server: r#"{"k":4,"rows":[]}"#.into(),
            addrs: vec![(3, addr(9100))],
            source: None,
            completed: vec![3],
            epoch: 21,
        };
        let before = wal.bytes();
        wal.compact(&checkpoint).unwrap();
        assert!(wal.bytes() < before, "compaction must shrink the log");
        // Appends continue after the checkpoint.
        wal.append(&WalRecord::Goodbye { node: 99 }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (replayed, _) = Wal::open(&path, 64).unwrap();
        assert_eq!(replayed, vec![checkpoint, WalRecord::Goodbye { node: 99 }]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_missing_logs_open_clean() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.wal");
        let _ = std::fs::remove_file(&path);
        let (replayed, wal) = Wal::open(&path, 1 << 20).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(wal.bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pre_epoch_checkpoint_parses_with_zero_epoch() {
        // A checkpoint payload written before the epoch field existed.
        let legacy = r#"{"addrs":[],"completed":[],"rec":"checkpoint","server":"{}","source":null}"#;
        let parsed = WalRecord::parse_json(legacy).unwrap();
        assert_eq!(
            parsed,
            WalRecord::Checkpoint {
                server: "{}".into(),
                addrs: vec![],
                source: None,
                completed: vec![],
                epoch: 0,
            }
        );
    }

    /// Crash-point sweep over `Wal::compact`'s tmp+fsync+rename sequence.
    ///
    /// Before the rename lands, the on-disk truth is the *old* log plus an
    /// arbitrary prefix of the tmp file; after it, the new checkpoint.
    /// For every prefix length of the tmp frame we reconstruct both disk
    /// states a crash could leave and assert `Wal::open` replays either
    /// the full old history or exactly the checkpoint — never a torn
    /// hybrid, never an error.
    #[test]
    fn compact_crash_points_leave_old_or_new_log_never_torn() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crashpoints.wal");
        let old: Vec<WalRecord> = (0..6).map(|node| WalRecord::Goodbye { node }).collect();
        let old_bytes: Vec<u8> = old.iter().flat_map(|r| encode(r.to_json().as_bytes())).collect();
        let checkpoint = WalRecord::Checkpoint {
            server: r#"{"k":4,"rows":[]}"#.into(),
            addrs: vec![(5, addr(9400))],
            source: None,
            completed: vec![5],
            epoch: 99,
        };
        let new_frame = encode(checkpoint.to_json().as_bytes());
        for cut in 0..=new_frame.len() {
            // Crash before the rename: old log intact, tmp partially
            // written. The tmp file is invisible to recovery (open never
            // reads `.wal.tmp`), so we only need the old log to survive.
            std::fs::write(&path, &old_bytes).unwrap();
            std::fs::write(path.with_extension("wal.tmp"), &new_frame[..cut]).unwrap();
            let (replayed, _) = Wal::open(&path, 1 << 20).unwrap();
            assert_eq!(replayed, old, "pre-rename crash at tmp byte {cut} lost history");

            // Crash after a rename of that same partial tmp. A real crash
            // only renames a *synced* (complete) tmp, but the log format
            // must still degrade safely: a torn checkpoint frame replays
            // as empty (superseded state is gone but the file is valid),
            // and the complete frame replays as exactly the checkpoint.
            std::fs::write(&path, &new_frame[..cut]).unwrap();
            let (replayed, _) = Wal::open(&path, 1 << 20).unwrap();
            if cut == new_frame.len() {
                assert_eq!(replayed, vec![checkpoint.clone()]);
            } else {
                assert!(replayed.is_empty(), "torn checkpoint prefix {cut} replayed records");
            }
        }
        let _ = std::fs::remove_file(path.with_extension("wal.tmp"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
