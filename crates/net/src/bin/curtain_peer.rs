//! CLI: join a curtain swarm, download, optionally keep seeding.
//!
//! ```text
//! curtain_peer <coordinator-addr> [--out <path>] [--seed-secs <n>] [--timeout-secs <n>]
//! ```

use std::net::SocketAddr;
use std::time::Duration;

use curtain_net::Peer;

fn usage() -> ! {
    eprintln!(
        "usage: curtain_peer <coordinator-addr> [--out <path>] [--seed-secs <n>] [--timeout-secs <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let coordinator: SocketAddr = args[0].parse().unwrap_or_else(|_| usage());
    let mut out: Option<String> = None;
    let mut seed_secs = 0u64;
    let mut timeout_secs = 120u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--seed-secs" if i + 1 < args.len() => {
                seed_secs = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--timeout-secs" if i + 1 < args.len() => {
                timeout_secs = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let peer = match Peer::join(coordinator) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("join failed: {e}");
            std::process::exit(1);
        }
    };
    println!("joined as {} (data port {})", peer.node_id(), peer.data_addr());
    if !peer.wait_complete(Duration::from_secs(timeout_secs)) {
        eprintln!("timed out at rank {}", peer.rank());
        peer.leave();
        std::process::exit(1);
    }
    let content = peer.decoded_content().expect("complete peer recovers");
    println!("decoded {} bytes", content.len());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &content) {
            eprintln!("write failed: {e}");
        } else {
            println!("wrote {path}");
        }
    }
    if seed_secs > 0 {
        println!("seeding for {seed_secs}s …");
        std::thread::sleep(Duration::from_secs(seed_secs));
    }
    peer.leave();
    println!("left gracefully");
}
