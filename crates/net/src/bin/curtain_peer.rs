//! CLI: join a curtain swarm, download, optionally keep seeding.
//!
//! ```text
//! curtain_peer <coordinator-addr> [--out <path>] [--seed-secs <n>] [--timeout-secs <n>]
//!                                 [--trace <path>] [--metrics <addr>]
//!                                 [--transport <tcp|udp|vnet>]
//! ```
//!
//! `--trace` streams this peer's JSONL event log (hop events, repair
//! span trees) to a file *and* turns on causal-context propagation:
//! incoming frame contexts are forwarded as child spans on recoded
//! frames. `--metrics` serves Prometheus-style `/metrics` and a JSON
//! `/health` document (decode rank, buffer-pool stats, active repair
//! episodes) on the given address.

use std::fs::File;
use std::io::BufWriter;
use std::net::SocketAddr;
use std::time::Duration;

use curtain_net::{Peer, PeerConfig};
use curtain_telemetry::{ExposeServer, JsonlSink, SharedRecorder};

fn usage() -> ! {
    eprintln!(
        "usage: curtain_peer <coordinator-addr> [--out <path>] [--seed-secs <n>] \
         [--timeout-secs <n>] [--trace <path>] [--metrics <addr>] [--transport <tcp|udp|vnet>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let coordinator: SocketAddr = args[0].parse().unwrap_or_else(|_| usage());
    let mut out: Option<String> = None;
    let mut seed_secs = 0u64;
    let mut timeout_secs = 120u64;
    let mut trace: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut transport_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--transport" if i + 1 < args.len() => {
                transport_flag = Some(args[i + 1].clone());
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--seed-secs" if i + 1 < args.len() => {
                seed_secs = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--timeout-secs" if i + 1 < args.len() => {
                timeout_secs = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--trace" if i + 1 < args.len() => {
                trace = Some(args[i + 1].clone());
                i += 2;
            }
            "--metrics" if i + 1 < args.len() => {
                metrics_addr = Some(args[i + 1].clone());
                i += 2;
            }
            _ => usage(),
        }
    }

    match curtain_net::transport::resolve(transport_flag.as_deref()) {
        Ok(curtain_net::TransportKind::Tcp) => {}
        Ok(curtain_net::TransportKind::Vnet) => {
            eprintln!(
                "the vnet transport exists only in-process (a simulated world, not a dialable \
                 network); run the e22 lab sweep instead: cargo run -p curtain-lab -- run --exp e22"
            );
            std::process::exit(2);
        }
        Ok(curtain_net::TransportKind::Udp) => {
            eprintln!(
                "the UDP backend covers the data-plane endpoint \
                 (curtain_net::transport::udp); peer sessions dial TCP"
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}");
            usage();
        }
    }

    let observed = trace.is_some() || metrics_addr.is_some();
    let (recorder, sink) = if observed {
        let sink = match &trace {
            Some(path) => match File::create(path) {
                Ok(f) => JsonlSink::new(BufWriter::new(
                    Box::new(f) as Box<dyn std::io::Write + Send>
                )),
                Err(e) => {
                    eprintln!("cannot create trace file {path}: {e}");
                    std::process::exit(1);
                }
            },
            None => JsonlSink::new(BufWriter::new(
                Box::new(std::io::sink()) as Box<dyn std::io::Write + Send>
            )),
        };
        (SharedRecorder::wall_clock(sink.clone()), Some(sink))
    } else {
        (SharedRecorder::null(), None)
    };

    let config = PeerConfig {
        recorder: recorder.clone(),
        trace: trace.is_some(),
        ..PeerConfig::default()
    };
    let peer = match Peer::join_with(coordinator, config) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("join failed: {e}");
            std::process::exit(1);
        }
    };
    let _expose = metrics_addr.as_ref().map(|addr| {
        let metrics = sink.as_ref().expect("observed implies sink").metrics().clone();
        match ExposeServer::bind(addr.as_str(), metrics, peer.health_handle()) {
            Ok(server) => {
                println!("metrics/health on http://{}", server.addr());
                server
            }
            Err(e) => {
                eprintln!("cannot bind metrics listener {addr}: {e}");
                std::process::exit(1);
            }
        }
    });
    println!("joined as {} (data port {})", peer.node_id(), peer.data_addr());
    if !peer.wait_complete(Duration::from_secs(timeout_secs)) {
        eprintln!("timed out at rank {}", peer.rank());
        peer.leave();
        std::process::exit(1);
    }
    let content = peer.decoded_content().expect("complete peer recovers");
    println!("decoded {} bytes", content.len());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &content) {
            eprintln!("write failed: {e}");
        } else {
            println!("wrote {path}");
        }
    }
    if seed_secs > 0 {
        println!("seeding for {seed_secs}s …");
        std::thread::sleep(Duration::from_secs(seed_secs));
    }
    peer.leave();
    let _ = recorder.flush();
    println!("left gracefully");
}
