//! CLI: run a curtain coordinator.
//!
//! ```text
//! curtain_coordinator <k> <d> [--wal <path>] [--strict] [--standby-of <addr>]
//!                             [--checkpoint <path>] [--stats-every <secs>]
//!                             [--trace <path>] [--metrics <addr>] [--transport <tcp|udp|vnet>]
//! ```
//!
//! Prints the control address; peers and the source point at it. With
//! `--wal`, every matrix mutation is logged durably and a restart with
//! the same path *recovers* the previous matrix instead of starting
//! empty (an existing non-empty log is replayed; a missing or empty one
//! starts fresh); recovery is followed by a proactive resync sweep over
//! every known peer. `--strict` makes a WAL failure fence mutations
//! (`Response::Unavailable`) instead of serving them non-durably from
//! memory. `--standby-of <addr>` runs this process as a *warm standby*
//! of the primary at `addr`: it bootstraps over the control port, tails
//! the primary's WAL into its own `--wal` path, and promotes itself at
//! the primary's address when the primary stops answering. The optional
//! checkpoint file is rewritten after every stats interval so operators
//! can inspect the live matrix.
//!
//! `--trace` streams the protocol event log (JSONL) to a file — feed it,
//! together with peer/source traces, to `lab trace` for a stitched
//! cross-process report. `--metrics` serves Prometheus-style `/metrics`
//! and a JSON `/health` document on the given address (e.g.
//! `127.0.0.1:9100`).

use std::fs::File;
use std::io::BufWriter;
use std::time::Duration;

use curtain_net::{Coordinator, Standby, StandbyOptions, WalOptions};
use curtain_overlay::OverlayConfig;
use curtain_telemetry::{ExposeServer, JsonlSink, SharedRecorder};

fn usage() -> ! {
    eprintln!(
        "usage: curtain_coordinator <k> <d> [--wal <path>] [--strict] \
         [--standby-of <addr>] [--checkpoint <path>] [--stats-every <secs>] \
         [--trace <path>] [--metrics <addr>] [--transport <tcp|udp|vnet>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let k: usize = args[0].parse().unwrap_or_else(|_| usage());
    let d: usize = args[1].parse().unwrap_or_else(|_| usage());
    let mut wal: Option<String> = None;
    let mut strict = false;
    let mut standby_of: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut stats_every = 5u64;
    let mut trace: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut transport_flag: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--transport" if i + 1 < args.len() => {
                transport_flag = Some(args[i + 1].clone());
                i += 2;
            }
            "--wal" if i + 1 < args.len() => {
                wal = Some(args[i + 1].clone());
                i += 2;
            }
            "--strict" => {
                strict = true;
                i += 1;
            }
            "--standby-of" if i + 1 < args.len() => {
                standby_of = Some(args[i + 1].clone());
                i += 2;
            }
            "--checkpoint" if i + 1 < args.len() => {
                checkpoint = Some(args[i + 1].clone());
                i += 2;
            }
            "--stats-every" if i + 1 < args.len() => {
                stats_every = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--trace" if i + 1 < args.len() => {
                trace = Some(args[i + 1].clone());
                i += 2;
            }
            "--metrics" if i + 1 < args.len() => {
                metrics_addr = Some(args[i + 1].clone());
                i += 2;
            }
            _ => usage(),
        }
    }

    // The control plane is TCP JSON under every transport; the selector
    // exists here so one env/flag convention configures a whole deployment.
    match curtain_net::transport::resolve(transport_flag.as_deref()) {
        Ok(curtain_net::TransportKind::Tcp) => {}
        Ok(curtain_net::TransportKind::Vnet) => {
            eprintln!(
                "the vnet transport exists only in-process (a simulated world, not a dialable \
                 network); run the e22 lab sweep instead: cargo run -p curtain-lab -- run --exp e22"
            );
            std::process::exit(2);
        }
        Ok(curtain_net::TransportKind::Udp) => {
            eprintln!(
                "the UDP backend covers the data plane only; the coordinator's control plane \
                 is TCP JSON under every transport"
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}");
            usage();
        }
    }

    // One sink backs both the JSONL event stream (when --trace is given)
    // and the /metrics registry (when --metrics is given); without
    // --trace the event lines go to a null writer and only the embedded
    // metrics registry is live.
    let observed = trace.is_some() || metrics_addr.is_some();
    let (recorder, sink) = if observed {
        let sink = match &trace {
            Some(path) => match File::create(path) {
                Ok(f) => JsonlSink::new(BufWriter::new(
                    Box::new(f) as Box<dyn std::io::Write + Send>
                )),
                Err(e) => {
                    eprintln!("cannot create trace file {path}: {e}");
                    std::process::exit(1);
                }
            },
            None => JsonlSink::new(BufWriter::new(
                Box::new(std::io::sink()) as Box<dyn std::io::Write + Send>
            )),
        };
        (SharedRecorder::wall_clock(sink.clone()), Some(sink))
    } else {
        (SharedRecorder::null(), None)
    };

    let config = OverlayConfig::new(k, d);
    let coordinator = if let Some(primary) = &standby_of {
        // Warm standby: tail the primary until it dies, then take over at
        // its address. The follower needs a WAL of its own for the
        // shipped history.
        let Some(path) = &wal else {
            eprintln!("--standby-of requires --wal <path> for the shipped log");
            std::process::exit(2);
        };
        let primary_addr = primary.parse().unwrap_or_else(|_| usage());
        let mut standby = Standby::start(
            StandbyOptions::new(
                primary_addr,
                WalOptions::new(path).with_strict(strict),
                config,
            ),
            recorder.clone(),
        );
        println!("standing by for coordinator at {primary_addr}");
        while !standby.wait_promoted(Duration::from_secs(3600)) {}
        match standby.take_promoted().expect("wait_promoted returned true") {
            Ok(c) => {
                println!("promoted: primary at {primary_addr} stopped answering");
                c
            }
            Err(e) => {
                eprintln!("promotion failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        let started = match &wal {
            Some(path) => {
                let options = WalOptions::new(path).with_strict(strict);
                let existing =
                    std::fs::metadata(path).map(|m| m.len() > 0).unwrap_or(false);
                if existing {
                    println!("recovering from WAL {path}");
                    Coordinator::recover_traced(options, config, 0xC0DE, recorder.clone())
                        .inspect(|c| {
                            // An amnesiac restart may be missing rows the
                            // old incarnation knew; chase peers instead of
                            // waiting for their complaints.
                            drop(c.spawn_resync_sweep());
                        })
                } else {
                    Coordinator::start_durable(config, 0xC0DE, recorder.clone(), &options)
                }
            }
            None => Coordinator::start_traced(config, 0xC0DE, recorder.clone()),
        };
        match started {
            Ok(c) => c,
            Err(e) => {
                eprintln!("failed to start: {e}");
                std::process::exit(1);
            }
        }
    };
    let _expose = metrics_addr.as_ref().map(|addr| {
        let metrics = sink.as_ref().expect("observed implies sink").metrics().clone();
        match ExposeServer::bind(addr.as_str(), metrics, coordinator.health_handle()) {
            Ok(server) => {
                println!("metrics/health on http://{}", server.addr());
                server
            }
            Err(e) => {
                eprintln!("cannot bind metrics listener {addr}: {e}");
                std::process::exit(1);
            }
        }
    });
    println!("curtain coordinator listening on {}", coordinator.addr());
    println!("k = {k} threads, d = {d} per node");
    loop {
        std::thread::sleep(Duration::from_secs(stats_every));
        println!(
            "members: {:>5}  completed: {:>5}  repairs: {:>4}",
            coordinator.members(),
            coordinator.completed(),
            coordinator.repairs()
        );
        let _ = recorder.flush();
        if let Some(path) = &checkpoint {
            match coordinator.checkpoint_json() {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("checkpoint write failed: {e}");
                    }
                }
                Err(e) => eprintln!("checkpoint serialization failed: {e}"),
            }
        }
    }
}
