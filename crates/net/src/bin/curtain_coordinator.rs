//! CLI: run a curtain coordinator.
//!
//! ```text
//! curtain_coordinator <k> <d> [--wal <path>] [--checkpoint <path>] [--stats-every <secs>]
//! ```
//!
//! Prints the control address; peers and the source point at it. With
//! `--wal`, every matrix mutation is logged durably and a restart with
//! the same path *recovers* the previous matrix instead of starting
//! empty (an existing non-empty log is replayed; a missing or empty one
//! starts fresh). The optional checkpoint file is rewritten after every
//! stats interval so operators can inspect the live matrix.

use std::time::Duration;

use curtain_net::{Coordinator, WalOptions};
use curtain_overlay::OverlayConfig;
use curtain_telemetry::SharedRecorder;

fn usage() -> ! {
    eprintln!(
        "usage: curtain_coordinator <k> <d> [--wal <path>] [--checkpoint <path>] \
         [--stats-every <secs>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let k: usize = args[0].parse().unwrap_or_else(|_| usage());
    let d: usize = args[1].parse().unwrap_or_else(|_| usage());
    let mut wal: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut stats_every = 5u64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--wal" if i + 1 < args.len() => {
                wal = Some(args[i + 1].clone());
                i += 2;
            }
            "--checkpoint" if i + 1 < args.len() => {
                checkpoint = Some(args[i + 1].clone());
                i += 2;
            }
            "--stats-every" if i + 1 < args.len() => {
                stats_every = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let config = OverlayConfig::new(k, d);
    let started = match &wal {
        Some(path) => {
            let existing =
                std::fs::metadata(path).map(|m| m.len() > 0).unwrap_or(false);
            if existing {
                println!("recovering from WAL {path}");
                Coordinator::recover(path, config)
            } else {
                Coordinator::start_durable(
                    config,
                    0xC0DE,
                    SharedRecorder::null(),
                    &WalOptions::new(path),
                )
            }
        }
        None => Coordinator::start(config),
    };
    let coordinator = match started {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("curtain coordinator listening on {}", coordinator.addr());
    println!("k = {k} threads, d = {d} per node");
    loop {
        std::thread::sleep(Duration::from_secs(stats_every));
        println!(
            "members: {:>5}  completed: {:>5}  repairs: {:>4}",
            coordinator.members(),
            coordinator.completed(),
            coordinator.repairs()
        );
        if let Some(path) = &checkpoint {
            match coordinator.checkpoint_json() {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("checkpoint write failed: {e}");
                    }
                }
                Err(e) => eprintln!("checkpoint serialization failed: {e}"),
            }
        }
    }
}
