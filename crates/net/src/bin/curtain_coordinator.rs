//! CLI: run a curtain coordinator.
//!
//! ```text
//! curtain_coordinator <k> <d> [--checkpoint <path>] [--stats-every <secs>]
//! ```
//!
//! Prints the control address; peers and the source point at it. The
//! optional checkpoint file is rewritten after every stats interval so a
//! replacement coordinator can be restarted from it.

use std::time::Duration;

use curtain_net::Coordinator;
use curtain_overlay::OverlayConfig;

fn usage() -> ! {
    eprintln!("usage: curtain_coordinator <k> <d> [--checkpoint <path>] [--stats-every <secs>]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let k: usize = args[0].parse().unwrap_or_else(|_| usage());
    let d: usize = args[1].parse().unwrap_or_else(|_| usage());
    let mut checkpoint: Option<String> = None;
    let mut stats_every = 5u64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--checkpoint" if i + 1 < args.len() => {
                checkpoint = Some(args[i + 1].clone());
                i += 2;
            }
            "--stats-every" if i + 1 < args.len() => {
                stats_every = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let coordinator = match Coordinator::start(OverlayConfig::new(k, d)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("curtain coordinator listening on {}", coordinator.addr());
    println!("k = {k} threads, d = {d} per node");
    loop {
        std::thread::sleep(Duration::from_secs(stats_every));
        println!(
            "members: {:>5}  completed: {:>5}  repairs: {:>4}",
            coordinator.members(),
            coordinator.completed(),
            coordinator.repairs()
        );
        if let Some(path) = &checkpoint {
            match coordinator.checkpoint_json() {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("checkpoint write failed: {e}");
                    }
                }
                Err(e) => eprintln!("checkpoint serialization failed: {e}"),
            }
        }
    }
}
