//! CLI: serve a file as a curtain source.
//!
//! ```text
//! curtain_source <coordinator-addr> <file> [--generation <g>] [--packet-len <s>] [--pace-us <micros>]
//! ```
//!
//! With `--packet-len`, the file is cut into multiple generations of
//! `g × s` bytes (the scalable path); otherwise a single generation.

use std::net::SocketAddr;
use std::time::Duration;

use curtain_net::Source;

fn usage() -> ! {
    eprintln!(
        "usage: curtain_source <coordinator-addr> <file> [--generation <g>] [--packet-len <s>] [--pace-us <micros>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let coordinator: SocketAddr = args[0].parse().unwrap_or_else(|_| usage());
    let path = &args[1];
    let mut generation = 32usize;
    let mut packet_len: Option<usize> = None;
    let mut pace_us = 300u64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--generation" if i + 1 < args.len() => {
                generation = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--packet-len" if i + 1 < args.len() => {
                packet_len = Some(args[i + 1].parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--pace-us" if i + 1 < args.len() => {
                pace_us = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let content = match std::fs::read(path) {
        Ok(c) if !c.is_empty() => c,
        Ok(_) => {
            eprintln!("{path} is empty");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let pace = Duration::from_micros(pace_us);
    let source = match match packet_len {
        Some(s) => Source::start_with_shape(coordinator, &content, generation, s, pace),
        None => Source::start(coordinator, &content, generation, pace),
    } {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start source: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serving {} ({} bytes) as {} generation(s) of {} packets x {} bytes from {}",
        path,
        content.len(),
        source.generations(),
        source.generation_size(),
        source.packet_len(),
        source.data_addr()
    );
    println!("press ctrl-c to stop");
    loop {
        std::thread::sleep(Duration::from_secs(60));
    }
}
