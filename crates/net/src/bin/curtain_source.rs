//! CLI: serve a file as a curtain source.
//!
//! ```text
//! curtain_source <coordinator-addr> <file> [--generation <g>] [--packet-len <s>] [--pace-us <micros>]
//!                                          [--window <n>] [--trace <path>] [--metrics <addr>]
//!                                          [--transport <tcp|udp|vnet>]
//! ```
//!
//! With `--packet-len`, the file is cut into multiple generations of
//! `g × s` bytes (the scalable path); otherwise a single generation.
//!
//! `--window n` serves a sliding window of `n` generations: the source
//! cuts generations in order and stamps every frame with the window
//! base, and peers recode only within the active window (requires every
//! node to speak the window frame extension).
//!
//! `--trace` streams the JSONL event log to a file *and* stamps every
//! outgoing packet with a fresh causal trace context (the root of the
//! hop chain stitched reports follow). `--metrics` serves `/metrics`
//! and `/health` on the given address.

use std::fs::File;
use std::io::BufWriter;
use std::net::SocketAddr;
use std::time::Duration;

use curtain_net::{PendingSource, Source};
use curtain_telemetry::{ExposeServer, JsonlSink, SharedRecorder};

fn usage() -> ! {
    eprintln!(
        "usage: curtain_source <coordinator-addr> <file> [--generation <g>] [--packet-len <s>] \
         [--pace-us <micros>] [--window <n>] [--trace <path>] [--metrics <addr>] [--transport <tcp|udp|vnet>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let coordinator: SocketAddr = args[0].parse().unwrap_or_else(|_| usage());
    let path = &args[1];
    let mut generation = 32usize;
    let mut packet_len: Option<usize> = None;
    let mut pace_us = 300u64;
    let mut window: Option<usize> = None;
    let mut trace: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut transport_flag: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--transport" if i + 1 < args.len() => {
                transport_flag = Some(args[i + 1].clone());
                i += 2;
            }
            "--generation" if i + 1 < args.len() => {
                generation = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--packet-len" if i + 1 < args.len() => {
                packet_len = Some(args[i + 1].parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--pace-us" if i + 1 < args.len() => {
                pace_us = args[i + 1].parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--window" if i + 1 < args.len() => {
                window = Some(args[i + 1].parse().unwrap_or_else(|_| usage()));
                i += 2;
            }
            "--trace" if i + 1 < args.len() => {
                trace = Some(args[i + 1].clone());
                i += 2;
            }
            "--metrics" if i + 1 < args.len() => {
                metrics_addr = Some(args[i + 1].clone());
                i += 2;
            }
            _ => usage(),
        }
    }

    match curtain_net::transport::resolve(transport_flag.as_deref()) {
        Ok(curtain_net::TransportKind::Tcp) => {}
        Ok(curtain_net::TransportKind::Vnet) => {
            eprintln!(
                "the vnet transport exists only in-process (a simulated world, not a dialable \
                 network); run the e22 lab sweep instead: cargo run -p curtain-lab -- run --exp e22"
            );
            std::process::exit(2);
        }
        Ok(curtain_net::TransportKind::Udp) => {
            eprintln!(
                "the UDP backend covers the data-plane endpoint \
                 (curtain_net::transport::udp); source sessions serve TCP"
            );
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("{e}");
            usage();
        }
    }

    let content = match std::fs::read(path) {
        Ok(c) if !c.is_empty() => c,
        Ok(_) => {
            eprintln!("{path} is empty");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let observed = trace.is_some() || metrics_addr.is_some();
    let (recorder, sink) = if observed {
        let sink = match &trace {
            Some(p) => match File::create(p) {
                Ok(f) => JsonlSink::new(BufWriter::new(
                    Box::new(f) as Box<dyn std::io::Write + Send>
                )),
                Err(e) => {
                    eprintln!("cannot create trace file {p}: {e}");
                    std::process::exit(1);
                }
            },
            None => JsonlSink::new(BufWriter::new(
                Box::new(std::io::sink()) as Box<dyn std::io::Write + Send>
            )),
        };
        (SharedRecorder::wall_clock(sink.clone()), Some(sink))
    } else {
        (SharedRecorder::null(), None)
    };

    let pace = Duration::from_micros(pace_us);
    let pending = match match packet_len {
        Some(s) => PendingSource::bind_with_shape(&content, generation, s, pace),
        None => PendingSource::bind(&content, generation, pace),
    } {
        Ok(p) => {
            let p = p.observed(recorder.clone(), trace.is_some());
            match window {
                Some(n) if n > 0 => p.windowed(n),
                Some(_) => usage(),
                None => p,
            }
        }
        Err(e) => {
            eprintln!("failed to bind source: {e}");
            std::process::exit(1);
        }
    };
    let source: Source = match pending.register(coordinator) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start source: {e}");
            std::process::exit(1);
        }
    };
    let _expose = metrics_addr.as_ref().map(|addr| {
        let metrics = sink.as_ref().expect("observed implies sink").metrics().clone();
        let generations = source.generations();
        let health = move || {
            format!(r#"{{"ok":true,"role":"source","generations":{generations}}}"#)
        };
        match ExposeServer::bind(addr.as_str(), metrics, health) {
            Ok(server) => {
                println!("metrics/health on http://{}", server.addr());
                server
            }
            Err(e) => {
                eprintln!("cannot bind metrics listener {addr}: {e}");
                std::process::exit(1);
            }
        }
    });
    println!(
        "serving {} ({} bytes) as {} generation(s) of {} packets x {} bytes from {}",
        path,
        content.len(),
        source.generations(),
        source.generation_size(),
        source.packet_len(),
        source.data_addr()
    );
    println!("press ctrl-c to stop");
    loop {
        std::thread::sleep(Duration::from_secs(60));
        let _ = recorder.flush();
    }
}
