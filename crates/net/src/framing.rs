//! Data-plane framing over blocking streams: the thin I/O shell around
//! the pure wire format in [`crate::core::wire`].
//!
//! All byte layouts — length prefixes, extension flags, handshake lines,
//! datagram chunking — are defined (and re-exported from) the sans-io
//! core; this module only adds the socket concerns: blocking reads and
//! writes, read deadlines, stop-flag polling, and clean-EOF detection.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use curtain_rlnc::{BufPool, CodedPacket};
use curtain_telemetry::TraceContext;

pub use crate::core::wire::{
    DataHello, Subscribe, MAX_FRAME, RESYNC_NUDGE_LINE, TRACE_FLAG, WINDOW_FLAG,
};
use crate::core::wire::{self, MAX_SUBSCRIBE_LINE};

/// Writes the subscribe line.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_subscribe(mut stream: &TcpStream, sub: &Subscribe) -> io::Result<()> {
    let mut line = sub.to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// Writes the resync-nudge line (see [`RESYNC_NUDGE_LINE`]).
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_resync_nudge(mut stream: &TcpStream) -> io::Result<()> {
    let mut line = String::from(RESYNC_NUDGE_LINE);
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// Reads the subscribe line from a freshly accepted data connection,
/// blocking until a full line arrives (respecting the stream's read
/// timeout, if any).
///
/// # Errors
///
/// Propagates socket and parse errors.
pub fn read_subscribe(stream: &TcpStream) -> io::Result<Subscribe> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut buf = String::new();
    reader.read_line(&mut buf)?;
    Subscribe::parse_json_line(&buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Reads the subscribe line without ever blocking longer than ~100 ms at a
/// time, so a serving thread stays responsive to `stop` (and can be
/// joined promptly) even when a client connects and then stalls.
///
/// Tolerates the line arriving in arbitrarily small pieces — each read
/// timeout just re-checks `stop` and the deadline, keeping whatever bytes
/// already arrived.
///
/// # Errors
///
/// `TimedOut` when `deadline` passes or `stop` is raised before a full
/// line arrives; otherwise propagates socket and parse errors.
pub fn read_subscribe_deadline(
    stream: &TcpStream,
    stop: &AtomicBool,
    deadline: Duration,
) -> io::Result<Subscribe> {
    match read_data_hello_deadline(stream, stop, deadline)? {
        DataHello::Subscribe(sub) => Ok(sub),
        DataHello::ResyncNudge => {
            Err(io::Error::new(io::ErrorKind::InvalidData, "resync nudge, not a subscribe"))
        }
    }
}

/// Like [`read_subscribe_deadline`], but also accepts the coordinator's
/// resync nudge — the reader a sweep-aware peer runs on every accepted
/// data connection.
///
/// # Errors
///
/// See [`read_subscribe_deadline`].
pub fn read_data_hello_deadline(
    stream: &TcpStream,
    stop: &AtomicBool,
    deadline: Duration,
) -> io::Result<DataHello> {
    let until = Instant::now() + deadline;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = stream.try_clone()?;
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if stop.load(Ordering::SeqCst) || Instant::now() >= until {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "no subscribe line"));
        }
        // One byte at a time: the line is short and sent once, and this
        // guarantees we never consume bytes past the newline (the frame
        // channel runs the other way, but keep the invariant anyway).
        match reader.read(&mut byte) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "closed before subscribe",
                ))
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    let text = std::str::from_utf8(&line)
                        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad utf-8"))?;
                    return wire::parse_data_hello(text)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
                }
                line.push(byte[0]);
                if line.len() > MAX_SUBSCRIBE_LINE {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "subscribe line too long",
                    ));
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Writes one length-prefixed packet frame.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame(stream: &mut impl Write, packet: &CodedPacket) -> io::Result<()> {
    let mut scratch = Vec::new();
    write_frame_into(stream, packet, &mut scratch)
}

/// Like [`write_frame`], assembling the frame in a caller-owned scratch
/// buffer so a serving loop allocates nothing per packet.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame_into(
    stream: &mut impl Write,
    packet: &CodedPacket,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    scratch.clear();
    wire::encode_frame_tagged_into(scratch, packet, None, None);
    stream.write_all(scratch)?;
    stream.flush()
}

/// Writes one frame carrying an optional trace context.
///
/// With `ctx: None` the output is byte-identical to [`write_frame`];
/// with `Some`, the length prefix gains [`TRACE_FLAG`] and the body is
/// `[16-byte context][packet wire bytes]`.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame_ctx(
    stream: &mut impl Write,
    packet: &CodedPacket,
    ctx: Option<TraceContext>,
) -> io::Result<()> {
    let mut scratch = Vec::new();
    write_frame_ctx_into(stream, packet, ctx, &mut scratch)
}

/// Like [`write_frame_ctx`], assembling the frame in a caller-owned
/// scratch buffer so a serving loop allocates nothing per packet.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame_ctx_into(
    stream: &mut impl Write,
    packet: &CodedPacket,
    ctx: Option<TraceContext>,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    write_frame_tagged_into(stream, packet, ctx, None, scratch)
}

/// Writes one frame carrying any combination of the optional extensions:
/// a trace context ([`TRACE_FLAG`]) and a window base ([`WINDOW_FLAG`]).
/// With both `None` the output is byte-identical to [`write_frame`].
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame_tagged_into(
    stream: &mut impl Write,
    packet: &CodedPacket,
    ctx: Option<TraceContext>,
    window_base: Option<u32>,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    scratch.clear();
    wire::encode_frame_tagged_into(scratch, packet, ctx, window_base);
    stream.write_all(scratch)?;
    stream.flush()
}

/// Reads one frame that may carry a trace context (see [`TRACE_FLAG`]),
/// parsing the packet into pool-recycled buffers. `Ok(None)` signals
/// clean EOF at a frame boundary; unflagged frames return `(packet,
/// None)` exactly as [`read_frame_pooled`] would.
///
/// This is the pre-window reader: a [`WINDOW_FLAG`]-tagged frame is
/// rejected as a bad length (the mixed-version contract — see
/// [`read_frame_tagged_pooled`] for the reader that understands both
/// extensions).
///
/// # Errors
///
/// Propagates socket errors; corrupt frames map to `InvalidData`.
pub fn read_frame_ctx_pooled(
    stream: &mut impl Read,
    pool: &BufPool,
    scratch: &mut Vec<u8>,
) -> io::Result<Option<(CodedPacket, Option<TraceContext>)>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(stream, &mut len_buf)? {
        return Ok(None);
    }
    let raw = u32::from_le_bytes(len_buf);
    let traced = raw & TRACE_FLAG != 0;
    let len = raw & !TRACE_FLAG;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame length"));
    }
    if traced && len as usize <= TraceContext::WIRE_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "traced frame too short"));
    }
    scratch.clear();
    scratch.resize(len as usize, 0);
    stream.read_exact(scratch)?;
    let (ctx, packet_bytes) = if traced {
        let mut wire = [0u8; TraceContext::WIRE_LEN];
        wire.copy_from_slice(&scratch[..TraceContext::WIRE_LEN]);
        (Some(TraceContext::from_wire(&wire)), &scratch[TraceContext::WIRE_LEN..])
    } else {
        (None, &scratch[..])
    };
    CodedPacket::from_wire_pooled(packet_bytes, pool)
        .map(|p| Some((p, ctx)))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

pub use crate::core::wire::TaggedFrame;

/// Reads one frame that may carry any combination of the trace-context
/// and window-base extensions, parsing the packet into pool-recycled
/// buffers. `Ok(None)` signals clean EOF at a frame boundary; frames
/// without a given extension return `None` in its slot.
///
/// # Errors
///
/// Propagates socket errors; corrupt frames map to `InvalidData`.
pub fn read_frame_tagged_pooled(
    stream: &mut impl Read,
    pool: &BufPool,
    scratch: &mut Vec<u8>,
) -> io::Result<Option<TaggedFrame>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(stream, &mut len_buf)? {
        return Ok(None);
    }
    let raw = u32::from_le_bytes(len_buf);
    let prefix =
        wire::parse_prefix(raw).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    scratch.clear();
    scratch.resize(prefix.len, 0);
    stream.read_exact(scratch)?;
    let (ctx, base, rest) = wire::split_body(prefix, scratch);
    CodedPacket::from_wire_pooled(rest, pool)
        .map(|p| Some((p, ctx, base)))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads one frame. `Ok(None)` signals clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates socket errors; corrupt frames map to `InvalidData`.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<CodedPacket>> {
    let mut body = Vec::new();
    match read_frame_body(stream, &mut body)? {
        false => Ok(None),
        true => CodedPacket::from_wire(&body)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Like [`read_frame`], reusing a caller-owned scratch buffer for the frame
/// body and parsing the packet into pool-recycled buffers — the upstream
/// receive loop allocates nothing at steady state.
///
/// # Errors
///
/// Propagates socket errors; corrupt frames map to `InvalidData`.
pub fn read_frame_pooled(
    stream: &mut impl Read,
    pool: &BufPool,
    scratch: &mut Vec<u8>,
) -> io::Result<Option<CodedPacket>> {
    match read_frame_body(stream, scratch)? {
        false => Ok(None),
        true => CodedPacket::from_wire_pooled(scratch, pool)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Reads one length prefix + body into `body` (resized in place). Returns
/// `false` on clean EOF at a frame boundary.
fn read_frame_body(stream: &mut impl Read, body: &mut Vec<u8>) -> io::Result<bool> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(stream, &mut len_buf)? {
        return Ok(false);
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame length"));
    }
    body.clear();
    body.resize(len as usize, 0);
    stream.read_exact(body)?;
    Ok(true)
}

/// Reads exactly `buf.len()` bytes; returns `false` on EOF *before the
/// first byte* (a clean close), errors on EOF mid-buffer.
fn read_exact_or_eof(stream: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame"));
            }
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use curtain_overlay::NodeId;
    use std::net::TcpListener;

    #[test]
    fn frame_round_trip_in_memory() {
        let p = CodedPacket::new(0, vec![1, 2, 3], Bytes::from(vec![9u8; 64]));
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(got, p);
        // Clean EOF after the frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn pooled_frame_round_trip_reuses_buffers() {
        let pool = BufPool::default();
        let mut scratch = Vec::new();
        let mut wire_scratch = Vec::new();
        let mut buf = Vec::new();
        let p = CodedPacket::new(1, vec![4, 5, 6], vec![7u8; 48]);
        write_frame_into(&mut buf, &p, &mut wire_scratch).unwrap();
        write_frame_into(&mut buf, &p, &mut wire_scratch).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let first = read_frame_pooled(&mut cursor, &pool, &mut scratch).unwrap().unwrap();
        assert_eq!(first, p);
        drop(first);
        let second = read_frame_pooled(&mut cursor, &pool, &mut scratch).unwrap().unwrap();
        assert_eq!(second, p);
        assert!(pool.stats().hits >= 1, "second frame reuses the first frame's buffers");
        assert!(read_frame_pooled(&mut cursor, &pool, &mut scratch).unwrap().is_none());
    }

    #[test]
    fn write_frame_into_matches_write_frame() {
        let p = CodedPacket::new(2, vec![9, 9], vec![1u8; 32]);
        let mut plain = Vec::new();
        write_frame(&mut plain, &p).unwrap();
        let mut reused = Vec::new();
        let mut scratch = vec![0xFF; 512]; // dirty scratch must not leak
        write_frame_into(&mut reused, &p, &mut scratch).unwrap();
        assert_eq!(plain, reused);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let p = CodedPacket::new(0, vec![1], Bytes::from(vec![5u8; 8]));
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut cursor = io::Cursor::new(vec![0u8, 0, 0, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversize_frame_rejected() {
        let mut cursor = io::Cursor::new((MAX_FRAME + 1).to_le_bytes().to_vec());
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn multiple_frames_stream() {
        let mut buf = Vec::new();
        for i in 0..5u8 {
            let p = CodedPacket::new(0, vec![i + 1, 0], Bytes::from(vec![i; 16]));
            write_frame(&mut buf, &p).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        let mut count = 0;
        while let Some(p) = read_frame(&mut cursor).unwrap() {
            assert_eq!(p.payload()[0], count);
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn ctx_frame_round_trips_and_plain_frames_interoperate() {
        let pool = BufPool::default();
        let mut scratch = Vec::new();
        let p = CodedPacket::new(3, vec![1, 2, 3], Bytes::from(vec![8u8; 32]));
        let ctx = TraceContext { trace: 0xAAAA_BBBB, span: 0x1111_2222 };

        let mut buf = Vec::new();
        write_frame_ctx(&mut buf, &p, Some(ctx)).unwrap();
        write_frame_ctx(&mut buf, &p, None).unwrap();
        write_frame(&mut buf, &p).unwrap();

        let mut cursor = io::Cursor::new(buf);
        let (got, got_ctx) = read_frame_ctx_pooled(&mut cursor, &pool, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!(got, p);
        assert_eq!(got_ctx, Some(ctx));
        // Untraced frame through the ctx-aware reader: packet, no ctx.
        let (got, got_ctx) = read_frame_ctx_pooled(&mut cursor, &pool, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!(got, p);
        assert_eq!(got_ctx, None);
        // A frame written by the pre-tracing writer parses identically.
        let (got, got_ctx) = read_frame_ctx_pooled(&mut cursor, &pool, &mut scratch)
            .unwrap()
            .unwrap();
        assert_eq!(got, p);
        assert_eq!(got_ctx, None);
        assert!(read_frame_ctx_pooled(&mut cursor, &pool, &mut scratch).unwrap().is_none());
    }

    #[test]
    fn untraced_ctx_frame_is_byte_identical_to_plain_frame() {
        let p = CodedPacket::new(0, vec![5, 6], Bytes::from(vec![1u8; 16]));
        let mut plain = Vec::new();
        write_frame(&mut plain, &p).unwrap();
        let mut via_ctx = Vec::new();
        write_frame_ctx(&mut via_ctx, &p, None).unwrap();
        assert_eq!(plain, via_ctx);
    }

    #[test]
    fn pre_tracing_reader_rejects_flagged_frame_instead_of_misparsing() {
        let p = CodedPacket::new(0, vec![5, 6], Bytes::from(vec![1u8; 16]));
        let ctx = TraceContext { trace: 1, span: 2 };
        let mut buf = Vec::new();
        write_frame_ctx(&mut buf, &p, Some(ctx)).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn traced_frame_shorter_than_its_context_rejected() {
        // Flagged length of 8: claims a context but can't hold one.
        let mut wire = ((8u32) | TRACE_FLAG).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]);
        let pool = BufPool::default();
        let mut scratch = Vec::new();
        let mut cursor = io::Cursor::new(wire);
        let err = read_frame_ctx_pooled(&mut cursor, &pool, &mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn tagged_frame_round_trips_every_flag_combination() {
        let pool = BufPool::default();
        let mut scratch = Vec::new();
        let p = CodedPacket::new(7, vec![1, 2, 3], Bytes::from(vec![4u8; 24]));
        let ctx = TraceContext { trace: 0xDEAD, span: 0xBEEF };
        let cases =
            [(None, None), (Some(ctx), None), (None, Some(5u32)), (Some(ctx), Some(9u32))];

        let mut buf = Vec::new();
        for (c, b) in cases {
            write_frame_tagged_into(&mut buf, &p, c, b, &mut scratch).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        for (c, b) in cases {
            let (got, got_ctx, got_base) =
                read_frame_tagged_pooled(&mut cursor, &pool, &mut scratch).unwrap().unwrap();
            assert_eq!(got, p);
            assert_eq!(got_ctx, c);
            assert_eq!(got_base, b);
        }
        assert!(read_frame_tagged_pooled(&mut cursor, &pool, &mut scratch).unwrap().is_none());
    }

    #[test]
    fn untagged_tagged_frame_is_byte_identical_to_plain_frame() {
        let p = CodedPacket::new(0, vec![5, 6], Bytes::from(vec![1u8; 16]));
        let mut plain = Vec::new();
        write_frame(&mut plain, &p).unwrap();
        let mut via_tagged = Vec::new();
        let mut scratch = Vec::new();
        write_frame_tagged_into(&mut via_tagged, &p, None, None, &mut scratch).unwrap();
        assert_eq!(plain, via_tagged);
    }

    #[test]
    fn pre_window_readers_reject_window_flagged_frame_instead_of_misparsing() {
        // The mixed-version contract: a windowed sender talking to a
        // pre-window receiver produces a clean framing error, never a
        // misparsed packet.
        let p = CodedPacket::new(0, vec![5, 6], Bytes::from(vec![1u8; 16]));
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        write_frame_tagged_into(&mut buf, &p, None, Some(3), &mut scratch).unwrap();

        let pool = BufPool::default();
        let mut cursor = io::Cursor::new(buf.clone());
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame_ctx_pooled(&mut cursor, &pool, &mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn tagged_reader_accepts_pre_window_senders() {
        // The other direction of the mixed-version contract: the new
        // reader parses plain and trace-only frames unchanged.
        let pool = BufPool::default();
        let mut scratch = Vec::new();
        let p = CodedPacket::new(2, vec![8, 9], Bytes::from(vec![6u8; 20]));
        let ctx = TraceContext { trace: 11, span: 22 };
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        write_frame_ctx(&mut buf, &p, Some(ctx)).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let (got, got_ctx, got_base) =
            read_frame_tagged_pooled(&mut cursor, &pool, &mut scratch).unwrap().unwrap();
        assert_eq!((got, got_ctx, got_base), (p.clone(), None, None));
        let (got, got_ctx, got_base) =
            read_frame_tagged_pooled(&mut cursor, &pool, &mut scratch).unwrap().unwrap();
        assert_eq!((got, got_ctx, got_base), (p, Some(ctx), None));
    }

    #[test]
    fn tagged_frame_shorter_than_its_extensions_rejected() {
        // Both flags claim 20 extension bytes; a length of 20 leaves no
        // room for a packet.
        let mut wire = ((20u32) | TRACE_FLAG | WINDOW_FLAG).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 20]);
        let pool = BufPool::default();
        let mut scratch = Vec::new();
        let mut cursor = io::Cursor::new(wire);
        let err = read_frame_tagged_pooled(&mut cursor, &pool, &mut scratch).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn subscribe_line_round_trips() {
        let sub = Subscribe { node: NodeId(42), thread: 7 };
        let back = Subscribe::parse_json_line(&sub.to_json_line()).unwrap();
        assert_eq!(back, sub);
        assert!(Subscribe::parse_json_line("{}").is_err());
        assert!(Subscribe::parse_json_line("junk").is_err());
    }

    /// A connected localhost socket pair.
    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn partial_write_then_close_mid_frame_is_an_error() {
        // The fault a truncating proxy (or a crash mid-write) produces:
        // the length prefix promises more bytes than ever arrive.
        let (client, mut server) = tcp_pair();
        let p = CodedPacket::new(0, vec![1, 2], Bytes::from(vec![3u8; 256]));
        let wire = p.to_wire();
        {
            let mut w = &client;
            w.write_all(&(wire.len() as u32).to_le_bytes()).unwrap();
            w.write_all(&wire[..wire.len() / 2]).unwrap();
            w.flush().unwrap();
        }
        drop(client); // hard close mid-frame
        let err = read_frame(&mut server).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
    }

    #[test]
    fn close_mid_length_prefix_is_an_error() {
        let (client, mut server) = tcp_pair();
        {
            let mut w = &client;
            w.write_all(&[7u8, 0]).unwrap(); // half a length prefix
            w.flush().unwrap();
        }
        drop(client);
        let err = read_frame(&mut server).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
    }

    #[test]
    fn subscribe_line_longer_than_one_read_still_parses() {
        // The line trickles in over several writes with pauses; the
        // deadline reader must assemble it across its internal timeouts.
        let (client, server) = tcp_pair();
        let stop = AtomicBool::new(false);
        let writer = std::thread::spawn(move || {
            let line = Subscribe { node: NodeId(9), thread: 3 }.to_json_line() + "\n";
            let bytes = line.as_bytes();
            let mut w = &client;
            for chunk in bytes.chunks(4) {
                w.write_all(chunk).unwrap();
                w.flush().unwrap();
                std::thread::sleep(Duration::from_millis(30));
            }
            client
        });
        let sub = read_subscribe_deadline(&server, &stop, Duration::from_secs(5)).unwrap();
        assert_eq!(sub, Subscribe { node: NodeId(9), thread: 3 });
        drop(writer.join().unwrap());
    }

    #[test]
    fn subscribe_deadline_honors_stop_flag() {
        use std::sync::Arc;
        let (_client, server) = tcp_pair(); // client never writes
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let t = std::thread::spawn(move || {
            read_subscribe_deadline(&server, &stop2, Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::SeqCst);
        let started = Instant::now();
        let err = t.join().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // The reader noticed the flag within its ~100 ms poll interval,
        // not the 30 s deadline.
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn resync_nudge_parses_as_data_hello_but_not_as_subscribe() {
        let (client, server) = tcp_pair();
        let stop = AtomicBool::new(false);
        write_resync_nudge(&client).unwrap();
        let hello = read_data_hello_deadline(&server, &stop, Duration::from_secs(5)).unwrap();
        assert_eq!(hello, DataHello::ResyncNudge);

        // A pre-sweep peer (subscribe-only reader) rejects it cleanly.
        let (client, server) = tcp_pair();
        write_resync_nudge(&client).unwrap();
        let err =
            read_subscribe_deadline(&server, &stop, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn data_hello_reader_accepts_plain_subscribe() {
        let (client, server) = tcp_pair();
        let stop = AtomicBool::new(false);
        let sub = Subscribe { node: NodeId(5), thread: 2 };
        write_subscribe(&client, &sub).unwrap();
        let hello = read_data_hello_deadline(&server, &stop, Duration::from_secs(5)).unwrap();
        assert_eq!(hello, DataHello::Subscribe(sub));
    }

    #[test]
    fn oversized_subscribe_line_rejected() {
        let (client, server) = tcp_pair();
        let stop = AtomicBool::new(false);
        {
            let mut w = &client;
            w.write_all(&vec![b'x'; MAX_SUBSCRIBE_LINE + 10]).unwrap();
            w.flush().unwrap();
        }
        let err =
            read_subscribe_deadline(&server, &stop, Duration::from_secs(5)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
