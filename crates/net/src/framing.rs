//! Data-plane framing: length-prefixed coded packets, plus the subscribe
//! handshake.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use curtain_overlay::{NodeId, ThreadId};
use curtain_rlnc::CodedPacket;
use serde::{Deserialize, Serialize};

/// Upper bound on a frame (coefficients + payload); guards against
/// corrupted length prefixes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// The one-line handshake a subscriber sends after connecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subscribe {
    /// The subscribing peer (for the publisher's bookkeeping/logging).
    pub node: NodeId,
    /// The overlay thread this subscription carries.
    pub thread: ThreadId,
}

/// Writes the subscribe line.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_subscribe(mut stream: &TcpStream, sub: &Subscribe) -> io::Result<()> {
    let mut line = serde_json::to_string(sub).map_err(io::Error::other)?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

/// Reads the subscribe line from a freshly accepted data connection.
///
/// # Errors
///
/// Propagates socket and parse errors.
pub fn read_subscribe(stream: &TcpStream) -> io::Result<Subscribe> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut buf = String::new();
    reader.read_line(&mut buf)?;
    serde_json::from_str(&buf).map_err(io::Error::other)
}

/// Writes one length-prefixed packet frame.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame(stream: &mut impl Write, packet: &CodedPacket) -> io::Result<()> {
    let wire = packet.to_wire();
    let len = wire.len() as u32;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(&wire)?;
    stream.flush()
}

/// Reads one frame. `Ok(None)` signals clean EOF at a frame boundary.
///
/// # Errors
///
/// Propagates socket errors; corrupt frames map to `InvalidData`.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<CodedPacket>> {
    let mut len_buf = [0u8; 4];
    if !read_exact_or_eof(stream, &mut len_buf)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame length"));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    CodedPacket::from_wire(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Reads exactly `buf.len()` bytes; returns `false` on EOF *before the
/// first byte* (a clean close), errors on EOF mid-buffer.
fn read_exact_or_eof(stream: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated frame"));
            }
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn frame_round_trip_in_memory() {
        let p = CodedPacket::new(0, vec![1, 2, 3], Bytes::from(vec![9u8; 64]));
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        let mut cursor = io::Cursor::new(buf);
        let got = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(got, p);
        // Clean EOF after the frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let p = CodedPacket::new(0, vec![1], Bytes::from(vec![5u8; 8]));
        let mut buf = Vec::new();
        write_frame(&mut buf, &p).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut cursor = io::Cursor::new(vec![0u8, 0, 0, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversize_frame_rejected() {
        let mut cursor = io::Cursor::new((MAX_FRAME + 1).to_le_bytes().to_vec());
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn multiple_frames_stream() {
        let mut buf = Vec::new();
        for i in 0..5u8 {
            let p = CodedPacket::new(0, vec![i + 1, 0], Bytes::from(vec![i; 16]));
            write_frame(&mut buf, &p).unwrap();
        }
        let mut cursor = io::Cursor::new(buf);
        let mut count = 0;
        while let Some(p) = read_frame(&mut cursor).unwrap() {
            assert_eq!(p.payload()[0], count);
            count += 1;
        }
        assert_eq!(count, 5);
    }
}
