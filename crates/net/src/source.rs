//! The source: splits content into generations and streams coded packets
//! to every subscriber.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use curtain_rlnc::pipeline::{ObjectEncoder, Schedule};
use curtain_rlnc::Content;
use curtain_telemetry::trace::{wall_micros, NO_PARENT, SOURCE_NODE};
use curtain_telemetry::{Event, SharedRecorder, TraceContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::core::source::Window;
use crate::transport::tcp;
use crate::framing;
use crate::proto::{self, Request, Response};

/// A source that has bound its data port but not yet registered with a
/// coordinator.
///
/// Splitting the lifecycle lets tests interpose a [`crate::FaultProxy`]
/// between the registration and the data plane: bind first, learn
/// [`PendingSource::data_addr`], start a proxy in front of it, then
/// [`PendingSource::register_as`] the *proxy's* address. The coordinator
/// rejects re-registration at a different address (a hijack guard), so the
/// advertised address must be chosen before the first registration.
pub struct PendingSource {
    listener: TcpListener,
    data_addr: SocketAddr,
    encoder: Arc<ObjectEncoder>,
    generations: usize,
    generation_size: usize,
    packet_len: usize,
    content_len: usize,
    pace: Duration,
    recorder: SharedRecorder,
    trace: bool,
    window: Option<usize>,
}

impl PendingSource {
    /// Binds a data port for `content`, cut into one generation of
    /// `generation_size` packets (convenience for small objects).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `content` is empty or `generation_size == 0`.
    pub fn bind(content: &[u8], generation_size: usize, pace: Duration) -> io::Result<Self> {
        assert!(!content.is_empty(), "content must be non-empty");
        assert!(generation_size > 0, "generation size must be positive");
        let packet_len = content.len().div_ceil(generation_size);
        Self::bind_with_shape(content, generation_size, packet_len, pace)
    }

    /// Binds a data port with an explicit `(generation_size, packet_len)`
    /// shape; the object becomes `ceil(len / (g·s))` generations.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics on empty content or zero shape parameters.
    pub fn bind_with_shape(
        content: &[u8],
        generation_size: usize,
        packet_len: usize,
        pace: Duration,
    ) -> io::Result<Self> {
        assert!(!content.is_empty(), "content must be non-empty");
        let split = Content::split(content, generation_size, packet_len);
        let generations = split.generations().len();
        let content_len = content.len();
        let encoder = Arc::new(ObjectEncoder::new(split).with_schedule(Schedule::RoundRobin));
        let (listener, data_addr) = tcp::bind_data_listener()?;
        Ok(PendingSource {
            listener,
            data_addr,
            encoder,
            generations,
            generation_size,
            packet_len,
            content_len,
            pace,
            recorder: SharedRecorder::null(),
            trace: false,
            window: None,
        })
    }

    /// Serves a sliding window of `window` generations instead of
    /// round-robinning the whole object: each subscriber stream cuts
    /// generations in order, mixes only the window's generations, and
    /// stamps every frame with the window base
    /// ([`crate::framing::WINDOW_FLAG`]) so peers recode within the
    /// active window. The window parks over the object's tail once it
    /// reaches the end.
    ///
    /// Peers that predate the flag reject the stamped frames as a framing
    /// error, so only enable this on overlays where every node speaks it.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn windowed(mut self, window: usize) -> Self {
        assert!(window > 0, "window must cover at least one generation");
        self.window = Some(window);
        self
    }

    /// Attaches a telemetry recorder and (optionally) turns on causal
    /// tracing: every packet leaving the source is stamped with a fresh
    /// root [`TraceContext`] carried as a frame extension, plus a
    /// `HopSend` event labelled [`SOURCE_NODE`]. With `trace` off the
    /// wire format is byte-identical to an unobserved source.
    #[must_use]
    pub fn observed(mut self, recorder: SharedRecorder, trace: bool) -> Self {
        self.recorder = recorder;
        self.trace = trace;
        self
    }

    /// The bound data-plane address (children dial this — or a proxy in
    /// front of it).
    #[must_use]
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// Registers the bound address with the coordinator and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Propagates registration failures.
    pub fn register(self, coordinator: SocketAddr) -> io::Result<Source> {
        let advertised = self.data_addr;
        self.register_as(coordinator, advertised)
    }

    /// Registers `advertised` (e.g. a fault-proxy front) as this source's
    /// address with the coordinator, then starts serving on the bound
    /// port.
    ///
    /// # Errors
    ///
    /// Propagates registration failures (including the coordinator's
    /// duplicate-source rejection).
    pub fn register_as(self, coordinator: SocketAddr, advertised: SocketAddr) -> io::Result<Source> {
        // Register before serving so the first Hello already has us.
        let request = Request::RegisterSource {
            data_addr: advertised,
            generations: self.generations,
            generation_size: self.generation_size,
            packet_len: self.packet_len,
            content_len: self.content_len,
        };
        let resp = proto::call(coordinator, &request, Duration::from_secs(5))?;
        if resp != Response::Ok {
            return Err(io::Error::other(format!("registration rejected: {resp:?}")));
        }

        let stop = Arc::new(AtomicBool::new(false));
        let subscribers = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let listener = self.listener;
            let stop = Arc::clone(&stop);
            let encoder = Arc::clone(&self.encoder);
            let subscribers = Arc::clone(&subscribers);
            let pace = self.pace;
            let seed = Arc::new(AtomicU64::new(0x50u64));
            let recorder = self.recorder.clone();
            let trace = self.trace;
            let window = self.window.map(|w| Window { span: w, generation_size: self.generation_size });
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match tcp::poll_accept(&listener) {
                        Ok(Some(stream)) => {
                            let worker_stop = Arc::clone(&stop);
                            let encoder = Arc::clone(&encoder);
                            let s = seed.fetch_add(1, Ordering::SeqCst);
                            let recorder = recorder.clone();
                            let handle = std::thread::spawn(move || {
                                let _ = serve_subscriber(
                                    &stream,
                                    &encoder,
                                    &worker_stop,
                                    pace,
                                    s,
                                    &recorder,
                                    trace,
                                    window,
                                );
                            });
                            let mut subs = subscribers.lock();
                            subs.retain(|h: &JoinHandle<()>| !h.is_finished());
                            subs.push(handle);
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(Source {
            coordinator,
            advertised,
            data_addr: self.data_addr,
            stop,
            accept_handle: Some(accept_handle),
            subscribers,
            generations: self.generations,
            generation_size: self.generation_size,
            packet_len: self.packet_len,
            content_len: self.content_len,
        })
    }
}

impl std::fmt::Debug for PendingSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingSource")
            .field("data_addr", &self.data_addr)
            .field("generation_size", &self.generation_size)
            .finish()
    }
}

/// A running source (the content origin).
///
/// Registers with the coordinator, then serves an unbounded stream of
/// fresh random combinations to every child that subscribes — the server
/// side of the curtain's `k` threads. Content is split into generations
/// ([CWJ03]) so decoding cost stays bounded for arbitrarily large objects;
/// each subscriber receives round-robin coded packets across generations.
pub struct Source {
    coordinator: SocketAddr,
    advertised: SocketAddr,
    data_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    subscribers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    generations: usize,
    generation_size: usize,
    packet_len: usize,
    content_len: usize,
}

impl Source {
    /// Starts a source for `content`, cut into one generation of
    /// `generation_size` packets (convenience for small objects).
    ///
    /// # Errors
    ///
    /// Propagates bind/registration failures.
    ///
    /// # Panics
    ///
    /// Panics if `content` is empty or `generation_size == 0`.
    pub fn start(
        coordinator: SocketAddr,
        content: &[u8],
        generation_size: usize,
        pace: Duration,
    ) -> io::Result<Self> {
        PendingSource::bind(content, generation_size, pace)?.register(coordinator)
    }

    /// Starts a source with an explicit `(generation_size, packet_len)`
    /// shape; the object becomes `ceil(len / (g·s))` generations — the
    /// production path for large files.
    ///
    /// # Errors
    ///
    /// Propagates bind/registration failures.
    ///
    /// # Panics
    ///
    /// Panics on empty content or zero shape parameters.
    pub fn start_with_shape(
        coordinator: SocketAddr,
        content: &[u8],
        generation_size: usize,
        packet_len: usize,
        pace: Duration,
    ) -> io::Result<Self> {
        PendingSource::bind_with_shape(content, generation_size, packet_len, pace)?
            .register(coordinator)
    }

    /// Re-sends the original registration — for a coordinator that was
    /// restarted *without* its WAL and therefore forgot the source. The
    /// same advertised address is used, so a coordinator that still knows
    /// it treats this as an idempotent restart.
    ///
    /// # Errors
    ///
    /// Propagates call failures and coordinator rejections.
    pub fn reregister(&self) -> io::Result<()> {
        let resp = proto::call(
            self.coordinator,
            &Request::RegisterSource {
                data_addr: self.advertised,
                generations: self.generations,
                generation_size: self.generation_size,
                packet_len: self.packet_len,
                content_len: self.content_len,
            },
            Duration::from_secs(5),
        )?;
        if resp != Response::Ok {
            return Err(io::Error::other(format!("re-registration rejected: {resp:?}")));
        }
        Ok(())
    }

    /// The data-plane address children dial.
    #[must_use]
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// The address the coordinator hands to children (differs from
    /// [`Source::data_addr`] when a proxy fronts the source).
    #[must_use]
    pub fn advertised_addr(&self) -> SocketAddr {
        self.advertised
    }

    /// Number of generations.
    #[must_use]
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Packets per generation.
    #[must_use]
    pub fn generation_size(&self) -> usize {
        self.generation_size
    }

    /// Bytes per packet (after padding).
    #[must_use]
    pub fn packet_len(&self) -> usize {
        self.packet_len
    }

    /// Stops serving (children will complain and be told the source is
    /// still the registered parent — use this to emulate source departure).
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Accept loop is joined, so the subscriber list is final; join
        // every serving thread so shutdown really quiesces the source.
        let subs: Vec<_> = self.subscribers.lock().drain(..).collect();
        for h in subs {
            let _ = h.join();
        }
    }
}

impl Drop for Source {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Source")
            .field("data_addr", &self.data_addr)
            .field("generation_size", &self.generation_size)
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_subscriber(
    stream: &TcpStream,
    encoder: &ObjectEncoder,
    stop: &AtomicBool,
    pace: Duration,
    seed: u64,
    recorder: &SharedRecorder,
    trace: bool,
    window: Option<Window>,
) -> io::Result<()> {
    let _sub = framing::read_subscribe_deadline(stream, stop, Duration::from_secs(5))?;
    let mut rng = StdRng::seed_from_u64(seed);
    // Each subscriber cycles the generations independently.
    let mut encoder = encoder.clone();
    let mut out = stream.try_clone()?;
    out.set_write_timeout(Some(Duration::from_secs(2)))?;
    let tracing = trace && recorder.is_enabled();
    let mut scratch = Vec::new();
    let mut emitted: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        // A windowed stream cuts generations in order and mixes only the
        // active window, stamping each frame with the base; the plain
        // path round-robins the whole object unstamped.
        let (packet, base) = match window {
            Some(w) => {
                let generations = encoder.generation_count();
                let packet = encoder.packet_for(w.pick(emitted, generations) as u32, &mut rng);
                (packet, Some(w.base(emitted, generations) as u32))
            }
            None => (encoder.next_packet(&mut rng), None),
        };
        emitted += 1;
        // Packet birth: mint the root of a fresh causal chain. Stitching
        // later declares a delivery chain complete exactly when its parent
        // walk reaches one of these SOURCE_NODE hops.
        let ctx = if tracing {
            let ctx = TraceContext::root();
            recorder.record(&Event::HopSend {
                trace: ctx.trace,
                span: ctx.span,
                parent: NO_PARENT,
                node: SOURCE_NODE,
                generation: packet.generation(),
                t_us: wall_micros(),
            });
            Some(ctx)
        } else {
            None
        };
        if framing::write_frame_tagged_into(&mut out, &packet, ctx, base, &mut scratch).is_err() {
            break; // subscriber went away
        }
        std::thread::sleep(pace);
    }
    Ok(())
}
