//! The source: splits content into generations and streams coded packets
//! to every subscriber.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use curtain_rlnc::pipeline::{ObjectEncoder, Schedule};
use curtain_rlnc::Content;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framing;
use crate::proto::{self, Request, Response};

/// A running source (the content origin).
///
/// Registers with the coordinator, then serves an unbounded stream of
/// fresh random combinations to every child that subscribes — the server
/// side of the curtain's `k` threads. Content is split into generations
/// ([CWJ03]) so decoding cost stays bounded for arbitrarily large objects;
/// each subscriber receives round-robin coded packets across generations.
pub struct Source {
    data_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    subscribers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    generations: usize,
    generation_size: usize,
    packet_len: usize,
}

impl Source {
    /// Starts a source for `content`, cut into one generation of
    /// `generation_size` packets (convenience for small objects).
    ///
    /// # Errors
    ///
    /// Propagates bind/registration failures.
    ///
    /// # Panics
    ///
    /// Panics if `content` is empty or `generation_size == 0`.
    pub fn start(
        coordinator: SocketAddr,
        content: &[u8],
        generation_size: usize,
        pace: Duration,
    ) -> io::Result<Self> {
        assert!(!content.is_empty(), "content must be non-empty");
        assert!(generation_size > 0, "generation size must be positive");
        let packet_len = content.len().div_ceil(generation_size);
        Self::start_with_shape(coordinator, content, generation_size, packet_len, pace)
    }

    /// Starts a source with an explicit `(generation_size, packet_len)`
    /// shape; the object becomes `ceil(len / (g·s))` generations — the
    /// production path for large files.
    ///
    /// # Errors
    ///
    /// Propagates bind/registration failures.
    ///
    /// # Panics
    ///
    /// Panics on empty content or zero shape parameters.
    pub fn start_with_shape(
        coordinator: SocketAddr,
        content: &[u8],
        generation_size: usize,
        packet_len: usize,
        pace: Duration,
    ) -> io::Result<Self> {
        assert!(!content.is_empty(), "content must be non-empty");
        let split = Content::split(content, generation_size, packet_len);
        let generations = split.generations().len();
        let content_len = content.len();
        let encoder = Arc::new(ObjectEncoder::new(split).with_schedule(Schedule::RoundRobin));

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let data_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        // Register before serving so the first Hello already has us.
        let resp = proto::call(
            coordinator,
            &Request::RegisterSource {
                data_addr,
                generations,
                generation_size,
                packet_len,
                content_len,
            },
            Duration::from_secs(5),
        )?;
        if resp != Response::Ok {
            return Err(io::Error::other(format!("registration rejected: {resp:?}")));
        }

        let subscribers = Arc::new(Mutex::new(Vec::new()));
        let accept_handle = {
            let stop = Arc::clone(&stop);
            let encoder = Arc::clone(&encoder);
            let subscribers = Arc::clone(&subscribers);
            let seed = Arc::new(AtomicU64::new(0x50u64));
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let worker_stop = Arc::clone(&stop);
                            let encoder = Arc::clone(&encoder);
                            let s = seed.fetch_add(1, Ordering::SeqCst);
                            let handle = std::thread::spawn(move || {
                                let _ = serve_subscriber(&stream, &encoder, &worker_stop, pace, s);
                            });
                            let mut subs = subscribers.lock();
                            subs.retain(|h: &JoinHandle<()>| !h.is_finished());
                            subs.push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(Source {
            data_addr,
            stop,
            accept_handle: Some(accept_handle),
            subscribers,
            generations,
            generation_size,
            packet_len,
        })
    }

    /// The data-plane address children dial.
    #[must_use]
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// Number of generations.
    #[must_use]
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Packets per generation.
    #[must_use]
    pub fn generation_size(&self) -> usize {
        self.generation_size
    }

    /// Bytes per packet (after padding).
    #[must_use]
    pub fn packet_len(&self) -> usize {
        self.packet_len
    }

    /// Stops serving (children will complain and be told the source is
    /// still the registered parent — use this to emulate source departure).
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Accept loop is joined, so the subscriber list is final; join
        // every serving thread so shutdown really quiesces the source.
        let subs: Vec<_> = self.subscribers.lock().drain(..).collect();
        for h in subs {
            let _ = h.join();
        }
    }
}

impl Drop for Source {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Source")
            .field("data_addr", &self.data_addr)
            .field("generation_size", &self.generation_size)
            .finish()
    }
}

fn serve_subscriber(
    stream: &TcpStream,
    encoder: &ObjectEncoder,
    stop: &AtomicBool,
    pace: Duration,
    seed: u64,
) -> io::Result<()> {
    let _sub = framing::read_subscribe_deadline(stream, stop, Duration::from_secs(5))?;
    let mut rng = StdRng::seed_from_u64(seed);
    // Each subscriber cycles the generations independently.
    let mut encoder = encoder.clone();
    let mut out = stream.try_clone()?;
    out.set_write_timeout(Some(Duration::from_secs(2)))?;
    while !stop.load(Ordering::SeqCst) {
        let packet = encoder.next_packet(&mut rng);
        if framing::write_frame(&mut out, &packet).is_err() {
            break; // subscriber went away
        }
        std::thread::sleep(pace);
    }
    Ok(())
}
