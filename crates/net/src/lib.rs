//! The curtain protocol over real TCP sockets.
//!
//! Everything else in this workspace runs inside a deterministic simulator;
//! this crate is the deployable counterpart: a [`Coordinator`] (the paper's
//! server-side matrix `M` behind a JSON control port), a [`Source`] that
//! streams RLNC-coded packets, and [`Peer`]s that join, subscribe to their
//! `d` parents, recode, serve their own children, and — when a parent's
//! socket dies — execute the §3 repair protocol: *complain to the
//! coordinator, get redirected to the spliced-in parent, resubscribe*.
//!
//! Design notes:
//!
//! * **Control plane** — one JSON line per request/response over a
//!   short-lived TCP connection ([`proto`]). The coordinator wraps the same
//!   [`curtain_overlay::CurtainServer`] the simulations use.
//! * **Data plane** — length-prefixed [`curtain_rlnc::CodedPacket`] wire
//!   frames ([`framing`]). A subscriber opens a socket to its parent,
//!   writes one subscribe line, then reads frames forever. Every packet
//!   carries its coefficient vector, so reconnection needs no state
//!   recovery whatsoever — the property the paper builds on.
//! * **Failures** — crash = sockets drop. Children notice EOF (or a
//!   stalled-but-connected link), complain, and are redirected; the
//!   coordinator marks the node failed and splices it out (graceful leaves
//!   reuse the same path — the leaver just closes everything and says
//!   good-bye first).
//! * **Repair robustness** — complaints run under a [`RepairPolicy`]:
//!   jittered exponential backoff between attempts, retries until a
//!   per-episode deadline (a transient coordinator timeout is NOT fatal),
//!   and a sliding-window episode budget instead of a lifetime cap, so a
//!   long-lived peer repairs indefinitely unless it is genuinely
//!   thrashing. Give-ups are loud: a `RepairGaveUp` telemetry event and a
//!   `repair_gave_up` counter, never a silent thread death.
//! * **Fault injection** — [`FaultProxy`] is a TCP proxy for tests and
//!   soaks: it can refuse, blackhole, delay, truncate mid-frame, or hard-
//!   close connections on command (see `tests/churn_soak.rs` at the
//!   workspace root).
//! * **Observability** — with tracing on ([`PeerConfig::trace`],
//!   [`PendingSource::observed`]) every packet born at the source carries
//!   a 16-byte causal [`curtain_telemetry::TraceContext`] as an optional
//!   frame extension ([`framing::TRACE_FLAG`]); peers record
//!   `HopRecv`/`HopSend` events and forward child spans on recoded
//!   frames, and repair episodes emit complain → splice →
//!   repair-complete span trees that `curtain-telemetry`'s stitcher
//!   reassembles across process boundaries. Untraced senders emit frames
//!   byte-identical to the pre-tracing format. [`Coordinator::health_json`]
//!   and [`Peer::health_json`] feed the telemetry crate's `/health`
//!   endpoint.
//! * **Durability** — a coordinator started with [`WalOptions`] appends
//!   every matrix mutation to a checksummed write-ahead log ([`wal`]) and
//!   can be resurrected with [`Coordinator::recover`] after a crash.
//!   Mutations are *group-committed* by default: they park on a commit
//!   queue, the committer fsyncs one batch at a time, and responses are
//!   released only once their batch is durable — same guarantee as
//!   fsync-per-mutation, a fraction of the fsyncs. A WAL failure enters
//!   loud degraded mode (`CoordinatorDegraded`, `"durable": false` in
//!   `/health`); with [`WalOptions::with_strict`] the coordinator
//!   refuses further mutations instead of serving them from memory.
//!   When the log itself is lost, peers rebuild `M` through the resync
//!   protocol: an "unknown child" complaint answer makes the peer upload
//!   its thread→parent view and the coordinator re-inserts the row (see
//!   `tests/coordinator_crash_soak.rs` at the workspace root) — and a
//!   recovered or promoted coordinator additionally runs a *proactive
//!   resync sweep* ([`Coordinator::resync_sweep`]) instead of waiting
//!   for complaints.
//! * **High availability** — a [`Standby`] bootstraps from the primary
//!   over the control port (`SnapshotFetch`), tails streamed WAL
//!   records (`WalTail`), and promotes itself at the primary's address
//!   when it stops answering, with an epoch-fenced id allocator so
//!   stale grants can never collide (see `tests/failover_soak.rs`).
//!
//! # Example
//!
//! ```no_run
//! use curtain_net::{Coordinator, Peer, Source};
//! use curtain_overlay::OverlayConfig;
//! use std::time::Duration;
//!
//! # fn main() -> std::io::Result<()> {
//! let coordinator = Coordinator::start(OverlayConfig::new(8, 2))?;
//! let content = vec![7u8; 4096];
//! let _source = Source::start(coordinator.addr(), &content, 16, Duration::from_micros(200))?;
//! let peer = Peer::join(coordinator.addr())?;
//! assert!(peer.wait_complete(Duration::from_secs(10)));
//! assert_eq!(peer.decoded_content().unwrap(), content);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
pub mod core;
pub mod faults;
pub mod framing;
mod peer;
pub mod proto;
pub mod repair;
mod source;
pub mod standby;
pub mod transport;
pub mod wal;

pub use coordinator::{Coordinator, SweepReport};
pub use core::backoff::Backoff;
pub use faults::{Fault, FaultProxy};
pub use peer::{Peer, PeerConfig};
pub use repair::{RepairBudget, RepairPolicy};
pub use source::{PendingSource, Source};
pub use standby::{Standby, StandbyOptions};
pub use transport::TransportKind;
pub use wal::{Wal, WalOptions, WalRecord, WalSourceInfo, WalStore};
