//! The coordinator: the paper's server-side matrix behind a TCP port.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use curtain_overlay::{CurtainServer, Holder, NodeId, OverlayConfig, ThreadId};
use curtain_telemetry::{Event, SharedRecorder};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::proto::{self, ParentAddr, Request, Response};

#[derive(Clone, Copy)]
struct SourceInfo {
    addr: SocketAddr,
    generations: usize,
    generation_size: usize,
    packet_len: usize,
    content_len: usize,
}

struct State {
    server: CurtainServer,
    rng: StdRng,
    addrs: HashMap<NodeId, SocketAddr>,
    source: Option<SourceInfo>,
    completed: HashSet<NodeId>,
    recorder: SharedRecorder,
}

impl State {
    fn parent_addr(&self, holder: Holder) -> Option<ParentAddr> {
        match holder {
            Holder::Server => self.source.map(|s| ParentAddr::Source(s.addr)),
            Holder::Node(n) => self.addrs.get(&n).map(|a| ParentAddr::Node(n, *a)),
        }
    }

    /// The child's current parent on `thread`, after any necessary repair.
    fn current_parent(&mut self, child: NodeId, thread: ThreadId) -> Result<ParentAddr, String> {
        let pos = self
            .server
            .matrix()
            .position_of(child)
            .ok_or_else(|| format!("unknown child {child}"))?;
        let (_, holder) = self
            .server
            .matrix()
            .parents_of_position(pos)
            .into_iter()
            .find(|(t, _)| *t == thread)
            .ok_or_else(|| format!("{child} does not hold thread {thread}"))?;
        self.parent_addr(holder)
            .ok_or_else(|| "no source registered".to_string())
    }

    fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::RegisterSource {
                data_addr,
                generations,
                generation_size,
                packet_len,
                content_len,
            } => {
                self.source = Some(SourceInfo {
                    addr: data_addr,
                    generations,
                    generation_size,
                    packet_len,
                    content_len,
                });
                Response::Ok
            }
            Request::Hello { data_addr } => {
                let Some(info) = self.source else {
                    return Response::Error { reason: "no source registered yet".into() };
                };
                let grant = self.server.hello(&mut self.rng);
                self.addrs.insert(grant.node, data_addr);
                self.recorder.record(&Event::PeerConnect { peer: grant.node.0 });
                self.recorder.gauge("coordinator_members", self.server.matrix().len() as f64);
                let mut parents = Vec::with_capacity(grant.parents.len());
                for (thread, holder) in grant.parents {
                    match self.parent_addr(holder) {
                        Some(p) => parents.push((thread, p)),
                        None => {
                            return Response::Error {
                                reason: format!("no address for parent of thread {thread}"),
                            }
                        }
                    }
                }
                Response::Welcome {
                    node: grant.node,
                    generations: info.generations,
                    generation_size: info.generation_size,
                    packet_len: info.packet_len,
                    content_len: info.content_len,
                    parents,
                }
            }
            Request::Goodbye { node } => match self.server.goodbye(node) {
                Ok(_) => {
                    self.addrs.remove(&node);
                    self.recorder.record(&Event::PeerDisconnect { peer: node.0 });
                    self.recorder.gauge("coordinator_members", self.server.matrix().len() as f64);
                    Response::Ok
                }
                Err(e) => Response::Error { reason: e.to_string() },
            },
            Request::Complaint { child, failed_parent, thread } => {
                // If the accused is still a member, mark it failed and
                // splice it out (report + repair merged: the coordinator is
                // the repair interval here). Duplicate complaints are fine:
                // the node is already gone and we just return the child's
                // current parent.
                if let Some(failed) = failed_parent {
                    if self.server.matrix().position_of(failed).is_some() {
                        let _ = self.server.report_failure(failed);
                        let _ = self.server.repair(failed);
                        self.addrs.remove(&failed);
                        self.completed.remove(&failed);
                        self.recorder.record(&Event::PeerDisconnect { peer: failed.0 });
                        self.recorder
                            .gauge("coordinator_members", self.server.matrix().len() as f64);
                    }
                }
                match self.current_parent(child, thread) {
                    Ok(new_parent) => Response::Redirect { thread, new_parent },
                    Err(reason) => Response::Error { reason },
                }
            }
            Request::Completed { node } => {
                self.completed.insert(node);
                Response::Ok
            }
            Request::Stats => Response::Stats {
                members: self.server.matrix().len(),
                completed: self.completed.len(),
                repairs: self.server.metrics().repairs,
            },
        }
    }
}

/// A running coordinator bound to a local TCP port.
///
/// The accept loop runs on a background thread; each control connection is
/// one request/response exchange. Drop or [`Coordinator::shutdown`] stops
/// it.
pub struct Coordinator {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<State>>,
    handle: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `127.0.0.1:0` and starts serving the control protocol.
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start(config: OverlayConfig) -> io::Result<Self> {
        Self::start_seeded(config, 0xC0DE)
    }

    /// Like [`Coordinator::start`] with an explicit RNG seed for the thread
    /// assignments (tests).
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start_seeded(config: OverlayConfig, seed: u64) -> io::Result<Self> {
        Self::start_traced(config, seed, SharedRecorder::null())
    }

    /// Like [`Coordinator::start_seeded`] with a telemetry recorder
    /// (typically [`SharedRecorder::wall_clock`] — timestamps are unix
    /// milliseconds out here, not sim-ticks). The recorder sees the full
    /// protocol lifecycle: `Hello`/`GoodBye`/`Complain`/`Splice`/
    /// `RepairComplete`/`ThreadDefect` from the embedded
    /// [`CurtainServer`], plus `PeerConnect`/`PeerDisconnect` and a
    /// `coordinator_members` gauge from the connection handlers.
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start_traced(
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let mut server = CurtainServer::new(config).map_err(io::Error::other)?;
        server.set_recorder(recorder.clone());
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(State {
            server,
            rng: StdRng::seed_from_u64(seed),
            addrs: HashMap::new(),
            source: None,
            completed: HashSet::new(),
            recorder,
        }));
        let handle = {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&listener, &stop, &state))
        };
        Ok(Coordinator { addr, stop, state, handle: Some(handle) })
    }

    /// The control-plane address peers dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current member count.
    #[must_use]
    pub fn members(&self) -> usize {
        self.state.lock().server.matrix().len()
    }

    /// Peers that reported full decode.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.state.lock().completed.len()
    }

    /// Repairs executed so far.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.state.lock().server.metrics().repairs
    }

    /// Checkpoint of the coordinator's overlay state as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors.
    pub fn checkpoint_json(&self) -> io::Result<String> {
        self.state.lock().server.to_json().map_err(io::Error::other)
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("addr", &self.addr)
            .field("members", &self.members())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, state: &Arc<Mutex<State>>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(state);
                std::thread::spawn(move || {
                    let _ = handle_connection(&stream, &state);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(stream: &TcpStream, state: &Mutex<State>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let request = proto::read_request(stream)?;
    let response = state.lock().handle(request);
    proto::write_response(stream, &response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn hello_requires_a_source() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:1".parse().unwrap() },
            T,
        )
        .unwrap();
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn register_then_hello_then_stats() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9999".parse().unwrap(),
                generations: 1,
                generation_size: 8,
                packet_len: 64,
                content_len: 512,
            },
            T,
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:10000".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, generation_size, content_len, parents, .. } = resp else {
            panic!("expected welcome, got {resp:?}");
        };
        assert_eq!(generation_size, 8);
        assert_eq!(content_len, 512);
        assert_eq!(parents.len(), 2);
        assert!(parents.iter().all(|(_, p)| matches!(p, ParentAddr::Source(_))));
        // Stats reflect the join.
        let resp = proto::call(c.addr(), &Request::Stats, T).unwrap();
        assert_eq!(resp, Response::Stats { members: 1, completed: 0, repairs: 0 });
        // Completion is recorded.
        proto::call(c.addr(), &Request::Completed { node }, T).unwrap();
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn complaint_splices_and_redirects() {
        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 7).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9000".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        // Two peers; the second may hang below the first.
        let mut nodes = Vec::new();
        for port in [9001u16, 9002] {
            let resp = proto::call(
                c.addr(),
                &Request::Hello {
                    data_addr: format!("127.0.0.1:{port}").parse().unwrap(),
                },
                T,
            )
            .unwrap();
            let Response::Welcome { node, .. } = resp else { panic!() };
            nodes.push(node);
        }
        // Find a (child, thread, parent) relation from the checkpoint.
        let snapshot = c.checkpoint_json().unwrap();
        let restored = CurtainServer::from_json(&snapshot).unwrap();
        let pos1 = restored.matrix().position_of(nodes[1]).unwrap();
        let parents = restored.matrix().parents_of_position(pos1);
        let (thread, holder) = parents[0];
        let failed = match holder {
            Holder::Node(n) => Some(n),
            Holder::Server => None,
        };
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child: nodes[1], failed_parent: failed, thread },
            T,
        )
        .unwrap();
        let Response::Redirect { thread: t2, new_parent } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_eq!(t2, thread);
        if failed.is_some() {
            // The accused is gone; member count dropped and the redirect
            // points somewhere that is not the failed node.
            assert_eq!(c.members(), 1);
            assert_eq!(c.repairs(), 1);
            assert_ne!(new_parent.node(), failed);
        } else {
            assert!(matches!(new_parent, ParentAddr::Source(_)));
        }
    }

    #[test]
    fn duplicate_complaint_returns_current_parent() {
        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 3).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9300".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let mut nodes = Vec::new();
        for port in 9301u16..9307 {
            let resp = proto::call(
                c.addr(),
                &Request::Hello {
                    data_addr: format!("127.0.0.1:{port}").parse().unwrap(),
                },
                T,
            )
            .unwrap();
            let Response::Welcome { node, .. } = resp else { panic!() };
            nodes.push(node);
        }
        // Find a (child, thread, parent) relation where the parent is a
        // node (straight from the in-process matrix — no checkpoint).
        let (child, thread, failed) = {
            let st = c.state.lock();
            let mut found = None;
            'outer: for &n in &nodes {
                let pos = st.server.matrix().position_of(n).unwrap();
                for (t, holder) in st.server.matrix().parents_of_position(pos) {
                    if let Holder::Node(p) = holder {
                        found = Some((n, t, p));
                        break 'outer;
                    }
                }
            }
            found.expect("with six members some thread has a node parent")
        };
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child, failed_parent: Some(failed), thread },
            T,
        )
        .unwrap();
        let Response::Redirect { new_parent: first, .. } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_ne!(first.node(), Some(failed));
        assert_eq!(c.repairs(), 1);
        // A duplicate complaint against the already-spliced parent (e.g.
        // from a retrying child whose first response was lost) must not
        // trigger a second repair, and must name the child's *current*
        // parent on that thread.
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child, failed_parent: Some(failed), thread },
            T,
        )
        .unwrap();
        let Response::Redirect { thread: t2, new_parent: second } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_eq!(t2, thread);
        assert_eq!(c.repairs(), 1, "duplicate complaint must not re-repair");
        assert_ne!(second.node(), Some(failed));
        let expected = c.state.lock().current_parent(child, thread).unwrap();
        assert_eq!(second, expected);
    }

    #[test]
    fn traced_coordinator_records_connection_lifecycle() {
        use curtain_telemetry::MemorySink;

        let sink = MemorySink::new();
        let c = Coordinator::start_traced(
            OverlayConfig::new(4, 2),
            11,
            SharedRecorder::wall_clock(sink.clone()),
        )
        .unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9200".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:9201".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, .. } = resp else { panic!() };
        proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();

        let events = sink.events();
        // Overlay-level Hello/GoodBye plus net-level connect/disconnect,
        // all wall-stamped (after 2020-01-01 in unix-ms terms).
        assert!(events.iter().all(|(at, _)| *at > 1_577_836_800_000));
        let kinds: Vec<&str> = events.iter().map(|(_, e)| e.kind()).collect();
        assert!(kinds.contains(&"hello"));
        assert!(kinds.contains(&"peer_connect"));
        assert!(kinds.contains(&"good_bye"));
        assert!(kinds.contains(&"peer_disconnect"));
        assert_eq!(sink.metrics().snapshot().gauges["coordinator_members"], 0.0);
    }

    #[test]
    fn goodbye_removes_member() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9100".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:9101".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, .. } = resp else { panic!() };
        assert_eq!(c.members(), 1);
        let resp = proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(c.members(), 0);
        // Double good-bye is an error, not a crash.
        let resp = proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
    }
}
