//! The coordinator: the paper's server-side matrix behind a TCP port.
//!
//! The matrix `M` is durable when the coordinator is started with a
//! [`WalOptions`]: every mutation (source registration, hello, good-bye,
//! splice, completion, resync) is appended to a write-ahead log before the
//! response leaves, and [`Coordinator::recover`] replays checkpoint + WAL
//! to resurrect the exact state after a crash. When the WAL itself is
//! lost, the resync protocol rebuilds `M` from the peers: an "unknown
//! child" complaint response makes the peer send [`Request::Resync`] with
//! its thread→parent view, and the coordinator re-inserts the row.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use curtain_overlay::snapshot::RowSnapshot;
use curtain_overlay::{CurtainServer, NodeId, NodeStatus, OverlayConfig, ThreadId};
use curtain_telemetry::trace::COORDINATOR_NODE;
use curtain_telemetry::{Event, SharedRecorder, TraceContext};
use parking_lot::{Condvar, Mutex};

use crate::core::backoff::Backoff;
use crate::core::coordinator::{ControlCore, CoreOutcome, Mutation, SourceInfo};
use crate::framing;
use crate::proto::{self, Request, Response};
use crate::wal::{Wal, WalOptions, WalRecord, WalSourceInfo, WalStore};

/// Committed-but-recent WAL records kept in memory so a tailing standby
/// can catch up without a second log reader.
const TAIL_RETAIN: usize = 1024;
/// How long a connection handler waits for its mutation's batch to fsync
/// before giving up on durability for that response.
const COMMIT_WAIT: Duration = Duration::from_secs(10);
/// Base backoff after a failed compaction (doubles per failure, capped).
const COMPACT_BACKOFF_BASE_MS: u64 = 100;
/// Per-member connect timeout for the proactive resync sweep. Short on
/// purpose: a sweep that hangs on one slow peer delays nudging the rest.
const SWEEP_PROBE_TIMEOUT: Duration = Duration::from_millis(400);

/// One parked operation on the commit queue.
enum CommitOp {
    /// A mutation record awaiting its batch fsync.
    Append(u64, WalRecord),
    /// A threshold-crossing compaction with its pre-built checkpoint.
    Compact(WalRecord),
}

/// Mutable commit-path state, guarded by [`CommitShared::inner`].
///
/// Lock order is `State` → `CommitInner`, everywhere: handlers hold the
/// state lock when they enqueue, the committer never touches `State`.
struct CommitInner {
    /// The log. `None` while the committer holds it for batch I/O (so
    /// appenders only ever block on the queue push, never on fsync) or
    /// when the coordinator runs without a WAL.
    wal: Option<Box<dyn WalStore>>,
    /// Whether a WAL was configured at all (stays `true` while the
    /// committer has temporarily taken the handle out).
    enabled: bool,
    /// Group commit (committer thread + one fsync per batch) vs inline
    /// per-mutation append+fsync.
    group: bool,
    /// Degraded coordinators refuse mutations instead of serving from
    /// memory.
    strict: bool,
    /// Parked operations, drained by the committer in arrival order.
    queue: Vec<CommitOp>,
    /// Sequence number of the last admitted (not necessarily durable)
    /// mutation.
    appended_seq: u64,
    /// Sequence number of the last fsynced mutation.
    durable_seq: u64,
    /// Sticky: a WAL append/fsync failed and the log can no longer be
    /// trusted. Appends stop; the coordinator serves from memory (or
    /// refuses, under `strict`).
    degraded: bool,
    /// Shutdown latch for the committer and any durability waiters.
    stop: bool,
    /// A compaction is already queued or running — do not enqueue
    /// another for the same threshold crossing.
    compact_inflight: bool,
    /// Consecutive compaction failures (drives the backoff below).
    compact_failures: u32,
    /// No compaction attempts before this instant (set after a failure
    /// so a sick disk is not hammered with full-log rewrites).
    compact_backoff_until: Option<Instant>,
    /// Ring of the most recent durable records, for `Request::WalTail`.
    tail: VecDeque<(u64, WalRecord)>,
}

impl CommitInner {
    /// Enters (sticky) degraded mode, announcing it exactly once.
    fn enter_degraded(&mut self, recorder: &SharedRecorder, reason: &str) {
        recorder.counter("wal_errors", 1);
        if !self.degraded {
            self.degraded = true;
            recorder.record(&Event::CoordinatorDegraded { reason: reason.to_string() });
            recorder.gauge("coordinator_durable", 0.0);
        }
    }

    /// Whether a compaction should be attempted now: over threshold, none
    /// in flight, and past any failure backoff.
    fn wants_compaction(&self) -> bool {
        if self.compact_inflight {
            return false;
        }
        if self.compact_backoff_until.is_some_and(|until| Instant::now() < until) {
            return false;
        }
        self.wal.as_ref().is_some_and(|w| w.needs_compaction())
    }

    /// Books a compaction outcome: success resets the backoff, failure
    /// doubles it. Either way the in-flight latch opens so the *next*
    /// threshold crossing (or backoff expiry) may try again — exactly
    /// once, instead of once per mutation.
    fn note_compact_result(&mut self, ok: bool, recorder: &SharedRecorder) {
        self.compact_inflight = false;
        if ok {
            self.compact_failures = 0;
            self.compact_backoff_until = None;
        } else {
            self.compact_failures += 1;
            // Shared doubling-with-cap schedule; same curve as the old
            // inline shift (100ms · 2^n, capped at 100ms · 2^6).
            let schedule = Backoff::new(
                Duration::from_millis(COMPACT_BACKOFF_BASE_MS),
                Duration::from_millis(COMPACT_BACKOFF_BASE_MS << 6),
            );
            let backoff = schedule.base_delay(self.compact_failures);
            self.compact_backoff_until = Some(Instant::now() + backoff);
            recorder.counter("wal_compact_errors", 1);
        }
    }

    /// Retains `(seq, record)` in the tail ring for standby shipping.
    fn push_tail(&mut self, seq: u64, record: WalRecord) {
        self.tail.push_back((seq, record));
        while self.tail.len() > TAIL_RETAIN {
            self.tail.pop_front();
        }
    }
}

/// The commit queue shared by request handlers (producers), the committer
/// thread (consumer), and durability waiters.
struct CommitShared {
    inner: Mutex<CommitInner>,
    cond: Condvar,
    recorder: SharedRecorder,
}

/// How a waited-on mutation resolved.
enum DurableWait {
    /// Its batch fsynced.
    Durable,
    /// The WAL degraded (or the coordinator stopped) before the fsync.
    Degraded,
    /// [`COMMIT_WAIT`] elapsed — the disk is wedged but not yet erroring.
    TimedOut,
}

impl CommitShared {
    fn new(
        wal: Option<Box<dyn WalStore>>,
        group: bool,
        strict: bool,
        recorder: SharedRecorder,
    ) -> Arc<Self> {
        let enabled = wal.is_some();
        Arc::new(CommitShared {
            inner: Mutex::new(CommitInner {
                wal,
                enabled,
                group,
                strict,
                queue: Vec::new(),
                appended_seq: 0,
                durable_seq: 0,
                degraded: false,
                stop: false,
                compact_inflight: false,
                compact_failures: 0,
                compact_backoff_until: None,
                tail: VecDeque::new(),
            }),
            cond: Condvar::new(),
            recorder,
        })
    }

    /// Blocks until `seq` is durable, the WAL degrades, or `timeout`.
    fn wait_durable(&self, seq: u64, timeout: Duration) -> DurableWait {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if inner.durable_seq >= seq {
                return DurableWait::Durable;
            }
            if inner.degraded || inner.stop {
                return DurableWait::Degraded;
            }
            if self.cond.wait_until(&mut inner, deadline).timed_out() {
                return if inner.durable_seq >= seq {
                    DurableWait::Durable
                } else {
                    DurableWait::TimedOut
                };
            }
        }
    }

    /// Whether this coordinator refuses non-durable mutations.
    fn strict(&self) -> bool {
        self.inner.lock().strict
    }
}

/// How long the committer lingers after the first parked mutation before
/// paying the fsync, so concurrently-admitted mutations coalesce into one
/// batch instead of alternating single-record syncs (the classic group-
/// commit leader wait). Well under any real fsync cost, so the window
/// only ever *saves* syncs.
const COMMIT_COALESCE: Duration = Duration::from_micros(500);

/// The committer: drains the queue, appends the batch with the WAL taken
/// *out* of the lock (so producers never block on disk), fsyncs once,
/// then publishes durability and wakes the waiters.
fn committer_loop(shared: &Arc<CommitShared>) {
    loop {
        let ops = {
            let mut inner = shared.inner.lock();
            while inner.queue.is_empty() && !inner.stop {
                shared.cond.wait(&mut inner);
            }
            if inner.queue.is_empty() {
                return; // stop requested and fully drained
            }
            // Accumulation window: producers notifying during the wait
            // just re-enter it; the batch closes at the deadline (or
            // immediately on stop, where latency no longer matters).
            let window = Instant::now() + COMMIT_COALESCE;
            while !inner.stop && !shared.cond.wait_until(&mut inner, window).timed_out() {}
            std::mem::take(&mut inner.queue)
        };
        let Some(mut wal) = shared.inner.lock().wal.take() else {
            return; // unreachable: only this thread takes the handle
        };
        let started = Instant::now();
        let mut appended: Vec<(u64, WalRecord)> = Vec::new();
        let mut compact_attempted = false;
        let mut compact_ok = false;
        let mut failed = false;
        // Strictly in queue order: a checkpoint built after mutation N is
        // enqueued after N's append, so replay order stays consistent
        // whether or not the compaction between them succeeds.
        for op in ops {
            match op {
                CommitOp::Append(seq, record) => {
                    if !failed {
                        failed = wal.append(&record).is_err();
                    }
                    appended.push((seq, record));
                }
                CommitOp::Compact(checkpoint) => {
                    compact_attempted = true;
                    if !failed {
                        compact_ok = wal.compact(&checkpoint).is_ok();
                    }
                }
            }
        }
        if !failed && !appended.is_empty() {
            failed = wal.sync().is_err();
        }
        let sync_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let batch = appended.len() as u64;
        let (bytes, records) = (wal.bytes(), wal.records());
        {
            let mut inner = shared.inner.lock();
            if compact_attempted {
                inner.note_compact_result(compact_ok, &shared.recorder);
            }
            if failed {
                inner.enter_degraded(&shared.recorder, "wal append/sync failed");
            } else if let Some(&(last, _)) = appended.last() {
                inner.durable_seq = last;
                for (seq, record) in appended {
                    inner.push_tail(seq, record);
                }
                shared.recorder.record(&Event::BatchCommit { records: batch, sync_us });
                shared.recorder.histogram("commit_latency_ms", sync_us as f64 / 1000.0);
                shared.recorder.histogram("commit_batch_records", batch as f64);
                shared.recorder.gauge("wal_bytes", bytes as f64);
                shared.recorder.gauge("wal_records", records as f64);
            }
            inner.wal = Some(wal);
        }
        shared.cond.notify_all();
    }
}

/// `SourceInfo` ⇄ `WalSourceInfo` (same fields; the WAL type is pinned
/// to `SocketAddr` and carries the serde impls).
fn wal_source_of(info: SourceInfo<SocketAddr>) -> WalSourceInfo {
    WalSourceInfo {
        addr: info.addr,
        generations: info.generations,
        generation_size: info.generation_size,
        packet_len: info.packet_len,
        content_len: info.content_len,
    }
}

fn core_source_of(info: WalSourceInfo) -> SourceInfo<SocketAddr> {
    SourceInfo {
        addr: info.addr,
        generations: info.generations,
        generation_size: info.generation_size,
        packet_len: info.packet_len,
        content_len: info.content_len,
    }
}

/// Maps a core mutation onto the WAL record that persists it.
fn wal_record_of(mutation: Mutation<SocketAddr>) -> WalRecord {
    match mutation {
        Mutation::RegisterSource(info) => WalRecord::RegisterSource(wal_source_of(info)),
        Mutation::Hello { node, position, threads, data_addr } => {
            WalRecord::Hello { node, position, threads, data_addr }
        }
        Mutation::Resync { node, threads, data_addr } => {
            WalRecord::Resync { node, threads, data_addr }
        }
        Mutation::Goodbye { node } => WalRecord::Goodbye { node },
        Mutation::Splice { node } => WalRecord::Splice { node },
        Mutation::Completed { node } => WalRecord::Completed { node },
    }
}

/// The TCP driver around the sans-io [`ControlCore`]: the core decides,
/// this wraps its decisions in the WAL/commit machinery and the strict-
/// mode refusals durability brings along.
struct State {
    core: ControlCore<SocketAddr>,
    recorder: SharedRecorder,
    commit: Arc<CommitShared>,
    /// Sequence number the in-flight request must wait on before its
    /// response leaves (set by [`State::log`] in group mode, collected by
    /// [`State::handle`]).
    pending_wait: Option<u64>,
}

impl State {
    /// Admits one mutation to the WAL.
    ///
    /// Group mode parks it on the commit queue and records the sequence
    /// number the handler must wait on ([`State::pending_wait`]) — the
    /// committer fsyncs the whole admitted batch at once. Per-mutation
    /// mode appends and fsyncs inline, as the original coordinator did.
    ///
    /// WAL I/O failures must not take the control plane down
    /// mid-broadcast: the coordinator enters (sticky) degraded mode —
    /// announced by `CoordinatorDegraded`, visible as `"durable": false`
    /// in `/health` — stops appending, and keeps serving from memory,
    /// unless `strict` makes [`State::handle`] refuse mutations instead.
    fn log(&mut self, record: &WalRecord) {
        let commit = Arc::clone(&self.commit);
        let mut inner = commit.inner.lock();
        if !inner.enabled || inner.degraded {
            return;
        }
        inner.appended_seq += 1;
        let seq = inner.appended_seq;
        if inner.group {
            inner.queue.push(CommitOp::Append(seq, record.clone()));
            self.maybe_enqueue_compaction(&mut inner);
            drop(inner);
            commit.cond.notify_all();
            self.pending_wait = Some(seq);
            return;
        }
        let result = {
            let wal = inner.wal.as_mut().expect("per-mutation mode never takes the wal out");
            wal.append(record).and_then(|()| wal.sync())
        };
        match result {
            Ok(()) => {
                inner.durable_seq = seq;
                inner.push_tail(seq, record.clone());
                self.maybe_compact_inline(&mut inner);
                let (bytes, records) = {
                    let wal = inner.wal.as_ref().expect("wal present");
                    (wal.bytes(), wal.records())
                };
                drop(inner);
                self.recorder.gauge("wal_bytes", bytes as f64);
                self.recorder.gauge("wal_records", records as f64);
            }
            Err(_) => inner.enter_degraded(&self.recorder, "wal append/sync failed"),
        }
    }

    /// Queues a compaction if the log crossed its threshold (group mode).
    /// At most one per crossing: `compact_inflight` latches until the
    /// committer books the result.
    fn maybe_enqueue_compaction(&self, inner: &mut CommitInner) {
        if !inner.wants_compaction() {
            return;
        }
        match self.checkpoint_record() {
            Ok(ck) => {
                inner.queue.push(CommitOp::Compact(ck));
                inner.compact_inflight = true;
                self.recorder.counter("wal_compact_attempts", 1);
            }
            Err(_) => self.recorder.counter("wal_errors", 1),
        }
    }

    /// Compacts inline if due (per-mutation mode), with the same
    /// once-per-crossing-plus-backoff policy as the queued path.
    fn maybe_compact_inline(&self, inner: &mut CommitInner) {
        if !inner.wants_compaction() {
            return;
        }
        let Ok(ck) = self.checkpoint_record() else {
            self.recorder.counter("wal_errors", 1);
            return;
        };
        self.recorder.counter("wal_compact_attempts", 1);
        let ok = inner.wal.as_mut().expect("wal present").compact(&ck).is_ok();
        inner.note_compact_result(ok, &self.recorder);
    }

    /// The full state as one WAL record (the compaction payload). The
    /// embedded epoch is the id-allocation high-water mark, which fences
    /// post-recovery grants against clock steps.
    fn checkpoint_record(&self) -> Result<WalRecord, String> {
        let server = self.core.server().to_json().map_err(|e| e.to_string())?;
        let mut addrs: Vec<(u64, SocketAddr)> =
            self.core.addrs().iter().map(|(n, a)| (n.0, *a)).collect();
        addrs.sort_unstable_by_key(|(n, _)| *n);
        let mut completed: Vec<u64> = self.core.completed().iter().map(|n| n.0).collect();
        completed.sort_unstable();
        Ok(WalRecord::Checkpoint {
            server,
            addrs,
            source: self.core.source().copied().map(wal_source_of),
            completed,
            epoch: self.core.server().next_node_id(),
        })
    }

    /// Splices `failed` out via the core and persists the resulting
    /// records. Shared by the complaint path (inside dispatch) and the
    /// proactive resync sweep (which calls this directly).
    fn splice_out(&mut self, failed: NodeId, ctx: Option<TraceContext>) {
        for mutation in self.core.splice_out(failed, ctx) {
            self.log(&wal_record_of(mutation));
        }
    }

    /// Whether this request would mutate `M` (and therefore needs WAL
    /// durability). Complaints count: answering one may splice.
    fn is_mutation(request: &Request) -> bool {
        matches!(
            request,
            Request::RegisterSource { .. }
                | Request::Hello { .. }
                | Request::Goodbye { .. }
                | Request::Complaint { .. }
                | Request::Completed { .. }
                | Request::Resync { .. }
        )
    }

    /// Whether strict mode is refusing mutations right now.
    fn refuses_mutations(&self) -> bool {
        let inner = self.commit.inner.lock();
        inner.enabled && inner.strict && inner.degraded
    }

    fn is_degraded(&self) -> bool {
        self.commit.inner.lock().degraded
    }

    /// Handles one request. The second return is the commit sequence the
    /// connection handler must wait on (group mode) before the response
    /// may leave — waiting happens *outside* the state lock.
    fn handle(&mut self, request: Request) -> (Response, Option<u64>) {
        if self.refuses_mutations() && Self::is_mutation(&request) {
            return (unavailable(), None);
        }
        let was_degraded = self.is_degraded();
        self.pending_wait = None;
        let response = match self.core.dispatch(request) {
            CoreOutcome::Done { response, effects } => {
                for mutation in effects {
                    self.log(&wal_record_of(mutation));
                }
                response
            }
            CoreOutcome::Driver(request) => self.answer_durability(request),
        };
        let wait = self.pending_wait.take();
        if self.commit.strict() && !was_degraded && self.is_degraded() {
            // The WAL failed *during this request* (per-mutation mode):
            // the memory mutation happened but is not durable, and strict
            // mode refuses to pretend otherwise.
            return (unavailable(), None);
        }
        (response, wait)
    }

    /// Answers the durability verbs the core hands back: they read the
    /// commit queue's sequence numbers and tail ring, which only this
    /// driver has.
    fn answer_durability(&self, request: Request) -> Response {
        match request {
            Request::SnapshotFetch => match self.checkpoint_record() {
                Ok(ck) => {
                    // The snapshot covers the full *memory* state, i.e.
                    // everything up to the last admitted mutation — tailing
                    // after this seq never replays a covered record.
                    let seq = self.commit.inner.lock().appended_seq;
                    Response::Snapshot { seq, record: ck.to_json() }
                }
                Err(reason) => Response::Error { reason },
            },
            Request::WalTail { after } => {
                let inner = self.commit.inner.lock();
                if !inner.enabled {
                    return Response::Error { reason: "coordinator has no wal".into() };
                }
                let durable = inner.durable_seq;
                if after > inner.appended_seq {
                    // The standby is ahead of this incarnation's history
                    // (we restarted and renumbered) — only a fresh
                    // snapshot can re-anchor it.
                    return Response::Error { reason: "snapshot required".into() };
                }
                if after >= durable {
                    // Nothing durable past the cursor yet (a batch may
                    // still be committing) — an empty segment, not an
                    // error: the standby just polls again.
                    return Response::WalSegment { last: after, records: vec![] };
                }
                match inner.tail.front().map(|(s, _)| *s) {
                    // An empty ring with history behind it means the
                    // records the standby needs were never retained.
                    None => Response::Error { reason: "snapshot required".into() },
                    Some(first) if after + 1 < first => {
                        Response::Error { reason: "snapshot required".into() }
                    }
                    Some(_) => {
                        let records = inner
                            .tail
                            .iter()
                            .filter(|(s, _)| *s > after)
                            .map(|(_, r)| r.to_json())
                            .collect::<Vec<_>>();
                        let last = inner.tail.back().map_or(after, |(s, _)| *s);
                        Response::WalSegment { last, records }
                    }
                }
            }
            other => unreachable!("core handles {other:?} itself"),
        }
    }
}

/// The strict-mode refusal all degraded mutation paths share.
fn unavailable() -> Response {
    Response::Unavailable {
        reason: "wal degraded: this coordinator refuses non-durable mutations".into(),
    }
}

/// A running coordinator bound to a local TCP port.
///
/// The accept loop runs on a background thread; each control connection is
/// one request/response exchange. Drop or [`Coordinator::shutdown`] stops
/// it.
pub struct Coordinator {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<State>>,
    commit: Arc<CommitShared>,
    handle: Option<JoinHandle<()>>,
    committer: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `127.0.0.1:0` and starts serving the control protocol.
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start(config: OverlayConfig) -> io::Result<Self> {
        Self::start_seeded(config, 0xC0DE)
    }

    /// Like [`Coordinator::start`] with an explicit RNG seed for the thread
    /// assignments (tests).
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start_seeded(config: OverlayConfig, seed: u64) -> io::Result<Self> {
        Self::start_traced(config, seed, SharedRecorder::null())
    }

    /// Like [`Coordinator::start_seeded`] with a telemetry recorder
    /// (typically [`SharedRecorder::wall_clock`] — timestamps are unix
    /// milliseconds out here, not sim-ticks). The recorder sees the full
    /// protocol lifecycle: `Hello`/`GoodBye`/`Complain`/`Splice`/
    /// `RepairComplete`/`ThreadDefect` from the embedded
    /// [`CurtainServer`], plus `PeerConnect`/`PeerDisconnect` and a
    /// `coordinator_members` gauge from the connection handlers.
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start_traced(
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let core = ControlCore::new(config, seed, recorder.clone()).map_err(io::Error::other)?;
        let commit = CommitShared::new(None, false, false, recorder.clone());
        let state = State { core, recorder, commit, pending_wait: None };
        Self::serve(TcpListener::bind("127.0.0.1:0")?, state)
    }

    /// Like [`Coordinator::start_traced`], but every matrix mutation is
    /// made durable in a write-ahead log first (see [`crate::wal`]) so a
    /// crashed coordinator can be resurrected with
    /// [`Coordinator::recover`]. A fresh start truncates any existing log
    /// at `wal.path` — use `recover` to continue one. Commit batching and
    /// strict mode follow `wal.group_commit` / `wal.strict`.
    ///
    /// # Errors
    ///
    /// Propagates bind, configuration, and WAL-creation errors.
    pub fn start_durable(
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
        wal: &WalOptions,
    ) -> io::Result<Self> {
        let store: Box<dyn WalStore> = Box::new(Wal::create(&wal.path, wal.compact_threshold)?);
        Self::start_durable_with_store(config, seed, recorder, store, wal.group_commit, wal.strict)
    }

    /// [`Coordinator::start_durable`] with an explicit [`WalStore`] — the
    /// fault-injection and latency-simulation seam (tests wrap a [`Wal`]
    /// in a store that fails or sleeps on demand).
    ///
    /// # Errors
    ///
    /// Propagates bind and configuration errors.
    pub fn start_durable_with_store(
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
        store: Box<dyn WalStore>,
        group_commit: bool,
        strict: bool,
    ) -> io::Result<Self> {
        let core = ControlCore::new(config, seed, recorder.clone()).map_err(io::Error::other)?;
        let commit = CommitShared::new(Some(store), group_commit, strict, recorder.clone());
        let state = State { core, recorder, commit, pending_wait: None };
        Self::serve(TcpListener::bind("127.0.0.1:0")?, state)
    }

    /// Replays the WAL at `path` (checkpoint + tail) and serves the
    /// rebuilt matrix from a fresh port. The rebuilt `M` is asserted
    /// before serving: every row carries exactly `config.d` distinct
    /// threads, node ids are unique, and every member has a data-plane
    /// address (so every holder a redirect can name is dialable).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, and reports corrupt-state errors
    /// (`InvalidData`) when the replayed state violates the invariants.
    pub fn recover(path: impl AsRef<Path>, config: OverlayConfig) -> io::Result<Self> {
        Self::recover_traced(
            WalOptions::new(path.as_ref()),
            config,
            0xC0DE,
            SharedRecorder::null(),
        )
    }

    /// Pure id-fence arithmetic for post-recovery grant allocation:
    /// `max(wall-clock ms, max observed id + 1, persisted epoch + 1)`.
    ///
    /// Each leg covers a failure the others do not — `observed_next`
    /// (already "max id + 1" form) covers ids still present in the
    /// replayed `M`; `persisted_epoch` covers ids granted before the last
    /// checkpoint but spliced since (and survives a backwards-stepping
    /// clock); the wall clock covers grants that never reached any
    /// durable record at all (the amnesiac and failover cases).
    #[must_use]
    pub fn fenced_next_id(wall_ms: u64, observed_next: u64, persisted_epoch: u64) -> u64 {
        wall_ms.max(observed_next).max(persisted_epoch.saturating_add(1))
    }

    /// [`Coordinator::recover`] with explicit seed and telemetry; emits
    /// `CoordinatorRecovered{replayed, resynced}` once serving resumes.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::recover`].
    pub fn recover_traced(
        wal: WalOptions,
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        Self::recover_on(listener, wal, config, seed, recorder, false)
    }

    /// Recovers *at a fixed address* — the kill-and-restart case, where
    /// surviving peers keep complaining at the old coordinator address
    /// and must find the recovered one there. Binding retries briefly:
    /// control connections closed by the dying server can linger in
    /// TIME_WAIT on the listening port.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::recover`]; also fails if `addr` stays
    /// unbindable for ~5 s.
    pub fn recover_at(
        addr: SocketAddr,
        wal: WalOptions,
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let listener = Self::bind_retrying(addr)?;
        Self::recover_on(listener, wal, config, seed, recorder, false)
    }

    /// [`Coordinator::recover_at`] with the id-allocation fence applied —
    /// the failover case: a promoting standby replays its *shipped* WAL,
    /// which may be missing grants the primary admitted but never
    /// shipped, so `next_id` is additionally bumped past
    /// [`Coordinator::fenced_next_id`] to keep fresh grants from
    /// colliding with un-shipped ones still alive in the overlay.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::recover_at`].
    pub fn promote_at(
        addr: SocketAddr,
        wal: WalOptions,
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let listener = Self::bind_retrying(addr)?;
        Self::recover_on(listener, wal, config, seed, recorder, true)
    }

    fn bind_retrying(addr: SocketAddr) -> io::Result<TcpListener> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match TcpListener::bind(addr) {
                Ok(l) => return Ok(l),
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn recover_on(
        listener: TcpListener,
        wal: WalOptions,
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
        fence: bool,
    ) -> io::Result<Self> {
        // Replay is its own root span: nothing upstream caused it (the
        // crash did), and stitched reports should show its duration next
        // to the repair episodes it races against.
        let replay_ctx = TraceContext::root();
        recorder.record(&Event::SpanStart {
            trace: replay_ctx.trace,
            span: replay_ctx.span,
            parent: curtain_telemetry::trace::NO_PARENT,
            name: "wal_replay".to_string(),
            node: COORDINATOR_NODE,
        });
        let replay = replay_wal(wal, config, seed, recorder.clone(), fence);
        recorder.record(&Event::SpanEnd {
            trace: replay_ctx.trace,
            span: replay_ctx.span,
            ok: replay.is_ok(),
        });
        let (state, replayed, resynced) = replay?;
        recorder.record(&Event::CoordinatorRecovered { replayed, resynced });
        recorder.gauge("coordinator_members", state.core.server().matrix().len() as f64);
        {
            let inner = state.commit.inner.lock();
            if let Some(w) = inner.wal.as_ref() {
                recorder.gauge("wal_bytes", w.bytes() as f64);
                recorder.gauge("wal_records", w.records() as f64);
            }
        }
        Self::serve(listener, state)
    }

    fn serve(listener: TcpListener, state: State) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let commit = Arc::clone(&state.commit);
        let state = Arc::new(Mutex::new(state));
        {
            // Publish the members gauge before the first connection so a
            // scrape of a freshly started coordinator sees an explicit zero
            // rather than an empty exposition.
            let st = state.lock();
            st.recorder.gauge("coordinator_members", st.core.server().matrix().len() as f64);
        }
        let committer = {
            let inner = commit.inner.lock();
            inner.enabled && inner.group
        }
        .then(|| {
            let commit = Arc::clone(&commit);
            std::thread::spawn(move || committer_loop(&commit))
        });
        let handle = {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            let commit = Arc::clone(&commit);
            std::thread::spawn(move || accept_loop(&listener, &stop, &state, &commit))
        };
        Ok(Coordinator { addr, stop, state, commit, handle: Some(handle), committer })
    }

    /// The control-plane address peers dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current member count.
    #[must_use]
    pub fn members(&self) -> usize {
        self.state.lock().core.server().matrix().len()
    }

    /// Peers that reported full decode.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.state.lock().core.completed().len()
    }

    /// Repairs executed so far.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.state.lock().core.server().metrics().repairs
    }

    /// The matrix rows — `(node id, threads)` in matrix order — a
    /// serde-free view of `M` for assertions and operator tooling.
    #[must_use]
    pub fn matrix_rows(&self) -> Vec<(u64, Vec<ThreadId>)> {
        self.state
            .lock()
            .core
            .server()
            .matrix()
            .rows()
            .iter()
            .map(|r| (r.node().0, r.threads().to_vec()))
            .collect()
    }

    /// One-line JSON health document for the `/health` endpoint: matrix
    /// size, defect totals, completion and repair counts, and WAL
    /// occupancy. Built with the telemetry crate's own writer so the
    /// shape matches the rest of the observability surface.
    #[must_use]
    pub fn health_json(&self) -> String {
        health_json_of(&self.state)
    }

    /// A `'static` closure producing [`Coordinator::health_json`] — the
    /// callback shape [`curtain_telemetry::ExposeServer::bind`] wants.
    pub fn health_handle(&self) -> impl Fn() -> String + Send + Sync + 'static {
        let state = Arc::clone(&self.state);
        move || health_json_of(&state)
    }

    /// Checkpoint of the coordinator's overlay state as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors.
    pub fn checkpoint_json(&self) -> io::Result<String> {
        self.state.lock().core.server().to_json().map_err(io::Error::other)
    }

    /// Proactive resync sweep (blocking): probes every known
    /// `data_addr`, nudging reachable peers to re-announce via `Resync`
    /// and splicing out peers that actively refuse the connection.
    /// After an amnesiac restart or failover this repopulates the
    /// matrix without waiting for the complaint path to discover each
    /// hole one repair at a time.
    ///
    /// Probes run without the state lock (one slow peer must not stall
    /// admissions); membership is re-checked under the lock before any
    /// splice so a peer that re-announced mid-sweep is kept.
    pub fn resync_sweep(&self) -> SweepReport {
        resync_sweep(&self.state)
    }

    /// [`Coordinator::resync_sweep`] on a background thread — the shape
    /// recovery paths want: start serving immediately, let the sweep
    /// fill the matrix in parallel with organic resyncs.
    pub fn spawn_resync_sweep(&self) -> JoinHandle<SweepReport> {
        let state = Arc::clone(&self.state);
        std::thread::spawn(move || resync_sweep(&state))
    }

    /// Stops the accept loop and joins the thread; a durable coordinator
    /// additionally collapses its WAL to a single checkpoint record (so
    /// the next [`Coordinator::recover`] replays O(1) records).
    pub fn shutdown(mut self) {
        self.stop_now();
        let st = self.state.lock();
        let ck = st.checkpoint_record();
        let mut inner = st.commit.inner.lock();
        if inner.enabled && !inner.degraded {
            if let (Ok(ck), Some(wal)) = (ck, inner.wal.as_mut()) {
                let _ = wal.compact(&ck);
            }
        }
    }

    /// Kills the coordinator abruptly — the crash under test: the accept
    /// loop stops and the WAL is left exactly as the last fsync left it
    /// (no final checkpoint, possibly mid-epoch). Recovery must cope.
    pub fn kill(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
            // Drain the committer after the accept loop: no new mutations
            // can arrive, so once the queue empties every admitted batch
            // has been fsynced (or the coordinator is degraded).
            if let Some(c) = self.committer.take() {
                {
                    let mut inner = self.commit.inner.lock();
                    inner.stop = true;
                }
                self.commit.cond.notify_all();
                let _ = c.join();
            }
            let st = self.state.lock();
            st.recorder.record(&Event::CoordinatorDown {
                members: st.core.server().matrix().len() as u64,
            });
            let _ = st.recorder.flush();
        }
    }
}

/// Renders the coordinator's health document (shared by
/// [`Coordinator::health_json`] and the `'static` handle the expose
/// server holds).
fn health_json_of(state: &Mutex<State>) -> String {
    use curtain_telemetry::json::JsonValue;
    use std::collections::BTreeMap;
    let st = state.lock();
    let metrics = st.core.server().metrics();
    let mut doc = BTreeMap::new();
    doc.insert("role".to_string(), JsonValue::Str("coordinator".to_string()));
    doc.insert("ok".to_string(), JsonValue::Bool(true));
    doc.insert("matrix_rows".to_string(), JsonValue::Int(st.core.server().matrix().len() as i64));
    let defect = curtain_overlay::defect::exact(st.core.server().matrix(), st.core.server().config().d);
    doc.insert("total_defect".to_string(), JsonValue::Int(defect.total_defect() as i64));
    doc.insert("completed".to_string(), JsonValue::Int(st.core.completed().len() as i64));
    doc.insert("repairs".to_string(), JsonValue::Int(metrics.repairs as i64));
    doc.insert("source_registered".to_string(), JsonValue::Bool(st.core.source().is_some()));
    let inner = st.commit.inner.lock();
    doc.insert("wal_enabled".to_string(), JsonValue::Bool(inner.enabled));
    // `durable` is the headline bit operators alert on: true only while
    // every acknowledged mutation is known fsynced. A WAL-less
    // coordinator is *explicitly* not durable; a degraded one has lost
    // the guarantee mid-run.
    doc.insert("durable".to_string(), JsonValue::Bool(inner.enabled && !inner.degraded));
    let mode = if !inner.enabled {
        "none"
    } else if inner.group {
        "group"
    } else {
        "per_mutation"
    };
    doc.insert("commit_mode".to_string(), JsonValue::Str(mode.to_string()));
    if let Some(wal) = inner.wal.as_ref() {
        doc.insert("wal_bytes".to_string(), JsonValue::Int(wal.bytes() as i64));
        doc.insert("wal_records".to_string(), JsonValue::Int(wal.records() as i64));
    }
    drop(inner);
    JsonValue::Object(doc).render()
}

/// What one proactive resync sweep did: peers probed, peers nudged to
/// re-announce, and unreachable peers spliced out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// Members whose data address was probed.
    pub probed: usize,
    /// Probes that connected and carried a resync nudge.
    pub nudged: usize,
    /// Members that refused the connection and were spliced out.
    pub spliced: usize,
}

fn resync_sweep(state: &Mutex<State>) -> SweepReport {
    // Snapshot the member list first; probing under the state lock would
    // stall every admission behind the slowest peer's connect timeout.
    let members: Vec<(NodeId, SocketAddr)> = {
        let st = state.lock();
        st.core.addrs().iter().map(|(n, a)| (*n, *a)).collect()
    };
    let mut report = SweepReport { probed: 0, nudged: 0, spliced: 0 };
    for (node, addr) in members {
        report.probed += 1;
        match TcpStream::connect_timeout(&addr, SWEEP_PROBE_TIMEOUT) {
            Ok(stream) => {
                if framing::write_resync_nudge(&stream).is_ok() {
                    report.nudged += 1;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                let mut st = state.lock();
                // The peer may have re-announced (new address) or left
                // while we probed unlocked — only splice if the stale
                // address is still the one on file.
                if st.core.addrs().get(&node) == Some(&addr) {
                    st.splice_out(node, None);
                    report.spliced += 1;
                }
            }
            // Timeouts and odd errors are left to the complaint path:
            // a slow peer is not evidence of death.
            Err(_) => {}
        }
    }
    let st = state.lock();
    st.recorder.counter("sweep_probes", report.probed as u64);
    st.recorder.counter("sweep_nudged", report.nudged as u64);
    st.recorder.counter("sweep_spliced", report.spliced as u64);
    report
}

/// Rebuilds coordinator state from the WAL at `wal.path`, returning the
/// state plus `(records replayed, resync records among them)`.
///
/// Replay is pure data manipulation over a [`curtain_overlay::snapshot`]:
/// a checkpoint record resets the fold, each mutation record edits the
/// snapshot's row list, and the final snapshot goes through the public
/// `CurtainServer::restore` round trip — no RNG, no insert policy, no
/// re-derivation of decisions the dead coordinator already made.
fn replay_wal(
    wal: WalOptions,
    config: OverlayConfig,
    seed: u64,
    recorder: SharedRecorder,
    fence: bool,
) -> io::Result<(State, u64, u64)> {
    let corrupt = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let (group_commit, strict) = (wal.group_commit, wal.strict);
    let (records, wal) = Wal::open(&wal.path, wal.compact_threshold)?;
    let replayed = records.len() as u64;
    let mut resynced = 0u64;
    let mut persisted_epoch = 0u64;

    let empty = CurtainServer::new(config).map_err(io::Error::other)?;
    let mut snap = empty.snapshot();
    let mut addrs: HashMap<NodeId, SocketAddr> = HashMap::new();
    let mut source: Option<WalSourceInfo> = None;
    let mut completed: HashSet<NodeId> = HashSet::new();

    for record in records {
        match record {
            WalRecord::Checkpoint { server, addrs: a, source: s, completed: c, epoch } => {
                persisted_epoch = persisted_epoch.max(epoch);
                let restored = CurtainServer::from_json(&server)
                    .map_err(|e| corrupt(format!("bad checkpoint: {e}")))?;
                let ck = restored.config();
                if ck.k != config.k || ck.d != config.d {
                    return Err(corrupt(format!(
                        "checkpoint is for k={}, d={}, not k={}, d={}",
                        ck.k, ck.d, config.k, config.d
                    )));
                }
                snap = restored.snapshot();
                addrs = a.into_iter().map(|(n, ad)| (NodeId(n), ad)).collect();
                source = s;
                completed = c.into_iter().map(NodeId).collect();
            }
            WalRecord::RegisterSource(info) => source = Some(info),
            WalRecord::Hello { node, position, threads, data_addr } => {
                let pos = usize::try_from(position).map_err(io::Error::other)?;
                if pos > snap.matrix.rows.len() {
                    return Err(corrupt(format!(
                        "hello for node {node} at position {pos} of {}",
                        snap.matrix.rows.len()
                    )));
                }
                snap.matrix.rows.insert(
                    pos,
                    RowSnapshot { node: NodeId(node), threads, status: NodeStatus::Working },
                );
                snap.next_id = snap.next_id.max(node + 1);
                addrs.insert(NodeId(node), data_addr);
            }
            WalRecord::Resync { node, threads, data_addr } => {
                resynced += 1;
                snap.matrix.rows.push(RowSnapshot {
                    node: NodeId(node),
                    threads,
                    status: NodeStatus::Working,
                });
                snap.next_id = snap.next_id.max(node + 1);
                addrs.insert(NodeId(node), data_addr);
            }
            WalRecord::Goodbye { node } | WalRecord::Splice { node } => {
                let node = NodeId(node);
                snap.matrix.rows.retain(|r| r.node != node);
                addrs.remove(&node);
                completed.remove(&node);
            }
            WalRecord::Completed { node } => {
                completed.insert(NodeId(node));
            }
        }
    }

    // The checkpointed epoch is an id-allocation high-water mark: ids
    // granted before the checkpoint but spliced since leave no trace in
    // the replayed matrix, yet may still be alive in a partitioned
    // peer's view. Never allocate below it.
    snap.next_id = snap.next_id.max(persisted_epoch);

    // A lost WAL (zero records) means every id the dead incarnation ever
    // granted is unknown — if allocation restarted at 0, fresh grants
    // would collide with survivors' old ids and poison the resync
    // protocol (readmit would reject the rightful owner as "already a
    // member"). The same hole exists on failover: a promoting standby
    // replays only what was *shipped*, not what the primary admitted.
    // Fence allocation in both cases — wall clock alone is not enough
    // (clocks step backwards), so the fence is the max of all three
    // signals (see `Coordinator::fenced_next_id`).
    if fence || replayed == 0 {
        snap.next_id = Coordinator::fenced_next_id(wall_clock_ms(), snap.next_id, persisted_epoch);
    }

    // Assert the rebuilt M *before* restore (whose internal inserts would
    // panic on violations): unique ids, exactly-d distinct in-range
    // threads per row, and a dialable address per member.
    let mut seen = HashSet::new();
    for row in &snap.matrix.rows {
        if !seen.insert(row.node) {
            return Err(corrupt(format!("duplicate row for node {}", row.node)));
        }
        let mut threads = row.threads.clone();
        threads.sort_unstable();
        threads.dedup();
        if threads.len() != config.d || threads.iter().any(|&t| (t as usize) >= config.k) {
            return Err(corrupt(format!(
                "row for node {} does not hold exactly d={} distinct threads",
                row.node, config.d
            )));
        }
        if !addrs.contains_key(&row.node) {
            return Err(corrupt(format!("member {} has no data address", row.node)));
        }
        if row.node.0 >= snap.next_id {
            return Err(corrupt(format!("node {} at or above next_id", row.node)));
        }
    }
    let mut server = CurtainServer::restore(snap).map_err(io::Error::other)?;
    server.matrix().assert_invariants();
    server.set_recorder(recorder.clone());
    addrs.retain(|n, _| server.matrix().position_of(*n).is_some());
    completed.retain(|n| server.matrix().position_of(*n).is_some());

    let commit =
        CommitShared::new(Some(Box::new(wal)), group_commit, strict, recorder.clone());
    let core = ControlCore::from_parts(
        server,
        seed,
        addrs,
        source.map(core_source_of),
        completed,
        recorder.clone(),
    );
    Ok((State { core, recorder, commit, pending_wait: None }, replayed, resynced))
}

/// Milliseconds since the unix epoch, with a fixed large fallback when
/// the system clock reads before 1970 (so the fence never collapses).
fn wall_clock_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(1 << 40, |d| u64::try_from(d.as_millis()).unwrap_or(1 << 40))
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("addr", &self.addr)
            .field("members", &self.members())
            .finish()
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    state: &Arc<Mutex<State>>,
    commit: &Arc<CommitShared>,
) {
    // Every connection handler is tracked and joined: finished handlers
    // are reaped as new connections arrive (so the list tracks the live
    // set, not the total served), and the stragglers are joined on the
    // way out — a stopped coordinator leaves no thread of its own behind.
    let mut children: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                reap_finished(&mut children);
                let state = Arc::clone(state);
                let commit = Arc::clone(commit);
                children.push(std::thread::spawn(move || {
                    let _ = handle_connection(&stream, &state, &commit);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for child in children {
        let _ = child.join();
    }
}

/// Joins (without blocking) every handler that has already returned.
fn reap_finished(children: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < children.len() {
        if children[i].is_finished() {
            let _ = children.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

fn handle_connection(
    stream: &TcpStream,
    state: &Mutex<State>,
    commit: &Arc<CommitShared>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let request = proto::read_request(stream)?;
    let (mut response, wait) = state.lock().handle(request);
    // Group commit: the response computed above is not released until
    // the batch holding this mutation's WAL record is fsynced. The
    // state lock is NOT held here — other mutations pile into the same
    // batch while we wait, which is the whole point.
    if let Some(seq) = wait {
        match commit.wait_durable(seq, COMMIT_WAIT) {
            DurableWait::Durable => {}
            DurableWait::Degraded | DurableWait::TimedOut => {
                if commit.strict() {
                    response = unavailable();
                }
                // Lenient mode serves the non-durable response, exactly
                // as per-mutation lenient mode does — but degraded mode
                // has already been entered and telemetered.
            }
        }
    }
    proto::write_response(stream, &response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ParentAddr;
    use curtain_overlay::Holder;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn hello_requires_a_source() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:1".parse().unwrap() },
            T,
        )
        .unwrap();
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn register_then_hello_then_stats() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9999".parse().unwrap(),
                generations: 1,
                generation_size: 8,
                packet_len: 64,
                content_len: 512,
            },
            T,
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:10000".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, generation_size, content_len, parents, .. } = resp else {
            panic!("expected welcome, got {resp:?}");
        };
        assert_eq!(generation_size, 8);
        assert_eq!(content_len, 512);
        assert_eq!(parents.len(), 2);
        assert!(parents.iter().all(|(_, p)| matches!(p, ParentAddr::Source(_))));
        // Stats reflect the join.
        let resp = proto::call(c.addr(), &Request::Stats, T).unwrap();
        assert_eq!(resp, Response::Stats { members: 1, completed: 0, repairs: 0 });
        // Completion is recorded.
        proto::call(c.addr(), &Request::Completed { node }, T).unwrap();
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn complaint_splices_and_redirects() {
        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 7).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9000".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        // Two peers; the second may hang below the first.
        let mut nodes = Vec::new();
        for port in [9001u16, 9002] {
            let resp = proto::call(
                c.addr(),
                &Request::Hello {
                    data_addr: format!("127.0.0.1:{port}").parse().unwrap(),
                },
                T,
            )
            .unwrap();
            let Response::Welcome { node, .. } = resp else { panic!() };
            nodes.push(node);
        }
        // Find a (child, thread, parent) relation from the checkpoint.
        let snapshot = c.checkpoint_json().unwrap();
        let restored = CurtainServer::from_json(&snapshot).unwrap();
        let pos1 = restored.matrix().position_of(nodes[1]).unwrap();
        let parents = restored.matrix().parents_of_position(pos1);
        let (thread, holder) = parents[0];
        let failed = match holder {
            Holder::Node(n) => Some(n),
            Holder::Server => None,
        };
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child: nodes[1], failed_parent: failed, thread, ctx: None },
            T,
        )
        .unwrap();
        let Response::Redirect { thread: t2, new_parent } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_eq!(t2, thread);
        if failed.is_some() {
            // The accused is gone; member count dropped and the redirect
            // points somewhere that is not the failed node.
            assert_eq!(c.members(), 1);
            assert_eq!(c.repairs(), 1);
            assert_ne!(new_parent.node(), failed);
        } else {
            assert!(matches!(new_parent, ParentAddr::Source(_)));
        }
    }

    #[test]
    fn duplicate_complaint_returns_current_parent() {
        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 3).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9300".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let mut nodes = Vec::new();
        for port in 9301u16..9307 {
            let resp = proto::call(
                c.addr(),
                &Request::Hello {
                    data_addr: format!("127.0.0.1:{port}").parse().unwrap(),
                },
                T,
            )
            .unwrap();
            let Response::Welcome { node, .. } = resp else { panic!() };
            nodes.push(node);
        }
        // Find a (child, thread, parent) relation where the parent is a
        // node (straight from the in-process matrix — no checkpoint).
        let (child, thread, failed) = {
            let st = c.state.lock();
            let mut found = None;
            'outer: for &n in &nodes {
                let pos = st.core.server().matrix().position_of(n).unwrap();
                for (t, holder) in st.core.server().matrix().parents_of_position(pos) {
                    if let Holder::Node(p) = holder {
                        found = Some((n, t, p));
                        break 'outer;
                    }
                }
            }
            found.expect("with six members some thread has a node parent")
        };
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child, failed_parent: Some(failed), thread, ctx: None },
            T,
        )
        .unwrap();
        let Response::Redirect { new_parent: first, .. } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_ne!(first.node(), Some(failed));
        assert_eq!(c.repairs(), 1);
        // A duplicate complaint against the already-spliced parent (e.g.
        // from a retrying child whose first response was lost) must not
        // trigger a second repair, and must name the child's *current*
        // parent on that thread.
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child, failed_parent: Some(failed), thread, ctx: None },
            T,
        )
        .unwrap();
        let Response::Redirect { thread: t2, new_parent: second } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_eq!(t2, thread);
        assert_eq!(c.repairs(), 1, "duplicate complaint must not re-repair");
        assert_ne!(second.node(), Some(failed));
        let expected = c.state.lock().core.current_parent(child, thread).unwrap();
        assert_eq!(second, expected);
    }

    #[test]
    fn traced_coordinator_records_connection_lifecycle() {
        use curtain_telemetry::MemorySink;

        let sink = MemorySink::new();
        let c = Coordinator::start_traced(
            OverlayConfig::new(4, 2),
            11,
            SharedRecorder::wall_clock(sink.clone()),
        )
        .unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9200".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:9201".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, .. } = resp else { panic!() };
        proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();

        let events = sink.events();
        // Overlay-level Hello/GoodBye plus net-level connect/disconnect,
        // all wall-stamped (after 2020-01-01 in unix-ms terms).
        assert!(events.iter().all(|(at, _)| *at > 1_577_836_800_000));
        let kinds: Vec<&str> = events.iter().map(|(_, e)| e.kind()).collect();
        assert!(kinds.contains(&"hello"));
        assert!(kinds.contains(&"peer_connect"));
        assert!(kinds.contains(&"good_bye"));
        assert!(kinds.contains(&"peer_disconnect"));
        assert_eq!(sink.metrics().snapshot().gauges["coordinator_members"], 0.0);
    }

    fn register(addr: SocketAddr, source_port: u16) -> Response {
        proto::call(
            addr,
            &Request::RegisterSource {
                data_addr: format!("127.0.0.1:{source_port}").parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap()
    }

    fn hello(addr: SocketAddr, data_port: u16) -> (curtain_overlay::NodeId, Vec<(u16, ParentAddr)>) {
        let resp = proto::call(
            addr,
            &Request::Hello { data_addr: format!("127.0.0.1:{data_port}").parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, parents, .. } = resp else {
            panic!("expected welcome, got {resp:?}");
        };
        (node, parents)
    }

    #[test]
    fn second_source_at_other_addr_is_rejected() {
        use curtain_telemetry::MemorySink;

        let sink = MemorySink::new();
        let c = Coordinator::start_traced(
            OverlayConfig::new(4, 2),
            5,
            SharedRecorder::wall_clock(sink.clone()),
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9400), Response::Ok);
        // Same address again: the restart case, idempotent.
        assert_eq!(register(c.addr(), 9400), Response::Ok);
        // Different address while the first is live: refused loudly.
        let resp = register(c.addr(), 9401);
        let Response::Error { reason } = resp else {
            panic!("expected rejection, got {resp:?}");
        };
        assert!(reason.contains("already registered"), "{reason}");
        let kinds: Vec<String> =
            sink.events().iter().map(|(_, e)| e.kind().to_string()).collect();
        assert!(kinds.contains(&"source_register_rejected".to_string()));
        assert_eq!(sink.metrics().snapshot().counters["source_register_rejected"], 1);
        // The original registration still stands.
        let (_, parents) = hello(c.addr(), 9402);
        assert!(parents
            .iter()
            .all(|(_, p)| matches!(p, ParentAddr::Source(a) if a.port() == 9400)));
    }

    #[test]
    fn resync_readmits_forgotten_peer() {
        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 9).unwrap();
        assert_eq!(register(c.addr(), 9500), Response::Ok);
        let (node, parents) = hello(c.addr(), 9501);
        // Simulate total amnesia: goodbye wipes the row, then the peer
        // resyncs its old id and thread set back in.
        proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert_eq!(c.members(), 0);
        let view: Vec<(u16, Option<NodeId>)> =
            parents.iter().map(|(t, p)| (*t, p.node())).collect();
        let resp = proto::call(
            c.addr(),
            &Request::Resync {
                node,
                data_addr: "127.0.0.1:9501".parse().unwrap(),
                parents: view.clone(),
                ctx: None,
            },
            T,
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(c.members(), 1);
        // Idempotent: a duplicate resync refreshes, never duplicates.
        let resp = proto::call(
            c.addr(),
            &Request::Resync {
                node,
                data_addr: "127.0.0.1:9501".parse().unwrap(),
                parents: view,
                ctx: None,
            },
            T,
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(c.members(), 1);
        // The readmitted row answers complaints again.
        let (t, _) = parents[0];
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child: node, failed_parent: None, thread: t, ctx: None },
            T,
        )
        .unwrap();
        assert!(matches!(resp, Response::Redirect { .. }), "{resp:?}");
        // New ids never collide with the resynced one.
        let (fresh, _) = hello(c.addr(), 9502);
        assert!(fresh.0 > node.0);
    }

    #[test]
    fn recover_replays_wal_to_identical_state() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover_replays.wal");
        let wal = WalOptions::new(&path);

        let c = Coordinator::start_durable(
            OverlayConfig::new(4, 2),
            21,
            SharedRecorder::null(),
            &wal,
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9600), Response::Ok);
        let mut nodes = Vec::new();
        for port in 9601u16..9606 {
            nodes.push(hello(c.addr(), port).0);
        }
        proto::call(c.addr(), &Request::Goodbye { node: nodes[1] }, T).unwrap();
        proto::call(c.addr(), &Request::Completed { node: nodes[2] }, T).unwrap();
        let before = c.matrix_rows();
        let (members, completed) = (c.members(), c.completed());
        c.kill();

        let r = Coordinator::recover(&path, OverlayConfig::new(4, 2)).unwrap();
        assert_eq!(r.members(), members);
        assert_eq!(r.completed(), completed);
        // The rebuilt matrix is *identical* — same rows in the same order
        // (so every holder relation is preserved too). Cumulative metrics
        // are not replayed; only `M` is load-bearing.
        assert_eq!(r.matrix_rows(), before);
        // The recovered coordinator keeps serving: a new hello works and
        // the id is strictly fresher than every pre-crash id.
        let (fresh, _) = hello(r.addr(), 9609);
        assert!(nodes.iter().all(|n| fresh.0 > n.0));
        // Tidy shutdown compacts; a second recovery replays one record.
        r.shutdown();
        let (records, _) = Wal::open(&path, u64::MAX).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0], WalRecord::Checkpoint { .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_rejects_mismatched_config() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover_mismatch.wal");
        let c = Coordinator::start_durable(
            OverlayConfig::new(4, 2),
            1,
            SharedRecorder::null(),
            &WalOptions::new(&path),
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9700), Response::Ok);
        let _ = hello(c.addr(), 9701);
        // Force a checkpoint record into the log.
        c.shutdown();
        let err = Coordinator::recover(&path, OverlayConfig::new(8, 3)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn goodbye_removes_member() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9100".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:9101".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, .. } = resp else { panic!() };
        assert_eq!(c.members(), 1);
        let resp = proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(c.members(), 0);
        // Double good-bye is an error, not a crash.
        let resp = proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
    }

    use std::sync::atomic::AtomicU64;

    /// Fault-injecting [`WalStore`]: flips append/sync/compact between
    /// healthy delegation and injected errors, and counts compaction
    /// attempts (the write-amplification regression watches that count).
    struct FlakyStore {
        inner: Wal,
        fail_sync: Arc<AtomicBool>,
        fail_compact: Arc<AtomicBool>,
        compacts: Arc<AtomicU64>,
    }

    impl FlakyStore {
        fn create(
            path: &Path,
            compact_threshold: u64,
        ) -> (Box<dyn WalStore>, Arc<AtomicBool>, Arc<AtomicBool>, Arc<AtomicU64>) {
            let fail_sync = Arc::new(AtomicBool::new(false));
            let fail_compact = Arc::new(AtomicBool::new(false));
            let compacts = Arc::new(AtomicU64::new(0));
            let store = FlakyStore {
                inner: Wal::create(path, compact_threshold).unwrap(),
                fail_sync: Arc::clone(&fail_sync),
                fail_compact: Arc::clone(&fail_compact),
                compacts: Arc::clone(&compacts),
            };
            (Box::new(store), fail_sync, fail_compact, compacts)
        }
    }

    impl WalStore for FlakyStore {
        fn append(&mut self, record: &WalRecord) -> io::Result<()> {
            self.inner.append(record)
        }

        fn sync(&mut self) -> io::Result<()> {
            if self.fail_sync.load(Ordering::SeqCst) {
                return Err(io::Error::other("injected sync failure"));
            }
            self.inner.sync()
        }

        fn compact(&mut self, checkpoint: &WalRecord) -> io::Result<()> {
            self.compacts.fetch_add(1, Ordering::SeqCst);
            if self.fail_compact.load(Ordering::SeqCst) {
                return Err(io::Error::other("injected compact failure"));
            }
            self.inner.compact(checkpoint)
        }

        fn bytes(&self) -> u64 {
            self.inner.bytes()
        }

        fn records(&self) -> u64 {
            self.inner.records()
        }

        fn needs_compaction(&self) -> bool {
            self.inner.needs_compaction()
        }
    }

    fn wal_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn wal_failure_enters_degraded_mode_and_keeps_serving_lenient() {
        use curtain_telemetry::MemorySink;

        let path = wal_dir().join("degraded_lenient.wal");
        let (store, fail_sync, _, _) = FlakyStore::create(&path, u64::MAX);
        let sink = MemorySink::new();
        let c = Coordinator::start_durable_with_store(
            OverlayConfig::new(4, 2),
            31,
            SharedRecorder::wall_clock(sink.clone()),
            store,
            false, // per-mutation: the failure surfaces inside the request
            false, // lenient: serve from memory, loudly
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9800), Response::Ok);
        let _ = hello(c.addr(), 9801);
        assert!(c.health_json().contains("\"durable\":true"), "{}", c.health_json());

        // Disk goes bad: the very next mutation is served (lenient) but
        // the coordinator announces degradation and flips /health.
        fail_sync.store(true, Ordering::SeqCst);
        let _ = hello(c.addr(), 9802);
        let health = c.health_json();
        assert!(health.contains("\"durable\":false"), "{health}");
        assert!(health.contains("\"wal_enabled\":true"), "{health}");

        // More mutations still serve (members grow in memory)...
        let _ = hello(c.addr(), 9803);
        assert_eq!(c.members(), 3);
        // ...and the degradation event fired exactly once.
        let degraded = sink
            .events()
            .iter()
            .filter(|(_, e)| e.kind() == "coordinator_degraded")
            .count();
        assert_eq!(degraded, 1, "degraded mode announces once, not per mutation");
        assert!(sink.metrics().snapshot().counters["wal_errors"] >= 1);
        drop(c);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn strict_mode_refuses_mutations_after_wal_failure() {
        let path = wal_dir().join("degraded_strict.wal");
        let (store, fail_sync, _, _) = FlakyStore::create(&path, u64::MAX);
        let c = Coordinator::start_durable_with_store(
            OverlayConfig::new(4, 2),
            32,
            SharedRecorder::null(),
            store,
            true, // group commit: the failure surfaces at the batch fsync
            true, // strict: refuse non-durable mutations
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9810), Response::Ok);
        let (node, _) = hello(c.addr(), 9811);

        fail_sync.store(true, Ordering::SeqCst);
        // The in-flight mutation whose batch hits the bad disk is refused.
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:9812".parse().unwrap() },
            T,
        )
        .unwrap();
        assert!(matches!(resp, Response::Unavailable { .. }), "{resp:?}");
        // So is every later mutation (upfront, without touching memory).
        let members_before = c.members();
        let resp = proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert!(matches!(resp, Response::Unavailable { .. }), "{resp:?}");
        assert_eq!(c.members(), members_before, "refused mutation must not apply");
        // Reads still serve: operators can inspect a degraded coordinator.
        let resp = proto::call(c.addr(), &Request::Stats, T).unwrap();
        assert!(matches!(resp, Response::Stats { .. }), "{resp:?}");
        assert!(c.health_json().contains("\"durable\":false"));
        drop(c);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_batches_survive_kill_and_recover() {
        let path = wal_dir().join("group_commit_recover.wal");
        let wal = WalOptions::new(&path); // group commit is the default
        assert!(wal.group_commit);
        let c = Coordinator::start_durable(
            OverlayConfig::new(4, 2),
            33,
            SharedRecorder::null(),
            &wal,
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9820), Response::Ok);
        // Concurrent joins pile into shared batches.
        let addr = c.addr();
        let joins: Vec<_> = (0..4u16)
            .map(|i| std::thread::spawn(move || hello(addr, 9821 + i).0))
            .collect();
        let mut nodes: Vec<NodeId> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        nodes.sort_unstable();
        proto::call(c.addr(), &Request::Completed { node: nodes[0] }, T).unwrap();
        let before = c.matrix_rows();
        c.kill();

        // Every acknowledged mutation was durable when its response left:
        // replay rebuilds the exact same matrix.
        let r = Coordinator::recover(&path, OverlayConfig::new(4, 2)).unwrap();
        assert_eq!(r.matrix_rows(), before);
        assert_eq!(r.completed(), 1);
        r.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_compaction_backs_off_instead_of_retrying_every_mutation() {
        let path = wal_dir().join("compact_backoff.wal");
        // Tiny threshold: every mutation is over it from the start.
        let (store, _, fail_compact, compacts) = FlakyStore::create(&path, 1);
        let c = Coordinator::start_durable_with_store(
            OverlayConfig::new(4, 2),
            34,
            SharedRecorder::null(),
            store,
            false,
            false,
        )
        .unwrap();
        fail_compact.store(true, Ordering::SeqCst);
        assert_eq!(register(c.addr(), 9830), Response::Ok);
        // A storm of mutations while compaction keeps failing: without
        // the backoff latch every one retries a full-log rewrite.
        for port in 9831u16..9841 {
            let _ = hello(c.addr(), port);
        }
        let attempts = compacts.load(Ordering::SeqCst);
        assert!(
            attempts <= 2,
            "failed compaction must back off, not retry per mutation (got {attempts})"
        );
        // The disk heals and the backoff expires: compaction succeeds on
        // a later crossing instead of being latched off forever.
        fail_compact.store(false, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(450));
        let _ = hello(c.addr(), 9841);
        assert!(compacts.load(Ordering::SeqCst) > attempts, "compaction retries after backoff");
        drop(c);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fenced_next_id_dominates_clock_ids_and_epoch() {
        // Healthy case: wall clock dominates a small id space.
        assert_eq!(Coordinator::fenced_next_id(1_000_000, 42, 0), 1_000_000);
        // Backwards-stepping clock: the persisted epoch holds the line.
        assert_eq!(Coordinator::fenced_next_id(5, 10, 1_000_000), 1_000_001);
        // Observed ids above both: max id + 1 form wins.
        assert_eq!(Coordinator::fenced_next_id(5, 2_000_000, 1_000_000), 2_000_000);
        // Epoch saturates instead of wrapping.
        assert_eq!(Coordinator::fenced_next_id(0, 0, u64::MAX), u64::MAX);
    }

    #[test]
    fn recovery_never_allocates_below_the_persisted_epoch() {
        let path = wal_dir().join("epoch_fence.wal");
        let c = Coordinator::start_durable(
            OverlayConfig::new(4, 2),
            35,
            SharedRecorder::null(),
            &WalOptions::new(&path),
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9850), Response::Ok);
        let (node, _) = hello(c.addr(), 9851);
        // Checkpoint (persisting the epoch), then splice the member out:
        // its id now lives only in the checkpoint's epoch.
        c.shutdown();
        let far_future = wall_clock_ms() + 365 * 24 * 3600 * 1000;
        {
            // Simulate a dead incarnation that had granted far more ids
            // than the matrix shows (e.g. heavy churn since checkpoint)
            // by rewriting the checkpoint with an artificially *high*
            // epoch and no members — while the wall clock is "low".
            let (records, _) = Wal::open(&path, u64::MAX).unwrap();
            let [WalRecord::Checkpoint { server, source, .. }] = &records[..] else {
                panic!("expected one checkpoint, got {}", records.len());
            };
            let mut wal = Wal::create(&path, u64::MAX).unwrap();
            wal.append(&WalRecord::Checkpoint {
                server: server.clone(),
                addrs: vec![(node.0, "127.0.0.1:9851".parse().unwrap())],
                source: *source,
                completed: vec![],
                epoch: far_future,
            })
            .unwrap();
            wal.sync().unwrap();
        }
        let r = Coordinator::recover(&path, OverlayConfig::new(4, 2)).unwrap();
        let (fresh, _) = hello(r.addr(), 9852);
        assert!(
            fresh.0 >= far_future,
            "fresh id {} must clear the persisted epoch {far_future}",
            fresh.0
        );
        drop(r);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_only_wal_path_degrades_instead_of_lying() {
        // The satellite regression: the WAL's directory turns read-only
        // mid-run. Appends keep flowing through the already-open fd (fd
        // permissions are fixed at open), but compaction — which must
        // create `<log>.wal.tmp` — fails. The coordinator must survive,
        // keep the old log intact, and keep serving.
        let dir = wal_dir().join("ro-case");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("readonly.wal");
        let c = Coordinator::start_durable(
            OverlayConfig::new(4, 2),
            36,
            SharedRecorder::null(),
            &WalOptions::new(&path).with_compact_threshold(1).with_group_commit(false),
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9860), Response::Ok);
        let mut perms = std::fs::metadata(&dir).unwrap().permissions();
        perms.set_readonly(true);
        std::fs::set_permissions(&dir, perms.clone()).unwrap();
        // Root bypasses directory permission bits entirely; in that case
        // the fault cannot be induced this way, so only assert liveness.
        let induced = std::fs::File::create(dir.join("probe.tmp")).is_err();
        for port in 9861u16..9864 {
            let _ = hello(c.addr(), port);
        }
        assert_eq!(c.members(), 3, "read-only path must not take the control plane down");
        #[allow(clippy::permissions_set_readonly_false)]
        perms.set_readonly(false);
        std::fs::set_permissions(&dir, perms).unwrap();
        drop(c);
        // The original log survived the failed compactions: replay works.
        if induced {
            let (records, _) = Wal::open(&path, u64::MAX).unwrap();
            assert!(!records.is_empty());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_fetch_and_wal_tail_ship_state_over_the_control_port() {
        let path = wal_dir().join("snapshot_fetch.wal");
        let c = Coordinator::start_durable(
            OverlayConfig::new(4, 2),
            37,
            SharedRecorder::null(),
            &WalOptions::new(&path),
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9870), Response::Ok);
        let _ = hello(c.addr(), 9871);
        let resp = proto::call(c.addr(), &Request::SnapshotFetch, T).unwrap();
        let Response::Snapshot { seq, record } = resp else {
            panic!("expected snapshot, got {resp:?}");
        };
        let ck = WalRecord::parse_json(&record).unwrap();
        assert!(matches!(ck, WalRecord::Checkpoint { .. }));
        // Tailing from the snapshot's seq returns nothing new...
        let resp = proto::call(c.addr(), &Request::WalTail { after: seq }, T).unwrap();
        let Response::WalSegment { last, records } = resp else {
            panic!("expected segment, got {resp:?}");
        };
        assert_eq!(last, seq);
        assert!(records.is_empty());
        // ...until another mutation lands.
        let _ = hello(c.addr(), 9872);
        let resp = proto::call(c.addr(), &Request::WalTail { after: seq }, T).unwrap();
        let Response::WalSegment { last, records } = resp else {
            panic!("expected segment, got {resp:?}");
        };
        assert_eq!(last, seq + 1);
        assert_eq!(records.len(), 1);
        assert!(matches!(
            WalRecord::parse_json(&records[0]).unwrap(),
            WalRecord::Hello { .. }
        ));
        // A tail from far behind the retained ring demands a snapshot.
        let resp = proto::call(c.addr(), &Request::SnapshotFetch, T).unwrap();
        assert!(matches!(resp, Response::Snapshot { .. }));
        drop(c);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resync_sweep_nudges_live_peers_and_splices_dead_ones() {
        use std::net::TcpListener as RawListener;

        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 38).unwrap();
        assert_eq!(register(c.addr(), 9880), Response::Ok);
        // A live "peer": a raw listener we can watch for the nudge.
        let live = RawListener::bind("127.0.0.1:0").unwrap();
        let live_addr = live.local_addr().unwrap();
        let resp = proto::call(c.addr(), &Request::Hello { data_addr: live_addr }, T).unwrap();
        assert!(matches!(resp, Response::Welcome { .. }));
        // A dead peer: an address nothing listens on (bind then drop).
        let dead_addr = {
            let l = RawListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let resp = proto::call(c.addr(), &Request::Hello { data_addr: dead_addr }, T).unwrap();
        assert!(matches!(resp, Response::Welcome { .. }));
        assert_eq!(c.members(), 2);

        let nudge_reader = std::thread::spawn(move || {
            let (stream, _) = live.accept().unwrap();
            let stop = AtomicBool::new(false);
            framing::read_data_hello_deadline(&stream, &stop, Duration::from_secs(5)).unwrap()
        });
        let report = c.resync_sweep();
        assert_eq!(report.probed, 2);
        assert_eq!(report.nudged, 1);
        assert_eq!(report.spliced, 1);
        assert_eq!(c.members(), 1, "the unreachable peer is spliced out");
        assert_eq!(nudge_reader.join().unwrap(), framing::DataHello::ResyncNudge);
    }
}
