//! The coordinator: the paper's server-side matrix behind a TCP port.
//!
//! The matrix `M` is durable when the coordinator is started with a
//! [`WalOptions`]: every mutation (source registration, hello, good-bye,
//! splice, completion, resync) is appended to a write-ahead log before the
//! response leaves, and [`Coordinator::recover`] replays checkpoint + WAL
//! to resurrect the exact state after a crash. When the WAL itself is
//! lost, the resync protocol rebuilds `M` from the peers: an "unknown
//! child" complaint response makes the peer send [`Request::Resync`] with
//! its thread→parent view, and the coordinator re-inserts the row.

use std::collections::{HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use curtain_overlay::snapshot::RowSnapshot;
use curtain_overlay::{CurtainServer, Holder, NodeId, NodeStatus, OverlayConfig, ThreadId};
use curtain_telemetry::trace::{COORDINATOR_NODE, fresh_id};
use curtain_telemetry::{Event, SharedRecorder, TraceContext};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::proto::{self, ParentAddr, Request, Response};
use crate::wal::{Wal, WalOptions, WalRecord, WalSourceInfo};

struct State {
    server: CurtainServer,
    rng: StdRng,
    addrs: HashMap<NodeId, SocketAddr>,
    source: Option<WalSourceInfo>,
    completed: HashSet<NodeId>,
    recorder: SharedRecorder,
    wal: Option<Wal>,
}

impl State {
    fn parent_addr(&self, holder: Holder) -> Option<ParentAddr> {
        match holder {
            Holder::Server => self.source.map(|s| ParentAddr::Source(s.addr)),
            Holder::Node(n) => self.addrs.get(&n).map(|a| ParentAddr::Node(n, *a)),
        }
    }

    /// Makes one mutation durable: append + fsync (the batch is one
    /// request — control traffic is rare), then compact if the log
    /// outgrew its threshold. WAL I/O failures must not take the control
    /// plane down mid-broadcast, so they surface as a `wal_errors`
    /// counter instead of an error response: the coordinator keeps
    /// serving from memory and recovery degrades to the resync path.
    fn log(&mut self, record: &WalRecord) {
        if self.wal.is_none() {
            return;
        }
        let mut failed = false;
        if let Some(wal) = self.wal.as_mut() {
            failed = wal.append(record).and_then(|()| wal.sync()).is_err();
        }
        if self.wal.as_ref().is_some_and(Wal::needs_compaction) {
            match self.checkpoint_record() {
                Ok(ck) => {
                    if let Some(wal) = self.wal.as_mut() {
                        failed |= wal.compact(&ck).is_err();
                    }
                }
                Err(_) => failed = true,
            }
        }
        if failed {
            self.recorder.counter("wal_errors", 1);
        }
        if let Some(wal) = self.wal.as_ref() {
            self.recorder.gauge("wal_bytes", wal.bytes() as f64);
            self.recorder.gauge("wal_records", wal.records() as f64);
        }
    }

    /// The full state as one WAL record (the compaction payload).
    fn checkpoint_record(&self) -> Result<WalRecord, String> {
        let server = self.server.to_json().map_err(|e| e.to_string())?;
        let mut addrs: Vec<(u64, SocketAddr)> =
            self.addrs.iter().map(|(n, a)| (n.0, *a)).collect();
        addrs.sort_unstable_by_key(|(n, _)| *n);
        let mut completed: Vec<u64> = self.completed.iter().map(|n| n.0).collect();
        completed.sort_unstable();
        Ok(WalRecord::Checkpoint { server, addrs, source: self.source, completed })
    }

    /// Opens a coordinator-side span hanging off a request's causal
    /// context. Returns `None` (and records nothing) when the request was
    /// untraced — span bookkeeping must stay free for old/untraced peers.
    fn span_start(&self, ctx: Option<TraceContext>, name: &str) -> Option<TraceContext> {
        let ctx = ctx?;
        let child = TraceContext { trace: ctx.trace, span: fresh_id() };
        self.recorder.record(&Event::SpanStart {
            trace: child.trace,
            span: child.span,
            parent: ctx.span,
            name: name.to_string(),
            node: COORDINATOR_NODE,
        });
        Some(child)
    }

    /// Closes a span opened by [`State::span_start`] (no-op on `None`).
    fn span_end(&self, span: Option<TraceContext>, ok: bool) {
        if let Some(span) = span {
            self.recorder.record(&Event::SpanEnd { trace: span.trace, span: span.span, ok });
        }
    }

    /// The child's current parent on `thread`, after any necessary repair.
    fn current_parent(&mut self, child: NodeId, thread: ThreadId) -> Result<ParentAddr, String> {
        let pos = self
            .server
            .matrix()
            .position_of(child)
            .ok_or_else(|| format!("unknown child {child}"))?;
        let (_, holder) = self
            .server
            .matrix()
            .parents_of_position(pos)
            .into_iter()
            .find(|(t, _)| *t == thread)
            .ok_or_else(|| format!("{child} does not hold thread {thread}"))?;
        self.parent_addr(holder)
            .ok_or_else(|| "no source registered".to_string())
    }

    fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::RegisterSource {
                data_addr,
                generations,
                generation_size,
                packet_len,
                content_len,
            } => {
                // A second registration at a *different* address while a
                // session is live is a hijack, not a restart — refuse it.
                // (Same-address re-registration is the restart case and
                // stays idempotent.)
                if let Some(existing) = self.source {
                    if existing.addr != data_addr {
                        self.recorder.record(&Event::SourceRegisterRejected);
                        self.recorder.counter("source_register_rejected", 1);
                        return Response::Error {
                            reason: format!(
                                "source already registered at {}",
                                existing.addr
                            ),
                        };
                    }
                }
                let info = WalSourceInfo {
                    addr: data_addr,
                    generations,
                    generation_size,
                    packet_len,
                    content_len,
                };
                self.source = Some(info);
                self.log(&WalRecord::RegisterSource(info));
                Response::Ok
            }
            Request::Hello { data_addr } => {
                let Some(info) = self.source else {
                    return Response::Error { reason: "no source registered yet".into() };
                };
                let grant = self.server.hello(&mut self.rng);
                self.addrs.insert(grant.node, data_addr);
                self.log(&WalRecord::Hello {
                    node: grant.node.0,
                    position: grant.position as u64,
                    threads: grant.parents.iter().map(|(t, _)| *t).collect(),
                    data_addr,
                });
                self.recorder.record(&Event::PeerConnect { peer: grant.node.0 });
                self.recorder.gauge("coordinator_members", self.server.matrix().len() as f64);
                let mut parents = Vec::with_capacity(grant.parents.len());
                for (thread, holder) in grant.parents {
                    match self.parent_addr(holder) {
                        Some(p) => parents.push((thread, p)),
                        None => {
                            return Response::Error {
                                reason: format!("no address for parent of thread {thread}"),
                            }
                        }
                    }
                }
                Response::Welcome {
                    node: grant.node,
                    generations: info.generations,
                    generation_size: info.generation_size,
                    packet_len: info.packet_len,
                    content_len: info.content_len,
                    parents,
                }
            }
            Request::Goodbye { node } => match self.server.goodbye(node) {
                Ok(_) => {
                    self.addrs.remove(&node);
                    self.log(&WalRecord::Goodbye { node: node.0 });
                    self.recorder.record(&Event::PeerDisconnect { peer: node.0 });
                    self.recorder.gauge("coordinator_members", self.server.matrix().len() as f64);
                    Response::Ok
                }
                Err(e) => Response::Error { reason: e.to_string() },
            },
            Request::Complaint { child, failed_parent, thread, ctx } => {
                // If the accused is still a member, mark it failed and
                // splice it out (report + repair merged: the coordinator is
                // the repair interval here). Duplicate complaints are fine:
                // the node is already gone and we just return the child's
                // current parent.
                if let Some(failed) = failed_parent {
                    if self.server.matrix().position_of(failed).is_some() {
                        // When the complaint carries a causal context, the
                        // splice work becomes a child span of it — the
                        // stitched repair-episode tree then shows the
                        // coordinator-side step between complain and
                        // repair-complete.
                        let splice_span = self.span_start(ctx, "splice");
                        let _ = self.server.report_failure(failed);
                        let _ = self.server.repair(failed);
                        self.addrs.remove(&failed);
                        self.completed.remove(&failed);
                        self.log(&WalRecord::Splice { node: failed.0 });
                        self.recorder.record(&Event::PeerDisconnect { peer: failed.0 });
                        self.recorder
                            .gauge("coordinator_members", self.server.matrix().len() as f64);
                        self.span_end(splice_span, true);
                    }
                }
                match self.current_parent(child, thread) {
                    Ok(new_parent) => Response::Redirect { thread, new_parent },
                    Err(reason) => Response::Error { reason },
                }
            }
            Request::Completed { node } => {
                if self.completed.insert(node) {
                    self.log(&WalRecord::Completed { node: node.0 });
                }
                Response::Ok
            }
            Request::Resync { node, data_addr, parents, ctx } => {
                if self.server.matrix().position_of(node).is_some() {
                    // Already known — a duplicate resync (the first Ok was
                    // lost), or the WAL had the row all along. Refresh the
                    // address and move on.
                    self.addrs.insert(node, data_addr);
                    return Response::Ok;
                }
                let resync_span = self.span_start(ctx, "resync");
                let mut threads: Vec<ThreadId> = parents.iter().map(|(t, _)| *t).collect();
                threads.sort_unstable();
                match self.server.readmit(node, threads.clone(), NodeStatus::Working) {
                    Ok(_) => {
                        self.addrs.insert(node, data_addr);
                        self.log(&WalRecord::Resync {
                            node: node.0,
                            threads: threads.clone(),
                            data_addr,
                        });
                        self.recorder.record(&Event::PeerResync {
                            peer: node.0,
                            threads: threads.len() as u32,
                        });
                        self.recorder.counter("resynced_rows", 1);
                        self.recorder
                            .gauge("coordinator_members", self.server.matrix().len() as f64);
                        self.span_end(resync_span, true);
                        Response::Ok
                    }
                    Err(e) => {
                        self.span_end(resync_span, false);
                        Response::Error { reason: e.to_string() }
                    }
                }
            }
            Request::Stats => Response::Stats {
                members: self.server.matrix().len(),
                completed: self.completed.len(),
                repairs: self.server.metrics().repairs,
            },
        }
    }
}

/// A running coordinator bound to a local TCP port.
///
/// The accept loop runs on a background thread; each control connection is
/// one request/response exchange. Drop or [`Coordinator::shutdown`] stops
/// it.
pub struct Coordinator {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<Mutex<State>>,
    handle: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `127.0.0.1:0` and starts serving the control protocol.
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start(config: OverlayConfig) -> io::Result<Self> {
        Self::start_seeded(config, 0xC0DE)
    }

    /// Like [`Coordinator::start`] with an explicit RNG seed for the thread
    /// assignments (tests).
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start_seeded(config: OverlayConfig, seed: u64) -> io::Result<Self> {
        Self::start_traced(config, seed, SharedRecorder::null())
    }

    /// Like [`Coordinator::start_seeded`] with a telemetry recorder
    /// (typically [`SharedRecorder::wall_clock`] — timestamps are unix
    /// milliseconds out here, not sim-ticks). The recorder sees the full
    /// protocol lifecycle: `Hello`/`GoodBye`/`Complain`/`Splice`/
    /// `RepairComplete`/`ThreadDefect` from the embedded
    /// [`CurtainServer`], plus `PeerConnect`/`PeerDisconnect` and a
    /// `coordinator_members` gauge from the connection handlers.
    ///
    /// # Errors
    ///
    /// Propagates bind errors and configuration errors.
    pub fn start_traced(
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let mut server = CurtainServer::new(config).map_err(io::Error::other)?;
        server.set_recorder(recorder.clone());
        let state = State {
            server,
            rng: StdRng::seed_from_u64(seed),
            addrs: HashMap::new(),
            source: None,
            completed: HashSet::new(),
            recorder,
            wal: None,
        };
        Self::serve(TcpListener::bind("127.0.0.1:0")?, state)
    }

    /// Like [`Coordinator::start_traced`], but every matrix mutation is
    /// made durable in a write-ahead log first (see [`crate::wal`]) so a
    /// crashed coordinator can be resurrected with
    /// [`Coordinator::recover`]. A fresh start truncates any existing log
    /// at `wal.path` — use `recover` to continue one.
    ///
    /// # Errors
    ///
    /// Propagates bind, configuration, and WAL-creation errors.
    pub fn start_durable(
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
        wal: &WalOptions,
    ) -> io::Result<Self> {
        let mut server = CurtainServer::new(config).map_err(io::Error::other)?;
        server.set_recorder(recorder.clone());
        let state = State {
            server,
            rng: StdRng::seed_from_u64(seed),
            addrs: HashMap::new(),
            source: None,
            completed: HashSet::new(),
            recorder,
            wal: Some(Wal::create(&wal.path, wal.compact_threshold)?),
        };
        Self::serve(TcpListener::bind("127.0.0.1:0")?, state)
    }

    /// Replays the WAL at `path` (checkpoint + tail) and serves the
    /// rebuilt matrix from a fresh port. The rebuilt `M` is asserted
    /// before serving: every row carries exactly `config.d` distinct
    /// threads, node ids are unique, and every member has a data-plane
    /// address (so every holder a redirect can name is dialable).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, and reports corrupt-state errors
    /// (`InvalidData`) when the replayed state violates the invariants.
    pub fn recover(path: impl AsRef<Path>, config: OverlayConfig) -> io::Result<Self> {
        Self::recover_traced(
            WalOptions::new(path.as_ref()),
            config,
            0xC0DE,
            SharedRecorder::null(),
        )
    }

    /// [`Coordinator::recover`] with explicit seed and telemetry; emits
    /// `CoordinatorRecovered{replayed, resynced}` once serving resumes.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::recover`].
    pub fn recover_traced(
        wal: WalOptions,
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        Self::recover_on(listener, wal, config, seed, recorder)
    }

    /// Recovers *at a fixed address* — the kill-and-restart case, where
    /// surviving peers keep complaining at the old coordinator address
    /// and must find the recovered one there. Binding retries briefly:
    /// control connections closed by the dying server can linger in
    /// TIME_WAIT on the listening port.
    ///
    /// # Errors
    ///
    /// See [`Coordinator::recover`]; also fails if `addr` stays
    /// unbindable for ~5 s.
    pub fn recover_at(
        addr: SocketAddr,
        wal: WalOptions,
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let deadline = Instant::now() + Duration::from_secs(5);
        let listener = loop {
            match TcpListener::bind(addr) {
                Ok(l) => break l,
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        };
        Self::recover_on(listener, wal, config, seed, recorder)
    }

    fn recover_on(
        listener: TcpListener,
        wal: WalOptions,
        config: OverlayConfig,
        seed: u64,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        // Replay is its own root span: nothing upstream caused it (the
        // crash did), and stitched reports should show its duration next
        // to the repair episodes it races against.
        let replay_ctx = TraceContext::root();
        recorder.record(&Event::SpanStart {
            trace: replay_ctx.trace,
            span: replay_ctx.span,
            parent: curtain_telemetry::trace::NO_PARENT,
            name: "wal_replay".to_string(),
            node: COORDINATOR_NODE,
        });
        let replay = replay_wal(wal, config, seed, recorder.clone());
        recorder.record(&Event::SpanEnd {
            trace: replay_ctx.trace,
            span: replay_ctx.span,
            ok: replay.is_ok(),
        });
        let (state, replayed, resynced) = replay?;
        recorder.record(&Event::CoordinatorRecovered { replayed, resynced });
        recorder.gauge("coordinator_members", state.server.matrix().len() as f64);
        if let Some(w) = state.wal.as_ref() {
            recorder.gauge("wal_bytes", w.bytes() as f64);
            recorder.gauge("wal_records", w.records() as f64);
        }
        Self::serve(listener, state)
    }

    fn serve(listener: TcpListener, state: State) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(state));
        {
            // Publish the members gauge before the first connection so a
            // scrape of a freshly started coordinator sees an explicit zero
            // rather than an empty exposition.
            let st = state.lock();
            st.recorder.gauge("coordinator_members", st.server.matrix().len() as f64);
        }
        let handle = {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            std::thread::spawn(move || accept_loop(&listener, &stop, &state))
        };
        Ok(Coordinator { addr, stop, state, handle: Some(handle) })
    }

    /// The control-plane address peers dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current member count.
    #[must_use]
    pub fn members(&self) -> usize {
        self.state.lock().server.matrix().len()
    }

    /// Peers that reported full decode.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.state.lock().completed.len()
    }

    /// Repairs executed so far.
    #[must_use]
    pub fn repairs(&self) -> u64 {
        self.state.lock().server.metrics().repairs
    }

    /// The matrix rows — `(node id, threads)` in matrix order — a
    /// serde-free view of `M` for assertions and operator tooling.
    #[must_use]
    pub fn matrix_rows(&self) -> Vec<(u64, Vec<ThreadId>)> {
        self.state
            .lock()
            .server
            .matrix()
            .rows()
            .iter()
            .map(|r| (r.node().0, r.threads().to_vec()))
            .collect()
    }

    /// One-line JSON health document for the `/health` endpoint: matrix
    /// size, defect totals, completion and repair counts, and WAL
    /// occupancy. Built with the telemetry crate's own writer so the
    /// shape matches the rest of the observability surface.
    #[must_use]
    pub fn health_json(&self) -> String {
        health_json_of(&self.state)
    }

    /// A `'static` closure producing [`Coordinator::health_json`] — the
    /// callback shape [`curtain_telemetry::ExposeServer::bind`] wants.
    pub fn health_handle(&self) -> impl Fn() -> String + Send + Sync + 'static {
        let state = Arc::clone(&self.state);
        move || health_json_of(&state)
    }

    /// Checkpoint of the coordinator's overlay state as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization errors.
    pub fn checkpoint_json(&self) -> io::Result<String> {
        self.state.lock().server.to_json().map_err(io::Error::other)
    }

    /// Stops the accept loop and joins the thread; a durable coordinator
    /// additionally collapses its WAL to a single checkpoint record (so
    /// the next [`Coordinator::recover`] replays O(1) records).
    pub fn shutdown(mut self) {
        self.stop_now();
        let mut st = self.state.lock();
        if st.wal.is_some() {
            if let Ok(ck) = st.checkpoint_record() {
                if let Some(wal) = st.wal.as_mut() {
                    let _ = wal.compact(&ck);
                }
            }
        }
    }

    /// Kills the coordinator abruptly — the crash under test: the accept
    /// loop stops and the WAL is left exactly as the last fsync left it
    /// (no final checkpoint, possibly mid-epoch). Recovery must cope.
    pub fn kill(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
            let st = self.state.lock();
            st.recorder.record(&Event::CoordinatorDown {
                members: st.server.matrix().len() as u64,
            });
            let _ = st.recorder.flush();
        }
    }
}

/// Renders the coordinator's health document (shared by
/// [`Coordinator::health_json`] and the `'static` handle the expose
/// server holds).
fn health_json_of(state: &Mutex<State>) -> String {
    use curtain_telemetry::json::JsonValue;
    use std::collections::BTreeMap;
    let st = state.lock();
    let metrics = st.server.metrics();
    let mut doc = BTreeMap::new();
    doc.insert("role".to_string(), JsonValue::Str("coordinator".to_string()));
    doc.insert("ok".to_string(), JsonValue::Bool(true));
    doc.insert("matrix_rows".to_string(), JsonValue::Int(st.server.matrix().len() as i64));
    let defect = curtain_overlay::defect::exact(st.server.matrix(), st.server.config().d);
    doc.insert("total_defect".to_string(), JsonValue::Int(defect.total_defect() as i64));
    doc.insert("completed".to_string(), JsonValue::Int(st.completed.len() as i64));
    doc.insert("repairs".to_string(), JsonValue::Int(metrics.repairs as i64));
    doc.insert("source_registered".to_string(), JsonValue::Bool(st.source.is_some()));
    doc.insert("wal_enabled".to_string(), JsonValue::Bool(st.wal.is_some()));
    if let Some(wal) = st.wal.as_ref() {
        doc.insert("wal_bytes".to_string(), JsonValue::Int(wal.bytes() as i64));
        doc.insert("wal_records".to_string(), JsonValue::Int(wal.records() as i64));
    }
    JsonValue::Object(doc).render()
}

/// Rebuilds coordinator state from the WAL at `wal.path`, returning the
/// state plus `(records replayed, resync records among them)`.
///
/// Replay is pure data manipulation over a [`curtain_overlay::snapshot`]:
/// a checkpoint record resets the fold, each mutation record edits the
/// snapshot's row list, and the final snapshot goes through the public
/// `CurtainServer::restore` round trip — no RNG, no insert policy, no
/// re-derivation of decisions the dead coordinator already made.
fn replay_wal(
    wal: WalOptions,
    config: OverlayConfig,
    seed: u64,
    recorder: SharedRecorder,
) -> io::Result<(State, u64, u64)> {
    let corrupt = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let (records, wal) = Wal::open(&wal.path, wal.compact_threshold)?;
    let replayed = records.len() as u64;
    let mut resynced = 0u64;

    let empty = CurtainServer::new(config).map_err(io::Error::other)?;
    let mut snap = empty.snapshot();
    let mut addrs: HashMap<NodeId, SocketAddr> = HashMap::new();
    let mut source: Option<WalSourceInfo> = None;
    let mut completed: HashSet<NodeId> = HashSet::new();

    for record in records {
        match record {
            WalRecord::Checkpoint { server, addrs: a, source: s, completed: c } => {
                let restored = CurtainServer::from_json(&server)
                    .map_err(|e| corrupt(format!("bad checkpoint: {e}")))?;
                let ck = restored.config();
                if ck.k != config.k || ck.d != config.d {
                    return Err(corrupt(format!(
                        "checkpoint is for k={}, d={}, not k={}, d={}",
                        ck.k, ck.d, config.k, config.d
                    )));
                }
                snap = restored.snapshot();
                addrs = a.into_iter().map(|(n, ad)| (NodeId(n), ad)).collect();
                source = s;
                completed = c.into_iter().map(NodeId).collect();
            }
            WalRecord::RegisterSource(info) => source = Some(info),
            WalRecord::Hello { node, position, threads, data_addr } => {
                let pos = usize::try_from(position).map_err(io::Error::other)?;
                if pos > snap.matrix.rows.len() {
                    return Err(corrupt(format!(
                        "hello for node {node} at position {pos} of {}",
                        snap.matrix.rows.len()
                    )));
                }
                snap.matrix.rows.insert(
                    pos,
                    RowSnapshot { node: NodeId(node), threads, status: NodeStatus::Working },
                );
                snap.next_id = snap.next_id.max(node + 1);
                addrs.insert(NodeId(node), data_addr);
            }
            WalRecord::Resync { node, threads, data_addr } => {
                resynced += 1;
                snap.matrix.rows.push(RowSnapshot {
                    node: NodeId(node),
                    threads,
                    status: NodeStatus::Working,
                });
                snap.next_id = snap.next_id.max(node + 1);
                addrs.insert(NodeId(node), data_addr);
            }
            WalRecord::Goodbye { node } | WalRecord::Splice { node } => {
                let node = NodeId(node);
                snap.matrix.rows.retain(|r| r.node != node);
                addrs.remove(&node);
                completed.remove(&node);
            }
            WalRecord::Completed { node } => {
                completed.insert(NodeId(node));
            }
        }
    }

    // A lost WAL (zero records) means every id the dead incarnation ever
    // granted is unknown — if allocation restarted at 0, fresh grants
    // would collide with survivors' old ids and poison the resync
    // protocol (readmit would reject the rightful owner as "already a
    // member"). Restart allocation in a fresh epoch instead: unix
    // milliseconds dominates any plausible grant count.
    if replayed == 0 {
        let epoch = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(1 << 40, |d| u64::try_from(d.as_millis()).unwrap_or(1 << 40));
        snap.next_id = snap.next_id.max(epoch);
    }

    // Assert the rebuilt M *before* restore (whose internal inserts would
    // panic on violations): unique ids, exactly-d distinct in-range
    // threads per row, and a dialable address per member.
    let mut seen = HashSet::new();
    for row in &snap.matrix.rows {
        if !seen.insert(row.node) {
            return Err(corrupt(format!("duplicate row for node {}", row.node)));
        }
        let mut threads = row.threads.clone();
        threads.sort_unstable();
        threads.dedup();
        if threads.len() != config.d || threads.iter().any(|&t| (t as usize) >= config.k) {
            return Err(corrupt(format!(
                "row for node {} does not hold exactly d={} distinct threads",
                row.node, config.d
            )));
        }
        if !addrs.contains_key(&row.node) {
            return Err(corrupt(format!("member {} has no data address", row.node)));
        }
        if row.node.0 >= snap.next_id {
            return Err(corrupt(format!("node {} at or above next_id", row.node)));
        }
    }
    let mut server = CurtainServer::restore(snap).map_err(io::Error::other)?;
    server.matrix().assert_invariants();
    server.set_recorder(recorder.clone());
    addrs.retain(|n, _| server.matrix().position_of(*n).is_some());
    completed.retain(|n| server.matrix().position_of(*n).is_some());

    Ok((
        State {
            server,
            rng: StdRng::seed_from_u64(seed),
            addrs,
            source,
            completed,
            recorder,
            wal: Some(wal),
        },
        replayed,
        resynced,
    ))
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("addr", &self.addr)
            .field("members", &self.members())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, state: &Arc<Mutex<State>>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state = Arc::clone(state);
                std::thread::spawn(move || {
                    let _ = handle_connection(&stream, &state);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(stream: &TcpStream, state: &Mutex<State>) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let request = proto::read_request(stream)?;
    let response = state.lock().handle(request);
    proto::write_response(stream, &response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn hello_requires_a_source() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:1".parse().unwrap() },
            T,
        )
        .unwrap();
        assert!(matches!(resp, Response::Error { .. }));
    }

    #[test]
    fn register_then_hello_then_stats() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9999".parse().unwrap(),
                generations: 1,
                generation_size: 8,
                packet_len: 64,
                content_len: 512,
            },
            T,
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:10000".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, generation_size, content_len, parents, .. } = resp else {
            panic!("expected welcome, got {resp:?}");
        };
        assert_eq!(generation_size, 8);
        assert_eq!(content_len, 512);
        assert_eq!(parents.len(), 2);
        assert!(parents.iter().all(|(_, p)| matches!(p, ParentAddr::Source(_))));
        // Stats reflect the join.
        let resp = proto::call(c.addr(), &Request::Stats, T).unwrap();
        assert_eq!(resp, Response::Stats { members: 1, completed: 0, repairs: 0 });
        // Completion is recorded.
        proto::call(c.addr(), &Request::Completed { node }, T).unwrap();
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn complaint_splices_and_redirects() {
        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 7).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9000".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        // Two peers; the second may hang below the first.
        let mut nodes = Vec::new();
        for port in [9001u16, 9002] {
            let resp = proto::call(
                c.addr(),
                &Request::Hello {
                    data_addr: format!("127.0.0.1:{port}").parse().unwrap(),
                },
                T,
            )
            .unwrap();
            let Response::Welcome { node, .. } = resp else { panic!() };
            nodes.push(node);
        }
        // Find a (child, thread, parent) relation from the checkpoint.
        let snapshot = c.checkpoint_json().unwrap();
        let restored = CurtainServer::from_json(&snapshot).unwrap();
        let pos1 = restored.matrix().position_of(nodes[1]).unwrap();
        let parents = restored.matrix().parents_of_position(pos1);
        let (thread, holder) = parents[0];
        let failed = match holder {
            Holder::Node(n) => Some(n),
            Holder::Server => None,
        };
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child: nodes[1], failed_parent: failed, thread, ctx: None },
            T,
        )
        .unwrap();
        let Response::Redirect { thread: t2, new_parent } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_eq!(t2, thread);
        if failed.is_some() {
            // The accused is gone; member count dropped and the redirect
            // points somewhere that is not the failed node.
            assert_eq!(c.members(), 1);
            assert_eq!(c.repairs(), 1);
            assert_ne!(new_parent.node(), failed);
        } else {
            assert!(matches!(new_parent, ParentAddr::Source(_)));
        }
    }

    #[test]
    fn duplicate_complaint_returns_current_parent() {
        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 3).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9300".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let mut nodes = Vec::new();
        for port in 9301u16..9307 {
            let resp = proto::call(
                c.addr(),
                &Request::Hello {
                    data_addr: format!("127.0.0.1:{port}").parse().unwrap(),
                },
                T,
            )
            .unwrap();
            let Response::Welcome { node, .. } = resp else { panic!() };
            nodes.push(node);
        }
        // Find a (child, thread, parent) relation where the parent is a
        // node (straight from the in-process matrix — no checkpoint).
        let (child, thread, failed) = {
            let st = c.state.lock();
            let mut found = None;
            'outer: for &n in &nodes {
                let pos = st.server.matrix().position_of(n).unwrap();
                for (t, holder) in st.server.matrix().parents_of_position(pos) {
                    if let Holder::Node(p) = holder {
                        found = Some((n, t, p));
                        break 'outer;
                    }
                }
            }
            found.expect("with six members some thread has a node parent")
        };
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child, failed_parent: Some(failed), thread, ctx: None },
            T,
        )
        .unwrap();
        let Response::Redirect { new_parent: first, .. } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_ne!(first.node(), Some(failed));
        assert_eq!(c.repairs(), 1);
        // A duplicate complaint against the already-spliced parent (e.g.
        // from a retrying child whose first response was lost) must not
        // trigger a second repair, and must name the child's *current*
        // parent on that thread.
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child, failed_parent: Some(failed), thread, ctx: None },
            T,
        )
        .unwrap();
        let Response::Redirect { thread: t2, new_parent: second } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_eq!(t2, thread);
        assert_eq!(c.repairs(), 1, "duplicate complaint must not re-repair");
        assert_ne!(second.node(), Some(failed));
        let expected = c.state.lock().current_parent(child, thread).unwrap();
        assert_eq!(second, expected);
    }

    #[test]
    fn traced_coordinator_records_connection_lifecycle() {
        use curtain_telemetry::MemorySink;

        let sink = MemorySink::new();
        let c = Coordinator::start_traced(
            OverlayConfig::new(4, 2),
            11,
            SharedRecorder::wall_clock(sink.clone()),
        )
        .unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9200".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:9201".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, .. } = resp else { panic!() };
        proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();

        let events = sink.events();
        // Overlay-level Hello/GoodBye plus net-level connect/disconnect,
        // all wall-stamped (after 2020-01-01 in unix-ms terms).
        assert!(events.iter().all(|(at, _)| *at > 1_577_836_800_000));
        let kinds: Vec<&str> = events.iter().map(|(_, e)| e.kind()).collect();
        assert!(kinds.contains(&"hello"));
        assert!(kinds.contains(&"peer_connect"));
        assert!(kinds.contains(&"good_bye"));
        assert!(kinds.contains(&"peer_disconnect"));
        assert_eq!(sink.metrics().snapshot().gauges["coordinator_members"], 0.0);
    }

    fn register(addr: SocketAddr, source_port: u16) -> Response {
        proto::call(
            addr,
            &Request::RegisterSource {
                data_addr: format!("127.0.0.1:{source_port}").parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap()
    }

    fn hello(addr: SocketAddr, data_port: u16) -> (curtain_overlay::NodeId, Vec<(u16, ParentAddr)>) {
        let resp = proto::call(
            addr,
            &Request::Hello { data_addr: format!("127.0.0.1:{data_port}").parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, parents, .. } = resp else {
            panic!("expected welcome, got {resp:?}");
        };
        (node, parents)
    }

    #[test]
    fn second_source_at_other_addr_is_rejected() {
        use curtain_telemetry::MemorySink;

        let sink = MemorySink::new();
        let c = Coordinator::start_traced(
            OverlayConfig::new(4, 2),
            5,
            SharedRecorder::wall_clock(sink.clone()),
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9400), Response::Ok);
        // Same address again: the restart case, idempotent.
        assert_eq!(register(c.addr(), 9400), Response::Ok);
        // Different address while the first is live: refused loudly.
        let resp = register(c.addr(), 9401);
        let Response::Error { reason } = resp else {
            panic!("expected rejection, got {resp:?}");
        };
        assert!(reason.contains("already registered"), "{reason}");
        let kinds: Vec<String> =
            sink.events().iter().map(|(_, e)| e.kind().to_string()).collect();
        assert!(kinds.contains(&"source_register_rejected".to_string()));
        assert_eq!(sink.metrics().snapshot().counters["source_register_rejected"], 1);
        // The original registration still stands.
        let (_, parents) = hello(c.addr(), 9402);
        assert!(parents
            .iter()
            .all(|(_, p)| matches!(p, ParentAddr::Source(a) if a.port() == 9400)));
    }

    #[test]
    fn resync_readmits_forgotten_peer() {
        let c = Coordinator::start_seeded(OverlayConfig::new(4, 2), 9).unwrap();
        assert_eq!(register(c.addr(), 9500), Response::Ok);
        let (node, parents) = hello(c.addr(), 9501);
        // Simulate total amnesia: goodbye wipes the row, then the peer
        // resyncs its old id and thread set back in.
        proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert_eq!(c.members(), 0);
        let view: Vec<(u16, Option<NodeId>)> =
            parents.iter().map(|(t, p)| (*t, p.node())).collect();
        let resp = proto::call(
            c.addr(),
            &Request::Resync {
                node,
                data_addr: "127.0.0.1:9501".parse().unwrap(),
                parents: view.clone(),
                ctx: None,
            },
            T,
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(c.members(), 1);
        // Idempotent: a duplicate resync refreshes, never duplicates.
        let resp = proto::call(
            c.addr(),
            &Request::Resync {
                node,
                data_addr: "127.0.0.1:9501".parse().unwrap(),
                parents: view,
                ctx: None,
            },
            T,
        )
        .unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(c.members(), 1);
        // The readmitted row answers complaints again.
        let (t, _) = parents[0];
        let resp = proto::call(
            c.addr(),
            &Request::Complaint { child: node, failed_parent: None, thread: t, ctx: None },
            T,
        )
        .unwrap();
        assert!(matches!(resp, Response::Redirect { .. }), "{resp:?}");
        // New ids never collide with the resynced one.
        let (fresh, _) = hello(c.addr(), 9502);
        assert!(fresh.0 > node.0);
    }

    #[test]
    fn recover_replays_wal_to_identical_state() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover_replays.wal");
        let wal = WalOptions::new(&path);

        let c = Coordinator::start_durable(
            OverlayConfig::new(4, 2),
            21,
            SharedRecorder::null(),
            &wal,
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9600), Response::Ok);
        let mut nodes = Vec::new();
        for port in 9601u16..9606 {
            nodes.push(hello(c.addr(), port).0);
        }
        proto::call(c.addr(), &Request::Goodbye { node: nodes[1] }, T).unwrap();
        proto::call(c.addr(), &Request::Completed { node: nodes[2] }, T).unwrap();
        let before = c.matrix_rows();
        let (members, completed) = (c.members(), c.completed());
        c.kill();

        let r = Coordinator::recover(&path, OverlayConfig::new(4, 2)).unwrap();
        assert_eq!(r.members(), members);
        assert_eq!(r.completed(), completed);
        // The rebuilt matrix is *identical* — same rows in the same order
        // (so every holder relation is preserved too). Cumulative metrics
        // are not replayed; only `M` is load-bearing.
        assert_eq!(r.matrix_rows(), before);
        // The recovered coordinator keeps serving: a new hello works and
        // the id is strictly fresher than every pre-crash id.
        let (fresh, _) = hello(r.addr(), 9609);
        assert!(nodes.iter().all(|n| fresh.0 > n.0));
        // Tidy shutdown compacts; a second recovery replays one record.
        r.shutdown();
        let (records, _) = Wal::open(&path, u64::MAX).unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0], WalRecord::Checkpoint { .. }));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn recover_rejects_mismatched_config() {
        let dir = std::env::temp_dir().join(format!("curtain-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("recover_mismatch.wal");
        let c = Coordinator::start_durable(
            OverlayConfig::new(4, 2),
            1,
            SharedRecorder::null(),
            &WalOptions::new(&path),
        )
        .unwrap();
        assert_eq!(register(c.addr(), 9700), Response::Ok);
        let _ = hello(c.addr(), 9701);
        // Force a checkpoint record into the log.
        c.shutdown();
        let err = Coordinator::recover(&path, OverlayConfig::new(8, 3)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn goodbye_removes_member() {
        let c = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        proto::call(
            c.addr(),
            &Request::RegisterSource {
                data_addr: "127.0.0.1:9100".parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap();
        let resp = proto::call(
            c.addr(),
            &Request::Hello { data_addr: "127.0.0.1:9101".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, .. } = resp else { panic!() };
        assert_eq!(c.members(), 1);
        let resp = proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert_eq!(resp, Response::Ok);
        assert_eq!(c.members(), 0);
        // Double good-bye is an error, not a crash.
        let resp = proto::call(c.addr(), &Request::Goodbye { node }, T).unwrap();
        assert!(matches!(resp, Response::Error { .. }));
    }
}
