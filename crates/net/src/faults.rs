//! Fault injection for the data and control planes: a TCP proxy that can
//! drop, delay, truncate mid-frame, partition, or hard-close any link.
//!
//! Wrap any peer/source data listener — or the coordinator's control
//! port — behind a [`FaultProxy`] and the traffic flows through a pair of
//! pump threads per connection. The active [`Fault`] is consulted on
//! every forwarded chunk, so faults can be switched on and off while
//! connections are live:
//!
//! ```no_run
//! use curtain_net::{Fault, FaultProxy};
//! use std::time::Duration;
//!
//! # fn main() -> std::io::Result<()> {
//! let upstream = "127.0.0.1:9000".parse().unwrap();
//! let proxy = FaultProxy::start(upstream)?;
//! // ... point clients at proxy.addr() instead of `upstream` ...
//! proxy.set_fault(Fault::Blackhole);          // partition: silence, sockets stay up
//! std::thread::sleep(Duration::from_millis(200));
//! proxy.set_fault(Fault::None);               // heal — byte stream resumes intact
//! proxy.cut();                                // crash: hard-close every live link
//! # Ok(())
//! # }
//! ```
//!
//! `Blackhole` deliberately stops *reading* rather than reading-and-
//! discarding: TCP backpressure holds the in-flight bytes, so healing the
//! partition resumes the stream without corrupting frame boundaries.
//! `Truncate` does the opposite — it forwards a bounded number of bytes
//! and then hard-closes, which lands mid-frame unless the bound happens
//! to align, exercising the `UnexpectedEof` repair path.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

/// What the proxy currently does to traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything (the healthy state).
    None,
    /// Refuse service: new connections are accepted and immediately
    /// closed, existing pumps keep running.
    Refuse,
    /// Partition: connections stay open but no bytes move in either
    /// direction until the fault is cleared.
    Blackhole,
    /// Add this much latency to every forwarded chunk.
    Delay(Duration),
    /// Forward at most this many more bytes per direction, then
    /// hard-close the connection (typically mid-frame).
    Truncate(u64),
}

struct ProxyShared {
    upstream: SocketAddr,
    stop: AtomicBool,
    /// Bumped by [`FaultProxy::cut`]; pumps bound to an older epoch
    /// close their sockets and exit.
    epoch: AtomicU64,
    fault: Mutex<Fault>,
    /// Live sockets, so `cut` can wake pumps blocked in reads/writes.
    live: Mutex<Vec<TcpStream>>,
    forwarded: AtomicU64,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// A running fault-injecting TCP proxy in front of one upstream address.
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream` with no
    /// fault active.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(upstream: SocketAddr) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ProxyShared {
            upstream,
            stop: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            fault: Mutex::new(Fault::None),
            live: Mutex::new(Vec::new()),
            forwarded: AtomicU64::new(0),
            pumps: Mutex::new(Vec::new()),
        });
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(FaultProxy { addr, shared, accept_handle: Some(accept_handle) })
    }

    /// The address clients dial instead of the upstream.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Switches the active fault (applies to live and future connections).
    /// Live pumps consult the fault once per cycle, so a switch takes
    /// effect within ~50ms; a chunk already in flight may still be
    /// forwarded under the previous fault.
    pub fn set_fault(&self, fault: Fault) {
        *self.shared.fault.lock() = fault;
    }

    /// The currently active fault.
    #[must_use]
    pub fn fault(&self) -> Fault {
        *self.shared.fault.lock()
    }

    /// Hard-closes every live proxied connection (new ones still accept
    /// under the current fault) — the "parent crashed" signal.
    pub fn cut(&self) {
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        let mut live = self.shared.live.lock();
        for s in live.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Total bytes forwarded (both directions, across all connections).
    #[must_use]
    pub fn forwarded_bytes(&self) -> u64 {
        self.shared.forwarded.load(Ordering::SeqCst)
    }

    /// Stops accepting, closes every connection, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.cut();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let pumps: Vec<_> = self.shared.pumps.lock().drain(..).collect();
        for h in pumps {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for FaultProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultProxy")
            .field("addr", &self.addr)
            .field("upstream", &self.shared.upstream)
            .field("fault", &self.fault())
            .finish()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                if matches!(*shared.fault.lock(), Fault::Refuse) {
                    drop(client); // immediate close: connection refused-ish
                    continue;
                }
                let Ok(upstream) =
                    TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(2))
                else {
                    drop(client);
                    continue;
                };
                let epoch = shared.epoch.load(Ordering::SeqCst);
                spawn_pumps(shared, client, upstream, epoch);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Starts the two one-directional pump threads for a proxied connection.
fn spawn_pumps(
    shared: &Arc<ProxyShared>,
    client: TcpStream,
    upstream: TcpStream,
    epoch: u64,
) {
    let register = |s: &TcpStream| s.try_clone().ok();
    {
        let mut live = shared.live.lock();
        if let Some(c) = register(&client) {
            live.push(c);
        }
        if let Some(u) = register(&upstream) {
            live.push(u);
        }
    }
    let pairs = [
        (client.try_clone(), upstream.try_clone()),
        (Ok(upstream), Ok(client)),
    ];
    let mut pumps = shared.pumps.lock();
    for (from, to) in pairs {
        let (Ok(from), Ok(to)) = (from, to) else { continue };
        let shared = Arc::clone(shared);
        pumps.push(std::thread::spawn(move || {
            pump(&shared, &from, &to, epoch);
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
        }));
    }
}

/// Copies bytes `from → to`, consulting the active fault per chunk.
fn pump(shared: &ProxyShared, mut from: &TcpStream, mut to: &TcpStream, epoch: u64) {
    if from.set_read_timeout(Some(Duration::from_millis(50))).is_err() {
        return;
    }
    let _ = to.set_write_timeout(Some(Duration::from_secs(2)));
    let mut remaining_budget: Option<u64> = None; // engaged by Truncate
    let mut buf = [0u8; 8 * 1024];
    loop {
        if shared.stop.load(Ordering::SeqCst)
            || shared.epoch.load(Ordering::SeqCst) != epoch
        {
            return;
        }
        let fault = *shared.fault.lock();
        if matches!(fault, Fault::Blackhole) {
            // Stop pulling; TCP backpressure parks the stream intact.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        match from.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                let mut n = n;
                match fault {
                    Fault::Delay(d) => std::thread::sleep(d),
                    Fault::Truncate(limit) => {
                        let left = *remaining_budget.get_or_insert(limit);
                        if left == 0 {
                            return; // budget exhausted: hard-close (mid-frame)
                        }
                        n = n.min(usize::try_from(left).unwrap_or(usize::MAX));
                        remaining_budget = Some(left - n as u64);
                    }
                    _ => {}
                }
                if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                    return;
                }
                shared.forwarded.fetch_add(n as u64, Ordering::SeqCst);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// A trivial line-echo upstream; returns its address.
    fn echo_server() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut out = stream;
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        if out.write_all(line.as_bytes()).is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    fn roundtrip(stream: &TcpStream, msg: &str) -> io::Result<String> {
        let mut w = stream;
        w.write_all(msg.as_bytes())?;
        w.flush()?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
        }
        Ok(line)
    }

    #[test]
    fn passthrough_echoes() {
        let proxy = FaultProxy::start(echo_server()).unwrap();
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(roundtrip(&stream, "hi\n").unwrap(), "hi\n");
        assert!(proxy.forwarded_bytes() >= 6);
        proxy.shutdown();
    }

    #[test]
    fn refuse_drops_new_connections_only() {
        let proxy = FaultProxy::start(echo_server()).unwrap();
        let existing = TcpStream::connect(proxy.addr()).unwrap();
        existing.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        // A round-trip proves the accept loop has picked this connection
        // up; a kernel-accepted-but-not-yet-pumped socket would be
        // dropped by the Refuse check below.
        assert_eq!(roundtrip(&existing, "pre\n").unwrap(), "pre\n");
        proxy.set_fault(Fault::Refuse);
        // A new connection gets no service: reads hit EOF.
        let refused = TcpStream::connect(proxy.addr()).unwrap();
        refused.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert!(roundtrip(&refused, "hello\n").is_err());
        // The pre-existing connection still works.
        assert_eq!(roundtrip(&existing, "still\n").unwrap(), "still\n");
        proxy.shutdown();
    }

    #[test]
    fn cut_hard_closes_live_connections() {
        let proxy = FaultProxy::start(echo_server()).unwrap();
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(roundtrip(&stream, "a\n").unwrap(), "a\n");
        proxy.cut();
        std::thread::sleep(Duration::from_millis(100));
        assert!(roundtrip(&stream, "b\n").is_err(), "cut link still echoed");
        // New connections work again (cut is not a lasting fault).
        let fresh = TcpStream::connect(proxy.addr()).unwrap();
        fresh.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(roundtrip(&fresh, "c\n").unwrap(), "c\n");
        proxy.shutdown();
    }

    #[test]
    fn blackhole_stalls_then_heals_without_corruption() {
        let proxy = FaultProxy::start(echo_server()).unwrap();
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        assert_eq!(roundtrip(&stream, "pre\n").unwrap(), "pre\n");
        proxy.set_fault(Fault::Blackhole);
        // Let every pump complete its current ≤50ms cycle and observe
        // the fault before any more bytes are offered.
        std::thread::sleep(Duration::from_millis(120));
        // Nothing comes back while partitioned.
        {
            let mut w = &stream;
            w.write_all(b"during\n").unwrap();
            w.flush().unwrap();
        }
        stream.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        assert!(reader.read_line(&mut line).is_err(), "partition leaked: {line:?}");
        // Heal: the byte written during the partition arrives intact.
        proxy.set_fault(Fault::None);
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "during\n");
        proxy.shutdown();
    }

    #[test]
    fn truncate_closes_mid_stream() {
        let proxy = FaultProxy::start(echo_server()).unwrap();
        proxy.set_fault(Fault::Truncate(4));
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        {
            let mut w = &stream;
            w.write_all(b"0123456789\n").unwrap();
            w.flush().unwrap();
        }
        // At most 4 bytes of the 11 survive in each direction; then the
        // connection is hard-closed.
        let mut got = Vec::new();
        let mut r = stream.try_clone().unwrap();
        let _ = r.read_to_end(&mut got);
        assert!(got.len() <= 4, "truncation leaked {} bytes", got.len());
        proxy.shutdown();
    }
}
