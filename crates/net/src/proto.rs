//! Control-plane messages: one JSON line per request and response.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use curtain_overlay::{NodeId, ThreadId};
use serde::{Deserialize, Serialize};

/// Where a stream comes from: the source host or a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParentAddr {
    /// The source's data listener.
    Source(SocketAddr),
    /// A peer's data listener.
    Node(NodeId, SocketAddr),
}

impl ParentAddr {
    /// The socket address to dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        match self {
            ParentAddr::Source(a) | ParentAddr::Node(_, a) => *a,
        }
    }

    /// The peer id, if this is a peer.
    #[must_use]
    pub fn node(&self) -> Option<NodeId> {
        match self {
            ParentAddr::Source(_) => None,
            ParentAddr::Node(n, _) => Some(*n),
        }
    }
}

/// Requests a client may send to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// The source announces itself and the content shape.
    RegisterSource {
        /// Source data-plane listener.
        data_addr: SocketAddr,
        /// Number of generations the object is split into.
        generations: usize,
        /// Packets per generation.
        generation_size: usize,
        /// Bytes per packet.
        packet_len: usize,
        /// Original (unpadded) object length in bytes.
        content_len: usize,
    },
    /// A new peer asks to join (the hello protocol).
    Hello {
        /// The peer's data-plane listener (where its children will dial).
        data_addr: SocketAddr,
    },
    /// A peer leaves gracefully (the good-bye protocol).
    Goodbye {
        /// The departing peer.
        node: NodeId,
    },
    /// A child reports that its parent for `thread` stopped serving and
    /// asks where to resubscribe (failure report + repair).
    Complaint {
        /// The complaining child.
        child: NodeId,
        /// The parent that died (`None` = it was the source).
        failed_parent: Option<NodeId>,
        /// The thread whose stream broke.
        thread: ThreadId,
    },
    /// A peer announces it decoded the full generation.
    Completed {
        /// The peer.
        node: NodeId,
    },
    /// Asks for progress counters (used by tests and operators).
    Stats,
}

/// Responses from the coordinator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// Join granted.
    Welcome {
        /// Assigned node id.
        node: NodeId,
        /// Number of generations.
        generations: usize,
        /// Packets per generation.
        generation_size: usize,
        /// Bytes per packet.
        packet_len: usize,
        /// Original (unpadded) object length.
        content_len: usize,
        /// One parent per assigned thread.
        parents: Vec<(ThreadId, ParentAddr)>,
    },
    /// Where to resubscribe after a complaint.
    Redirect {
        /// The thread in question.
        thread: ThreadId,
        /// The child's current parent for that thread.
        new_parent: ParentAddr,
    },
    /// Progress counters.
    Stats {
        /// Current members.
        members: usize,
        /// Members that reported completion.
        completed: usize,
        /// Failures repaired so far.
        repairs: u64,
    },
    /// Generic acknowledgement.
    Ok,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

/// Sends one request and reads one response over a fresh connection.
///
/// # Errors
///
/// Propagates socket and serialization errors; the per-call timeout guards
/// both connect and read.
pub fn call(coordinator: SocketAddr, request: &Request, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&coordinator, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let mut line = serde_json::to_string(request).map_err(io::Error::other)?;
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    reader.read_line(&mut buf)?;
    serde_json::from_str(&buf).map_err(io::Error::other)
}

/// Reads one request line from an accepted control connection.
///
/// # Errors
///
/// Propagates socket and parse errors.
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut buf = String::new();
    reader.read_line(&mut buf)?;
    serde_json::from_str(&buf).map_err(io::Error::other)
}

/// Writes one response line to an accepted control connection.
///
/// # Errors
///
/// Propagates socket and serialization errors.
pub fn write_response(mut stream: &TcpStream, response: &Response) -> io::Result<()> {
    let mut line = serde_json::to_string(response).map_err(io::Error::other)?;
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_json() {
        let reqs = vec![
            Request::Hello { data_addr: "127.0.0.1:1234".parse().unwrap() },
            Request::Goodbye { node: NodeId(3) },
            Request::Complaint { child: NodeId(4), failed_parent: Some(NodeId(1)), thread: 7 },
            Request::Complaint { child: NodeId(4), failed_parent: None, thread: 0 },
            Request::Completed { node: NodeId(9) },
            Request::Stats,
        ];
        for r in reqs {
            let s = serde_json::to_string(&r).unwrap();
            let back: Request = serde_json::from_str(&s).unwrap();
            assert_eq!(back, r);
        }
        let resp = Response::Welcome {
            node: NodeId(1),
            generations: 3,
            generation_size: 16,
            packet_len: 1024,
            content_len: 40_000,
            parents: vec![(0, ParentAddr::Source("127.0.0.1:9".parse().unwrap()))],
        };
        let s = serde_json::to_string(&resp).unwrap();
        assert_eq!(serde_json::from_str::<Response>(&s).unwrap(), resp);
    }

    #[test]
    fn parent_addr_accessors() {
        let a: SocketAddr = "127.0.0.1:80".parse().unwrap();
        assert_eq!(ParentAddr::Source(a).addr(), a);
        assert_eq!(ParentAddr::Source(a).node(), None);
        assert_eq!(ParentAddr::Node(NodeId(5), a).node(), Some(NodeId(5)));
    }
}
