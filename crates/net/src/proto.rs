//! Control-plane messages: one JSON line per request and response.
//!
//! The wire codec is hand-rolled over [`curtain_telemetry::json`] — the
//! same dependency-free JSON layer the trace format uses — so the control
//! plane carries no serialization dependency and its wire form is
//! explicit: every message is a flat-ish tagged object, e.g.
//! `{"req":"complaint","child":4,"failed_parent":1,"thread":7}`.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use curtain_overlay::{NodeId, ThreadId};
use curtain_telemetry::TraceContext;
use curtain_telemetry::json::{self, JsonValue};

/// Where a stream comes from: the source host or a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParentAddr {
    /// The source's data listener.
    Source(SocketAddr),
    /// A peer's data listener.
    Node(NodeId, SocketAddr),
}

impl ParentAddr {
    /// The socket address to dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        match self {
            ParentAddr::Source(a) | ParentAddr::Node(_, a) => *a,
        }
    }

    /// The peer id, if this is a peer.
    #[must_use]
    pub fn node(&self) -> Option<NodeId> {
        match self {
            ParentAddr::Source(_) => None,
            ParentAddr::Node(n, _) => Some(*n),
        }
    }

    fn to_json(self) -> JsonValue {
        let mut fields = BTreeMap::new();
        match self {
            ParentAddr::Source(a) => {
                fields.insert("kind".into(), JsonValue::Str("source".into()));
                fields.insert("addr".into(), JsonValue::Str(a.to_string()));
            }
            ParentAddr::Node(n, a) => {
                fields.insert("kind".into(), JsonValue::Str("node".into()));
                fields.insert("node".into(), JsonValue::Int(n.0 as i64));
                fields.insert("addr".into(), JsonValue::Str(a.to_string()));
            }
        }
        JsonValue::Object(fields)
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let addr = parse_addr_field(v, "addr")?;
        match v.get("kind").and_then(JsonValue::as_str) {
            Some("source") => Ok(ParentAddr::Source(addr)),
            Some("node") => Ok(ParentAddr::Node(NodeId(field_u64(v, "node")?), addr)),
            other => Err(format!("bad parent kind {other:?}")),
        }
    }
}

/// Requests a client may send to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The source announces itself and the content shape.
    RegisterSource {
        /// Source data-plane listener.
        data_addr: SocketAddr,
        /// Number of generations the object is split into.
        generations: usize,
        /// Packets per generation.
        generation_size: usize,
        /// Bytes per packet.
        packet_len: usize,
        /// Original (unpadded) object length in bytes.
        content_len: usize,
    },
    /// A new peer asks to join (the hello protocol).
    Hello {
        /// The peer's data-plane listener (where its children will dial).
        data_addr: SocketAddr,
    },
    /// A peer leaves gracefully (the good-bye protocol).
    Goodbye {
        /// The departing peer.
        node: NodeId,
    },
    /// A child reports that its parent for `thread` stopped serving and
    /// asks where to resubscribe (failure report + repair).
    Complaint {
        /// The complaining child.
        child: NodeId,
        /// The parent that died (`None` = it was the source).
        failed_parent: Option<NodeId>,
        /// The thread whose stream broke.
        thread: ThreadId,
        /// Causal context of the repair episode's complain span, when
        /// the child traces: the coordinator hangs its splice span off
        /// it. Optional on the wire — untraced complainants omit the
        /// fields and old coordinators ignore them.
        ctx: Option<TraceContext>,
    },
    /// A peer announces it decoded the full generation.
    Completed {
        /// The peer.
        node: NodeId,
    },
    /// A peer answers an "unknown child" rejection with its full
    /// thread→parent view so an amnesiac coordinator (restarted without
    /// its WAL) can re-insert the row instead of stranding the peer.
    Resync {
        /// The peer re-introducing itself (keeps its old id).
        node: NodeId,
        /// The peer's data-plane listener.
        data_addr: SocketAddr,
        /// `(thread, last-known parent)` per upstream thread (`None` =
        /// the source). The threads are the row; the parents are a hint
        /// the coordinator may audit but does not need.
        parents: Vec<(ThreadId, Option<NodeId>)>,
        /// Causal context for the resync, when the peer traces; the
        /// coordinator's readmit span becomes its child. Optional on the
        /// wire for the same reasons as `Complaint::ctx`.
        ctx: Option<TraceContext>,
    },
    /// Asks for progress counters (used by tests and operators).
    Stats,
    /// A warm standby asks for a full-state snapshot to bootstrap from
    /// (snapshot shipping over the control port — no shared filesystem).
    SnapshotFetch,
    /// A warm standby asks for the WAL records committed after `after`
    /// (its last applied sequence number). The primary answers from its
    /// in-memory tail ring, or with an error telling the standby to
    /// refetch a snapshot if the ring no longer reaches back that far.
    WalTail {
        /// The last commit sequence number the standby has applied.
        after: u64,
    },
}

impl Request {
    /// The single-line JSON wire form (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut fields = BTreeMap::new();
        let tag = |fields: &mut BTreeMap<String, JsonValue>, t: &str| {
            fields.insert("req".into(), JsonValue::Str(t.into()));
        };
        match self {
            Request::RegisterSource {
                data_addr,
                generations,
                generation_size,
                packet_len,
                content_len,
            } => {
                tag(&mut fields, "register_source");
                fields.insert("data_addr".into(), JsonValue::Str(data_addr.to_string()));
                fields.insert("generations".into(), JsonValue::Int(*generations as i64));
                fields
                    .insert("generation_size".into(), JsonValue::Int(*generation_size as i64));
                fields.insert("packet_len".into(), JsonValue::Int(*packet_len as i64));
                fields.insert("content_len".into(), JsonValue::Int(*content_len as i64));
            }
            Request::Hello { data_addr } => {
                tag(&mut fields, "hello");
                fields.insert("data_addr".into(), JsonValue::Str(data_addr.to_string()));
            }
            Request::Goodbye { node } => {
                tag(&mut fields, "goodbye");
                fields.insert("node".into(), JsonValue::Int(node.0 as i64));
            }
            Request::Complaint { child, failed_parent, thread, ctx } => {
                tag(&mut fields, "complaint");
                fields.insert("child".into(), JsonValue::Int(child.0 as i64));
                fields.insert(
                    "failed_parent".into(),
                    match failed_parent {
                        Some(n) => JsonValue::Int(n.0 as i64),
                        None => JsonValue::Null,
                    },
                );
                fields.insert("thread".into(), JsonValue::Int(i64::from(*thread)));
                insert_ctx(&mut fields, *ctx);
            }
            Request::Completed { node } => {
                tag(&mut fields, "completed");
                fields.insert("node".into(), JsonValue::Int(node.0 as i64));
            }
            Request::Resync { node, data_addr, parents, ctx } => {
                tag(&mut fields, "resync");
                insert_ctx(&mut fields, *ctx);
                fields.insert("node".into(), JsonValue::Int(node.0 as i64));
                fields.insert("data_addr".into(), JsonValue::Str(data_addr.to_string()));
                fields.insert(
                    "parents".into(),
                    JsonValue::Array(
                        parents
                            .iter()
                            .map(|(t, p)| {
                                JsonValue::Array(vec![
                                    JsonValue::Int(i64::from(*t)),
                                    match p {
                                        Some(n) => JsonValue::Int(n.0 as i64),
                                        None => JsonValue::Null,
                                    },
                                ])
                            })
                            .collect(),
                    ),
                );
            }
            Request::Stats => tag(&mut fields, "stats"),
            Request::SnapshotFetch => tag(&mut fields, "snapshot_fetch"),
            Request::WalTail { after } => {
                tag(&mut fields, "wal_tail");
                fields.insert("after".into(), JsonValue::Int(*after as i64));
            }
        }
        JsonValue::Object(fields).render()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed lines.
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let v = json::parse_document(line.trim())?;
        let req = match v.get("req").and_then(JsonValue::as_str) {
            Some(t) => t,
            None => return Err("missing \"req\" tag".into()),
        };
        match req {
            "register_source" => Ok(Request::RegisterSource {
                data_addr: parse_addr_field(&v, "data_addr")?,
                generations: field_usize(&v, "generations")?,
                generation_size: field_usize(&v, "generation_size")?,
                packet_len: field_usize(&v, "packet_len")?,
                content_len: field_usize(&v, "content_len")?,
            }),
            "hello" => Ok(Request::Hello { data_addr: parse_addr_field(&v, "data_addr")? }),
            "goodbye" => Ok(Request::Goodbye { node: NodeId(field_u64(&v, "node")?) }),
            "complaint" => Ok(Request::Complaint {
                child: NodeId(field_u64(&v, "child")?),
                failed_parent: match v.get("failed_parent") {
                    Some(JsonValue::Null) | None => None,
                    Some(x) => Some(NodeId(
                        x.as_u64().ok_or("bad failed_parent")?,
                    )),
                },
                thread: field_thread(&v)?,
                ctx: parse_ctx(&v),
            }),
            "completed" => Ok(Request::Completed { node: NodeId(field_u64(&v, "node")?) }),
            "resync" => {
                let parents_json = v
                    .get("parents")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing parents array")?;
                let mut parents = Vec::with_capacity(parents_json.len());
                for pair in parents_json {
                    let [t, p] = pair.as_array().ok_or("bad parent pair")? else {
                        return Err("parent pair is not 2-element".into());
                    };
                    let thread = t
                        .as_u64()
                        .and_then(|x| ThreadId::try_from(x).ok())
                        .ok_or("bad thread id")?;
                    let parent = match p {
                        JsonValue::Null => None,
                        x => Some(NodeId(x.as_u64().ok_or("bad parent id")?)),
                    };
                    parents.push((thread, parent));
                }
                Ok(Request::Resync {
                    node: NodeId(field_u64(&v, "node")?),
                    data_addr: parse_addr_field(&v, "data_addr")?,
                    parents,
                    ctx: parse_ctx(&v),
                })
            }
            "stats" => Ok(Request::Stats),
            "snapshot_fetch" => Ok(Request::SnapshotFetch),
            "wal_tail" => Ok(Request::WalTail { after: field_u64(&v, "after")? }),
            other => Err(format!("unknown request {other:?}")),
        }
    }
}

/// Responses from the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Join granted.
    Welcome {
        /// Assigned node id.
        node: NodeId,
        /// Number of generations.
        generations: usize,
        /// Packets per generation.
        generation_size: usize,
        /// Bytes per packet.
        packet_len: usize,
        /// Original (unpadded) object length.
        content_len: usize,
        /// One parent per assigned thread.
        parents: Vec<(ThreadId, ParentAddr)>,
    },
    /// Where to resubscribe after a complaint.
    Redirect {
        /// The thread in question.
        thread: ThreadId,
        /// The child's current parent for that thread.
        new_parent: ParentAddr,
    },
    /// Progress counters.
    Stats {
        /// Current members.
        members: usize,
        /// Members that reported completion.
        completed: usize,
        /// Failures repaired so far.
        repairs: u64,
    },
    /// Generic acknowledgement.
    Ok,
    /// A strict-mode coordinator refuses to mutate while its WAL is
    /// degraded (the mutation would not be durable).
    Unavailable {
        /// Human-readable reason.
        reason: String,
    },
    /// A full-state snapshot for a bootstrapping standby.
    Snapshot {
        /// The commit sequence number the snapshot covers: tailing
        /// `WalTail { after: seq }` streams everything after it.
        seq: u64,
        /// A `WalRecord::Checkpoint` payload (opaque JSON at this layer).
        record: String,
    },
    /// A batch of committed WAL records for a tailing standby.
    WalSegment {
        /// The sequence number of the last record shipped (equals the
        /// request's `after` when `records` is empty).
        last: u64,
        /// `WalRecord` payloads in commit order (opaque JSON here).
        records: Vec<String>,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

impl Response {
    /// The single-line JSON wire form (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut fields = BTreeMap::new();
        let tag = |fields: &mut BTreeMap<String, JsonValue>, t: &str| {
            fields.insert("resp".into(), JsonValue::Str(t.into()));
        };
        match self {
            Response::Welcome {
                node,
                generations,
                generation_size,
                packet_len,
                content_len,
                parents,
            } => {
                tag(&mut fields, "welcome");
                fields.insert("node".into(), JsonValue::Int(node.0 as i64));
                fields.insert("generations".into(), JsonValue::Int(*generations as i64));
                fields
                    .insert("generation_size".into(), JsonValue::Int(*generation_size as i64));
                fields.insert("packet_len".into(), JsonValue::Int(*packet_len as i64));
                fields.insert("content_len".into(), JsonValue::Int(*content_len as i64));
                fields.insert(
                    "parents".into(),
                    JsonValue::Array(
                        parents
                            .iter()
                            .map(|(t, p)| {
                                JsonValue::Array(vec![
                                    JsonValue::Int(i64::from(*t)),
                                    p.to_json(),
                                ])
                            })
                            .collect(),
                    ),
                );
            }
            Response::Redirect { thread, new_parent } => {
                tag(&mut fields, "redirect");
                fields.insert("thread".into(), JsonValue::Int(i64::from(*thread)));
                fields.insert("new_parent".into(), new_parent.to_json());
            }
            Response::Stats { members, completed, repairs } => {
                tag(&mut fields, "stats");
                fields.insert("members".into(), JsonValue::Int(*members as i64));
                fields.insert("completed".into(), JsonValue::Int(*completed as i64));
                fields.insert("repairs".into(), JsonValue::Int(*repairs as i64));
            }
            Response::Ok => tag(&mut fields, "ok"),
            Response::Unavailable { reason } => {
                tag(&mut fields, "unavailable");
                fields.insert("reason".into(), JsonValue::Str(reason.clone()));
            }
            Response::Snapshot { seq, record } => {
                tag(&mut fields, "snapshot");
                fields.insert("seq".into(), JsonValue::Int(*seq as i64));
                fields.insert("record".into(), JsonValue::Str(record.clone()));
            }
            Response::WalSegment { last, records } => {
                tag(&mut fields, "wal_segment");
                fields.insert("last".into(), JsonValue::Int(*last as i64));
                fields.insert(
                    "records".into(),
                    JsonValue::Array(
                        records.iter().map(|r| JsonValue::Str(r.clone())).collect(),
                    ),
                );
            }
            Response::Error { reason } => {
                tag(&mut fields, "error");
                fields.insert("reason".into(), JsonValue::Str(reason.clone()));
            }
        }
        JsonValue::Object(fields).render()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed lines.
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let v = json::parse_document(line.trim())?;
        let resp = match v.get("resp").and_then(JsonValue::as_str) {
            Some(t) => t,
            None => return Err("missing \"resp\" tag".into()),
        };
        match resp {
            "welcome" => {
                let parents_json = v
                    .get("parents")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing parents array")?;
                let mut parents = Vec::with_capacity(parents_json.len());
                for pair in parents_json {
                    let items = pair.as_array().ok_or("bad parent pair")?;
                    let [t, p] = items else {
                        return Err("parent pair is not 2-element".into());
                    };
                    let thread = t
                        .as_u64()
                        .and_then(|x| ThreadId::try_from(x).ok())
                        .ok_or("bad thread id")?;
                    parents.push((thread, ParentAddr::from_json(p)?));
                }
                Ok(Response::Welcome {
                    node: NodeId(field_u64(&v, "node")?),
                    generations: field_usize(&v, "generations")?,
                    generation_size: field_usize(&v, "generation_size")?,
                    packet_len: field_usize(&v, "packet_len")?,
                    content_len: field_usize(&v, "content_len")?,
                    parents,
                })
            }
            "redirect" => Ok(Response::Redirect {
                thread: field_thread(&v)?,
                new_parent: ParentAddr::from_json(
                    v.get("new_parent").ok_or("missing new_parent")?,
                )?,
            }),
            "stats" => Ok(Response::Stats {
                members: field_usize(&v, "members")?,
                completed: field_usize(&v, "completed")?,
                repairs: field_u64(&v, "repairs")?,
            }),
            "ok" => Ok(Response::Ok),
            "unavailable" => Ok(Response::Unavailable {
                reason: v
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing reason")?
                    .to_string(),
            }),
            "snapshot" => Ok(Response::Snapshot {
                seq: field_u64(&v, "seq")?,
                record: v
                    .get("record")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing record")?
                    .to_string(),
            }),
            "wal_segment" => Ok(Response::WalSegment {
                last: field_u64(&v, "last")?,
                records: v
                    .get("records")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing records array")?
                    .iter()
                    .map(|r| r.as_str().map(str::to_string).ok_or("bad record payload"))
                    .collect::<Result<_, _>>()?,
            }),
            "error" => Ok(Response::Error {
                reason: v
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing reason")?
                    .to_string(),
            }),
            other => Err(format!("unknown response {other:?}")),
        }
    }
}

/// Adds the optional `"trace"`/`"span"` fields carrying a causal context.
fn insert_ctx(fields: &mut BTreeMap<String, JsonValue>, ctx: Option<TraceContext>) {
    if let Some(ctx) = ctx {
        fields.insert("trace".into(), JsonValue::Int(ctx.trace as i64));
        fields.insert("span".into(), JsonValue::Int(ctx.span as i64));
    }
}

/// Reads the optional `"trace"`/`"span"` context fields. Absent or
/// malformed fields read as "no context" — a request from an untraced
/// (or older) sender must keep parsing.
fn parse_ctx(v: &JsonValue) -> Option<TraceContext> {
    let trace = v.get("trace").and_then(JsonValue::as_u64)?;
    let span = v.get("span").and_then(JsonValue::as_u64)?;
    Some(TraceContext { trace, span })
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    usize::try_from(field_u64(v, key)?).map_err(|_| format!("field {key:?} overflows usize"))
}

fn field_thread(v: &JsonValue) -> Result<ThreadId, String> {
    ThreadId::try_from(field_u64(v, "thread")?).map_err(|_| "thread overflows u16".to_string())
}

fn parse_addr_field(v: &JsonValue, key: &str) -> Result<SocketAddr, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing addr field {key:?}"))?
        .parse()
        .map_err(|e| format!("bad socket address in {key:?}: {e}"))
}

fn invalid(e: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Sends one request and reads one response over a fresh connection.
///
/// # Errors
///
/// Propagates socket and serialization errors; the per-call timeout guards
/// both connect and read.
pub fn call(coordinator: SocketAddr, request: &Request, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&coordinator, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let mut line = request.to_json_line();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    reader.read_line(&mut buf)?;
    if buf.is_empty() {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "empty response"));
    }
    Response::parse_json_line(&buf).map_err(invalid)
}

/// Reads one request line from an accepted control connection.
///
/// # Errors
///
/// Propagates socket and parse errors.
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut buf = String::new();
    reader.read_line(&mut buf)?;
    Request::parse_json_line(&buf).map_err(invalid)
}

/// Writes one response line to an accepted control connection.
///
/// # Errors
///
/// Propagates socket and serialization errors.
pub fn write_response(mut stream: &TcpStream, response: &Response) -> io::Result<()> {
    let mut line = response.to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_json() {
        let reqs = vec![
            Request::RegisterSource {
                data_addr: "127.0.0.1:9000".parse().unwrap(),
                generations: 3,
                generation_size: 16,
                packet_len: 1024,
                content_len: 40_000,
            },
            Request::Hello { data_addr: "127.0.0.1:1234".parse().unwrap() },
            Request::Goodbye { node: NodeId(3) },
            Request::Complaint {
                child: NodeId(4),
                failed_parent: Some(NodeId(1)),
                thread: 7,
                ctx: None,
            },
            Request::Complaint {
                child: NodeId(4),
                failed_parent: None,
                thread: 0,
                ctx: Some(TraceContext { trace: 0x1234_5678_9abc, span: 42 }),
            },
            Request::Completed { node: NodeId(9) },
            Request::Resync {
                node: NodeId(17),
                data_addr: "127.0.0.1:4444".parse().unwrap(),
                parents: vec![(0, Some(NodeId(2))), (3, None)],
                ctx: Some(TraceContext { trace: 7, span: 9 }),
            },
            Request::Resync {
                node: NodeId(0),
                data_addr: "127.0.0.1:4445".parse().unwrap(),
                parents: vec![],
                ctx: None,
            },
            Request::Stats,
            Request::SnapshotFetch,
            Request::WalTail { after: 0 },
            Request::WalTail { after: u64::MAX >> 1 },
        ];
        for r in reqs {
            let s = r.to_json_line();
            let back = Request::parse_json_line(&s).expect(&s);
            assert_eq!(back, r, "line: {s}");
        }
        let resps = vec![
            Response::Welcome {
                node: NodeId(1),
                generations: 3,
                generation_size: 16,
                packet_len: 1024,
                content_len: 40_000,
                parents: vec![
                    (0, ParentAddr::Source("127.0.0.1:9".parse().unwrap())),
                    (5, ParentAddr::Node(NodeId(2), "127.0.0.1:10".parse().unwrap())),
                ],
            },
            Response::Redirect {
                thread: 7,
                new_parent: ParentAddr::Node(NodeId(8), "127.0.0.1:11".parse().unwrap()),
            },
            Response::Stats { members: 4, completed: 2, repairs: 9 },
            Response::Ok,
            Response::Unavailable { reason: "wal degraded".into() },
            Response::Snapshot {
                seq: 41,
                record: r#"{"rec":"checkpoint","server":"{\"k\":4}"}"#.into(),
            },
            Response::WalSegment {
                last: 44,
                records: vec![
                    r#"{"rec":"goodbye","node":1}"#.into(),
                    r#"{"rec":"splice","node":2}"#.into(),
                ],
            },
            Response::WalSegment { last: 0, records: vec![] },
            Response::Error { reason: "no \"source\" yet\n".into() },
        ];
        for r in resps {
            let s = r.to_json_line();
            let back = Response::parse_json_line(&s).expect(&s);
            assert_eq!(back, r, "line: {s}");
        }
    }

    #[test]
    fn pre_tracing_lines_parse_with_no_context() {
        // A complaint emitted by an older (or untraced) peer carries no
        // trace/span fields; it must keep parsing, as "no context".
        let line = r#"{"req":"complaint","child":4,"failed_parent":1,"thread":7}"#;
        let parsed = Request::parse_json_line(line).unwrap();
        assert_eq!(
            parsed,
            Request::Complaint {
                child: NodeId(4),
                failed_parent: Some(NodeId(1)),
                thread: 7,
                ctx: None,
            }
        );
        // And a traced line round-trips its ids without loss.
        let traced = Request::Complaint {
            child: NodeId(4),
            failed_parent: Some(NodeId(1)),
            thread: 7,
            ctx: Some(TraceContext { trace: u64::MAX >> 1, span: 3 }),
        };
        let s = traced.to_json_line();
        assert!(s.contains("\"trace\""), "line: {s}");
        assert_eq!(Request::parse_json_line(&s).unwrap(), traced);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Request::parse_json_line("not json").is_err());
        assert!(Request::parse_json_line(r#"{"req":"wat"}"#).is_err());
        assert!(Request::parse_json_line(r#"{"node":1}"#).is_err(), "missing tag");
        assert!(Request::parse_json_line(r#"{"req":"goodbye"}"#).is_err(), "missing node");
        assert!(Response::parse_json_line(r#"{"resp":"redirect","thread":1}"#).is_err());
        assert!(
            Request::parse_json_line(r#"{"req":"hello","data_addr":"nonsense"}"#).is_err(),
            "bad addr"
        );
    }

    #[test]
    fn ipv6_addresses_round_trip() {
        let r = Request::Hello { data_addr: "[::1]:8080".parse().unwrap() };
        assert_eq!(Request::parse_json_line(&r.to_json_line()).unwrap(), r);
    }

    #[test]
    fn parent_addr_accessors() {
        let a: SocketAddr = "127.0.0.1:80".parse().unwrap();
        assert_eq!(ParentAddr::Source(a).addr(), a);
        assert_eq!(ParentAddr::Source(a).node(), None);
        assert_eq!(ParentAddr::Node(NodeId(5), a).node(), Some(NodeId(5)));
    }
}
