//! Control-plane messages at `SocketAddr`, plus the blocking TCP call
//! helpers.
//!
//! The protocol itself — message shapes, JSON wire form, parsing — lives
//! in the sans-io core ([`crate::core::ctrl`]), generic over the address
//! type. This module pins it to `std::net::SocketAddr` for the TCP
//! driver (the type aliases keep every existing call site compiling
//! unchanged) and adds the one-connection-per-request I/O:
//! [`call`], [`read_request`], [`write_response`].

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::core::ctrl::{CtrlParent, CtrlRequest, CtrlResponse, WireAddr};

impl WireAddr for SocketAddr {
    fn render(&self) -> String {
        self.to_string()
    }
    fn parse(s: &str) -> Result<Self, String> {
        s.parse().map_err(|e| format!("bad socket address: {e}"))
    }
}

/// Where a stream comes from: the source host or a peer.
pub type ParentAddr = CtrlParent<SocketAddr>;

/// Requests a client may send to the coordinator.
pub type Request = CtrlRequest<SocketAddr>;

/// Responses from the coordinator.
pub type Response = CtrlResponse<SocketAddr>;

fn invalid(e: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

/// Sends one request and reads one response over a fresh connection.
///
/// # Errors
///
/// Propagates socket and serialization errors; the per-call timeout guards
/// both connect and read.
pub fn call(coordinator: SocketAddr, request: &Request, timeout: Duration) -> io::Result<Response> {
    let stream = TcpStream::connect_timeout(&coordinator, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let mut line = request.to_json_line();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    reader.read_line(&mut buf)?;
    if buf.is_empty() {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "empty response"));
    }
    Response::parse_json_line(&buf).map_err(invalid)
}

/// Reads one request line from an accepted control connection.
///
/// # Errors
///
/// Propagates socket and parse errors.
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut buf = String::new();
    reader.read_line(&mut buf)?;
    Request::parse_json_line(&buf).map_err(invalid)
}

/// Writes one response line to an accepted control connection.
///
/// # Errors
///
/// Propagates socket and serialization errors.
pub fn write_response(mut stream: &TcpStream, response: &Response) -> io::Result<()> {
    let mut line = response.to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_overlay::NodeId;
    use curtain_telemetry::TraceContext;

    #[test]
    fn round_trip_json() {
        let reqs = vec![
            Request::RegisterSource {
                data_addr: "127.0.0.1:9000".parse().unwrap(),
                generations: 3,
                generation_size: 16,
                packet_len: 1024,
                content_len: 40_000,
            },
            Request::Hello { data_addr: "127.0.0.1:1234".parse().unwrap() },
            Request::Goodbye { node: NodeId(3) },
            Request::Complaint {
                child: NodeId(4),
                failed_parent: Some(NodeId(1)),
                thread: 7,
                ctx: None,
            },
            Request::Complaint {
                child: NodeId(4),
                failed_parent: None,
                thread: 0,
                ctx: Some(TraceContext { trace: 0x1234_5678_9abc, span: 42 }),
            },
            Request::Completed { node: NodeId(9) },
            Request::Resync {
                node: NodeId(17),
                data_addr: "127.0.0.1:4444".parse().unwrap(),
                parents: vec![(0, Some(NodeId(2))), (3, None)],
                ctx: Some(TraceContext { trace: 7, span: 9 }),
            },
            Request::Resync {
                node: NodeId(0),
                data_addr: "127.0.0.1:4445".parse().unwrap(),
                parents: vec![],
                ctx: None,
            },
            Request::Stats,
            Request::SnapshotFetch,
            Request::WalTail { after: 0 },
            Request::WalTail { after: u64::MAX >> 1 },
        ];
        for r in reqs {
            let s = r.to_json_line();
            let back = Request::parse_json_line(&s).expect(&s);
            assert_eq!(back, r, "line: {s}");
        }
        let resps = vec![
            Response::Welcome {
                node: NodeId(1),
                generations: 3,
                generation_size: 16,
                packet_len: 1024,
                content_len: 40_000,
                parents: vec![
                    (0, ParentAddr::Source("127.0.0.1:9".parse().unwrap())),
                    (5, ParentAddr::Node(NodeId(2), "127.0.0.1:10".parse().unwrap())),
                ],
            },
            Response::Redirect {
                thread: 7,
                new_parent: ParentAddr::Node(NodeId(8), "127.0.0.1:11".parse().unwrap()),
            },
            Response::Stats { members: 4, completed: 2, repairs: 9 },
            Response::Ok,
            Response::Unavailable { reason: "wal degraded".into() },
            Response::Snapshot {
                seq: 41,
                record: r#"{"rec":"checkpoint","server":"{\"k\":4}"}"#.into(),
            },
            Response::WalSegment {
                last: 44,
                records: vec![
                    r#"{"rec":"goodbye","node":1}"#.into(),
                    r#"{"rec":"splice","node":2}"#.into(),
                ],
            },
            Response::WalSegment { last: 0, records: vec![] },
            Response::Error { reason: "no \"source\" yet\n".into() },
        ];
        for r in resps {
            let s = r.to_json_line();
            let back = Response::parse_json_line(&s).expect(&s);
            assert_eq!(back, r, "line: {s}");
        }
    }

    #[test]
    fn pre_tracing_lines_parse_with_no_context() {
        // A complaint emitted by an older (or untraced) peer carries no
        // trace/span fields; it must keep parsing, as "no context".
        let line = r#"{"req":"complaint","child":4,"failed_parent":1,"thread":7}"#;
        let parsed = Request::parse_json_line(line).unwrap();
        assert_eq!(
            parsed,
            Request::Complaint {
                child: NodeId(4),
                failed_parent: Some(NodeId(1)),
                thread: 7,
                ctx: None,
            }
        );
        // And a traced line round-trips its ids without loss.
        let traced = Request::Complaint {
            child: NodeId(4),
            failed_parent: Some(NodeId(1)),
            thread: 7,
            ctx: Some(TraceContext { trace: u64::MAX >> 1, span: 3 }),
        };
        let s = traced.to_json_line();
        assert!(s.contains("\"trace\""), "line: {s}");
        assert_eq!(Request::parse_json_line(&s).unwrap(), traced);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Request::parse_json_line("not json").is_err());
        assert!(Request::parse_json_line(r#"{"req":"wat"}"#).is_err());
        assert!(Request::parse_json_line(r#"{"node":1}"#).is_err(), "missing tag");
        assert!(Request::parse_json_line(r#"{"req":"goodbye"}"#).is_err(), "missing node");
        assert!(Response::parse_json_line(r#"{"resp":"redirect","thread":1}"#).is_err());
        assert!(
            Request::parse_json_line(r#"{"req":"hello","data_addr":"nonsense"}"#).is_err(),
            "bad addr"
        );
    }

    #[test]
    fn ipv6_addresses_round_trip() {
        let r = Request::Hello { data_addr: "[::1]:8080".parse().unwrap() };
        assert_eq!(Request::parse_json_line(&r.to_json_line()).unwrap(), r);
    }

    #[test]
    fn parent_addr_accessors() {
        let a: SocketAddr = "127.0.0.1:80".parse().unwrap();
        assert_eq!(ParentAddr::Source(a).addr(), a);
        assert_eq!(ParentAddr::Source(a).node(), None);
        assert_eq!(ParentAddr::Node(NodeId(5), a).node(), Some(NodeId(5)));
    }
}
