//! The blocking TCP backend: thread-per-connection, production-shaped.
//!
//! This is the transport the `curtain_peer`/`curtain_coordinator`/
//! `curtain_source` bins and every pre-existing soak run on. The peer,
//! source, and coordinator drivers each own an accept loop and a set of
//! per-connection worker threads; the protocol decisions those workers
//! make all live in [`crate::core`] — what remains here is the socket
//! idiom they share:
//!
//! * data-plane listeners are loopback-bound, non-blocking, and polled
//!   via [`poll_accept`] so `stop` flags interrupt the loop promptly;
//! * upstream links dial with a bounded [`dial`] timeout and read with a
//!   short socket timeout so liveness checks (see
//!   [`crate::core::peer::LinkLiveness`]) run even on a silent link.
//!
//! Frames on a TCP stream use the length-prefixed stream framing from
//! [`crate::framing`]; the datagram chunk format in
//! [`crate::core::wire`] is the UDP backend's concern.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// How long the accept poll sleeps when no connection is pending.
pub const ACCEPT_IDLE: Duration = Duration::from_millis(2);

/// Binds a fresh loopback data-plane listener and switches it to
/// non-blocking accepts.
///
/// # Errors
///
/// Propagates bind failures.
pub fn bind_data_listener() -> io::Result<(TcpListener, SocketAddr)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    Ok((listener, addr))
}

/// One non-blocking accept poll: `Ok(Some)` on a connection, `Ok(None)`
/// after sleeping [`ACCEPT_IDLE`] when none is pending (so callers can
/// re-check their stop flag), `Err` on a dead listener.
///
/// # Errors
///
/// Propagates accept failures other than `WouldBlock`.
pub fn poll_accept(listener: &TcpListener) -> io::Result<Option<TcpStream>> {
    match listener.accept() {
        Ok((stream, _)) => Ok(Some(stream)),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
            std::thread::sleep(ACCEPT_IDLE);
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// Dials a data-plane peer with a bounded connect timeout.
///
/// # Errors
///
/// Propagates connect failures and timeouts.
pub fn dial(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    TcpStream::connect_timeout(&addr, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_accept_is_nonblocking_and_delivers_connections() {
        let (listener, addr) = bind_data_listener().expect("bind");
        assert!(poll_accept(&listener).expect("poll").is_none(), "nothing pending yet");
        let _client = dial(addr, Duration::from_secs(2)).expect("dial");
        // The connection may need a beat to land in the accept queue.
        let mut accepted = None;
        for _ in 0..100 {
            if let Some(s) = poll_accept(&listener).expect("poll") {
                accepted = Some(s);
                break;
            }
        }
        assert!(accepted.is_some(), "dialed connection never surfaced");
    }
}
