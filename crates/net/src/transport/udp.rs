//! The UDP datagram backend: coded frames over chunked datagrams.
//!
//! A coded frame (length-prefixed, with its optional trace/window
//! extensions) can exceed a safe datagram size, so the endpoint cuts
//! each encoded frame into MTU-sized chunks
//! ([`crate::core::wire::chunk_message`]) and the receiving side
//! reassembles them ([`crate::core::wire::Reassembler`]) —
//! loss-tolerantly: a missing chunk ages the partial message out of the
//! pending ring, it never yields a corrupt frame. RLNC makes this the
//! right failure mode: any *other* coded packet is an equally good
//! substitute, so a dropped frame costs one packet of redundancy, not a
//! retransmit round-trip.
//!
//! Control datagrams (the subscribe line, the resync nudge) travel as
//! bare JSON lines — distinguishable from chunks because a chunk always
//! starts with [`crate::core::wire::DGRAM_MAGIC`] (`0xC7`), which no
//! JSON document starts with.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

use curtain_rlnc::BufPool;
use curtain_telemetry::TraceContext;

use crate::core::wire::{
    self, chunk_message, parse_data_hello, DataHello, Reassembler, Subscribe, TaggedFrame,
    DGRAM_MAGIC,
};

/// Conservative payload budget per datagram: fits a default 1500-byte
/// MTU with headroom for IP/UDP headers and the chunk header.
pub const DEFAULT_MTU: usize = 1400;

/// Partial messages kept per endpoint before the oldest is evicted.
const PENDING_MESSAGES: usize = 64;

/// What one received datagram turned out to be.
#[derive(Debug)]
pub enum UdpEvent {
    /// A complete coded frame finished reassembling.
    Frame(TaggedFrame),
    /// A control hello: subscribe line or resync nudge.
    Hello(DataHello),
}

/// A bound UDP data-plane endpoint: sends coded frames as chunked
/// datagrams, receives and reassembles them, and carries the subscribe
/// handshake as bare JSON datagrams.
pub struct UdpEndpoint {
    socket: UdpSocket,
    addr: SocketAddr,
    pool: BufPool,
    reassembler: Reassembler,
    mtu: usize,
    next_msg_id: u32,
    recv_buf: Vec<u8>,
}

impl UdpEndpoint {
    /// Binds a fresh loopback endpoint.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind() -> io::Result<Self> {
        Self::bind_with(BufPool::default(), DEFAULT_MTU)
    }

    /// Binds with an explicit buffer pool and MTU (payload budget per
    /// datagram, chunk header included).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_with(pool: BufPool, mtu: usize) -> io::Result<Self> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        let addr = socket.local_addr()?;
        Ok(UdpEndpoint {
            socket,
            addr,
            pool,
            reassembler: Reassembler::new(PENDING_MESSAGES),
            mtu,
            next_msg_id: 1,
            recv_buf: vec![0u8; 65_536],
        })
    }

    /// The bound address (what a subscriber hands out as its reply-to).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bounds how long [`UdpEndpoint::recv`] blocks waiting for a
    /// datagram (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates socket option failures.
    pub fn set_recv_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.socket.set_read_timeout(timeout)
    }

    /// Messages dropped by the reassembler so far (evictions and
    /// poisoned messages — the endpoint's loss counter).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.reassembler.dropped()
    }

    /// Sends one coded frame to `to`, cut into MTU-sized chunks.
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn send_frame(
        &mut self,
        to: SocketAddr,
        packet: &curtain_rlnc::CodedPacket,
        ctx: Option<TraceContext>,
        window_base: Option<u32>,
    ) -> io::Result<()> {
        let encoded = wire::encode_frame_tagged(packet, ctx, window_base);
        let msg_id = self.next_msg_id;
        self.next_msg_id = self.next_msg_id.wrapping_add(1);
        for chunk in chunk_message(msg_id, &encoded, self.mtu) {
            self.socket.send_to(&chunk, to)?;
        }
        Ok(())
    }

    /// Sends a subscribe hello to `to` as one bare JSON datagram.
    ///
    /// # Errors
    ///
    /// Propagates send failures.
    pub fn send_subscribe(&self, to: SocketAddr, sub: Subscribe) -> io::Result<()> {
        self.socket.send_to(sub.to_json_line().as_bytes(), to)?;
        Ok(())
    }

    /// Receives datagrams until one yields an event: a fully reassembled
    /// frame or a control hello. Datagrams that are corrupt, duplicated,
    /// or partial are absorbed silently (the UDP contract); socket
    /// timeouts surface as `WouldBlock`/`TimedOut` errors.
    ///
    /// # Errors
    ///
    /// Propagates socket receive failures (including read timeouts).
    pub fn recv(&mut self) -> io::Result<(SocketAddr, UdpEvent)> {
        loop {
            let (n, from) = self.socket.recv_from(&mut self.recv_buf)?;
            let datagram = &self.recv_buf[..n];
            if datagram.first() == Some(&DGRAM_MAGIC) {
                let Ok(Some(message)) = self.reassembler.accept(datagram) else {
                    continue; // partial, duplicate, or corrupt: wait for more
                };
                match wire::decode_frame_message(&message, &self.pool) {
                    Ok(frame) => return Ok((from, UdpEvent::Frame(frame))),
                    Err(_) => continue, // reassembled to garbage: drop it
                }
            }
            // Not a chunk: try the control-plane hello.
            if let Ok(line) = std::str::from_utf8(datagram) {
                if let Ok(hello) = parse_data_hello(line.trim_end()) {
                    return Ok((from, UdpEvent::Hello(hello)));
                }
            }
            // Unknown datagram: ignore (UDP ports receive strays).
        }
    }
}

impl std::fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("addr", &self.addr)
            .field("pending", &self.reassembler.pending())
            .field("dropped", &self.reassembler.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::peer::ObjectState;
    use curtain_overlay::NodeId;
    use curtain_rlnc::pipeline::{ObjectEncoder, Schedule};
    use curtain_rlnc::Content;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const T: Duration = Duration::from_secs(5);

    /// A full object crosses real UDP sockets: the subscribe hello goes
    /// over as a control datagram, every coded frame is chunked (the
    /// packet length forces multiple chunks per frame), and the receiving
    /// [`ObjectState`] decodes the object exactly.
    #[test]
    fn object_transfer_over_udp_sockets_decodes_exactly() {
        let content: Vec<u8> = (0..16 * 2048).map(|i| (i * 13 % 251) as u8).collect();
        let split = Content::split(&content, 16, 2048);
        let generations = split.generations().len();
        let mut encoder = ObjectEncoder::new(split).with_schedule(Schedule::RoundRobin);
        let mut rng = StdRng::seed_from_u64(0xBEEF);

        let mut server = UdpEndpoint::bind().expect("server bind");
        let mut client = UdpEndpoint::bind().expect("client bind");
        server.set_recv_timeout(Some(T)).unwrap();
        client.set_recv_timeout(Some(T)).unwrap();

        client
            .send_subscribe(server.addr(), Subscribe { node: NodeId(42), thread: 3 })
            .expect("subscribe");
        let (subscriber, event) = server.recv().expect("server hears the subscribe");
        assert_eq!(subscriber, client.addr());
        match event {
            UdpEvent::Hello(DataHello::Subscribe(sub)) => {
                assert_eq!(sub.node, NodeId(42));
                assert_eq!(sub.thread, 3);
            }
            other => panic!("expected subscribe, got {other:?}"),
        }

        // Serve more than enough coded frames; 2048-byte packets need two
        // chunks each at the default MTU.
        let mut state = ObjectState::new(generations, 16, 2048);
        for _ in 0..generations * 16 + 8 {
            let packet = encoder.next_packet(&mut rng);
            server.send_frame(subscriber, &packet, None, None).expect("send frame");
            if let Ok((_, UdpEvent::Frame((packet, ctx, base)))) = client.recv() {
                assert_eq!(ctx, None);
                assert_eq!(base, None);
                state.push(packet);
            }
            if state.is_complete() {
                break;
            }
        }
        assert!(state.is_complete(), "object never completed over UDP");
        let decoded: Vec<u8> =
            state.recover_all().unwrap().into_iter().flatten().flatten().collect();
        assert_eq!(&decoded[..content.len()], &content[..]);
    }

    /// Extensions survive the chunk/reassemble path: a traced, windowed
    /// frame arrives with both extensions intact.
    #[test]
    fn trace_and_window_extensions_cross_udp() {
        let content: Vec<u8> = (0..=255).collect();
        let split = Content::split(&content, 4, 64);
        let mut encoder = ObjectEncoder::new(split);
        let mut rng = StdRng::seed_from_u64(7);

        let mut sender = UdpEndpoint::bind().expect("bind");
        let mut receiver = UdpEndpoint::bind().expect("bind");
        receiver.set_recv_timeout(Some(T)).unwrap();

        let ctx = TraceContext::root();
        let packet = encoder.next_packet(&mut rng);
        sender.send_frame(receiver.addr(), &packet, Some(ctx), Some(9)).expect("send");
        let (_, event) = receiver.recv().expect("recv");
        match event {
            UdpEvent::Frame((got, got_ctx, got_base)) => {
                assert_eq!(got.generation(), packet.generation());
                assert_eq!(got_ctx, Some(ctx));
                assert_eq!(got_base, Some(9));
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }
}
