//! The in-process virtual network: thousands of real-protocol peers,
//! one OS process, zero sockets, zero wall clock.
//!
//! The vnet is a deterministic discrete-event simulator that drives the
//! *same* sans-io cores the TCP driver runs — [`ObjectState`] decodes,
//! [`LinkLiveness`] declares stalls, [`RepairPolicy`] paces complaint
//! episodes, and a real [`ControlCore`] (over the virtual address type
//! [`VAddr`]) grants hellos, splices failures, and readmits resyncs.
//! Every coded frame really crosses the wire format
//! ([`wire::encode_frame_tagged`] / [`wire::decode_frame_message`]), so
//! a framing bug shows up here before it shows up on a socket.
//!
//! What the simulator replaces is only the *world*: time is a virtual
//! microsecond counter, links have configurable latency / loss /
//! bandwidth ([`LinkProfile`]) plus hard cuts, and all scheduling runs
//! off one seeded RNG through a binary heap whose ties break on
//! insertion order. Two runs of the same scenario at the same seed
//! produce byte-identical journals — the property the `vnet-scale` CI
//! job and the `e22` lab sweep diff on.
//!
//! Faults are first-class: [`World::kill_peer`] is a crash (no
//! goodbye — children must detect the stall and repair through the
//! coordinator), [`World::cut_link`] severs one directed edge while
//! both ends stay up, and [`World::coordinator_amnesia`] swaps in a
//! fresh [`ControlCore`] that has never heard of anyone, exercising the
//! unknown-child → resync readmission path at scale.
//!
//! The headline metric is *defect time*: for every (peer, thread)
//! subscription the world integrates the time between a parent's
//! failure (or link cut) and the moment coded frames flow again. The
//! ratio `defect_us / alive_us` is the steady-state defect probability
//! the paper bounds independently of N — what `e22` gates across
//! N ∈ {100, 300, 1000}.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::time::Duration;

use curtain_overlay::{NodeId, OverlayConfig, ThreadId};
use curtain_rlnc::pipeline::{ObjectEncoder, Schedule};
use curtain_rlnc::{BufPool, Content};
use curtain_telemetry::SharedRecorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::core::coordinator::{ControlCore, CoreOutcome};
use crate::core::ctrl::{CtrlParent, CtrlRequest, CtrlResponse, WireAddr};
use crate::core::peer::{LinkLiveness, ObjectState};
use crate::core::repair::RepairPolicy;
use crate::core::standby::{FollowDirective, FollowEvent, FollowStep, FollowerCore};
use crate::core::wire;

/// A virtual address: `0` is the source, peers count up from `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VAddr(pub u32);

/// The source's well-known virtual address.
pub const SOURCE_ADDR: VAddr = VAddr(0);

impl WireAddr for VAddr {
    fn render(&self) -> String {
        format!("v{}", self.0)
    }

    fn parse(s: &str) -> Result<Self, String> {
        s.strip_prefix('v')
            .and_then(|n| n.parse().ok())
            .map(VAddr)
            .ok_or_else(|| format!("bad virtual address {s:?}"))
    }
}

impl std::fmt::Display for VAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Shaping for one direction of one link (or the world default).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// One-way propagation delay in virtual microseconds.
    pub latency_us: u64,
    /// Independent per-frame loss probability in `[0, 1]`.
    pub loss: f64,
    /// Serialization rate in bytes per virtual second; `0` = infinite.
    pub bandwidth_bps: u64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile { latency_us: 500, loss: 0.0, bandwidth_bps: 0 }
    }
}

impl LinkProfile {
    /// Total virtual delay for a frame of `bytes` on this link.
    fn delay_us(&self, bytes: usize) -> u64 {
        let serialize = if self.bandwidth_bps == 0 {
            0
        } else {
            (bytes as u64).saturating_mul(1_000_000) / self.bandwidth_bps
        };
        self.latency_us.saturating_add(serialize)
    }
}

/// Scenario shape: the overlay geometry, the object, and the pacing.
#[derive(Debug, Clone)]
pub struct VnetConfig {
    /// Overlay geometry (`k` threads, `d` threads per node).
    pub overlay: OverlayConfig,
    /// Number of generations the object is split into.
    pub generations: usize,
    /// Packets per generation.
    pub generation_size: usize,
    /// Bytes per packet.
    pub packet_len: usize,
    /// Virtual microseconds between coded frames on one subscription.
    pub pace_us: u64,
    /// The repair policy every peer runs (stall timeout, complaint
    /// backoff, episode deadline).
    pub policy: RepairPolicy,
}

impl Default for VnetConfig {
    fn default() -> Self {
        VnetConfig {
            overlay: OverlayConfig::new(8, 2),
            generations: 2,
            generation_size: 8,
            packet_len: 64,
            pace_us: 2_000,
            policy: RepairPolicy {
                // Virtual time is free: keep the TCP schedule's shape but
                // let episodes resolve within a short soak.
                initial_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(500),
                jitter: 0.25,
                deadline: Duration::from_secs(8),
                window: Duration::from_secs(10),
                window_budget: 32,
                stall_timeout: Duration::from_millis(100),
            },
        }
    }
}

/// One (child, thread) upstream subscription.
#[derive(Debug)]
struct UpLink {
    parent: CtrlParent<VAddr>,
    /// Bumped on every resubscribe; events carrying a stale epoch are
    /// timers from a previous parent and are dropped.
    epoch: u64,
    liveness: LinkLiveness,
    /// Per-subscription generation cursor. Each link rotates through
    /// the generations *independently*: a shared cursor in a
    /// deterministic scheduler parity-locks (with two generations and
    /// two children, each child would see only one generation forever —
    /// TCP breaks the lock with scheduling jitter and per-subscriber
    /// encoders, the vnet must break it structurally).
    serve_gen: u64,
    /// `Some(attempt)` while a repair episode is running.
    repair: Option<RepairEpisode>,
    /// When the current defect began (parent died, link cut, or stall
    /// detected) — cleared when frames flow again.
    defect_since: Option<u64>,
    /// A gave-up episode leaves the thread permanently dead.
    dead: bool,
}

#[derive(Debug)]
struct RepairEpisode {
    started_us: u64,
    attempt: u32,
}

/// One simulated peer: a real [`ObjectState`] plus its upstream links.
struct PeerActor {
    node: NodeId,
    addr: VAddr,
    state: ObjectState,
    links: BTreeMap<ThreadId, UpLink>,
    joined_at_us: u64,
    /// Set when the object fully decodes. A complete peer's upstream
    /// subscriptions quiesce (production bins leave their parents after
    /// `wait_complete`), but it keeps serving its own children — and it
    /// stops accruing alive/defect time: a peer owed nothing cannot be
    /// defective.
    completed_at_us: Option<u64>,
}

impl PeerActor {
    /// The end of this peer's service interval so far.
    fn served_until(&self, now: u64) -> u64 {
        self.completed_at_us.unwrap_or(now)
    }
}

/// A scheduled event. Orders by `(t_us, seq)`: virtual time first,
/// insertion order as the deterministic tiebreak.
#[derive(Debug, PartialEq, Eq)]
struct QEv {
    t_us: u64,
    seq: u64,
    ev: Ev,
}

impl Ord for QEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t_us, self.seq).cmp(&(other.t_us, other.seq))
    }
}

impl PartialOrd for QEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Ev {
    /// A parent owes `child` the next coded frame on a subscription.
    Emit { child: VAddr, thread: ThreadId, epoch: u64 },
    /// An encoded frame arrives at `child` after the link delay.
    Deliver { child: VAddr, thread: ThreadId, epoch: u64, frame: Vec<u8> },
    /// Periodic stall check for one subscription.
    Liveness { child: VAddr, thread: ThreadId, epoch: u64 },
    /// The next complaint attempt of a running repair episode.
    RepairTick { child: VAddr, thread: ThreadId, epoch: u64 },
    /// The standby's next bootstrap/tail poll (see [`World::start_standby`]).
    FollowerPoll { gen: u64 },
}

/// Counters the world accumulates; see [`World::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Coded frames delivered (decoded by a peer's `ObjectState`).
    pub frames_delivered: u64,
    /// Frames dropped by link loss or cuts.
    pub frames_lost: u64,
    /// Repair episodes that ended in a successful resubscribe.
    pub repairs: u64,
    /// Repair episodes that exhausted their deadline.
    pub gave_up: u64,
    /// Resync readmissions (unknown-child recoveries).
    pub resyncs: u64,
    /// Peers that reported full decode.
    pub completed: u64,
}

/// A defect-time reading at one instant; subtract two to get the
/// defect probability over a window (see [`World::defect_report`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefectReport {
    /// Integrated (peer, thread) defect time, in-flight defects included.
    pub defect_us: u64,
    /// Integrated (peer, thread) alive time.
    pub alive_us: u64,
}

impl DefectReport {
    /// `defect_us / alive_us` — the steady-state defect probability.
    #[must_use]
    pub fn probability(&self) -> f64 {
        if self.alive_us == 0 {
            0.0
        } else {
            self.defect_us as f64 / self.alive_us as f64
        }
    }

    /// The window between an earlier reading and this one.
    #[must_use]
    pub fn since(&self, earlier: &DefectReport) -> DefectReport {
        DefectReport {
            defect_us: self.defect_us.saturating_sub(earlier.defect_us),
            alive_us: self.alive_us.saturating_sub(earlier.alive_us),
        }
    }
}

/// The virtual world. See the module docs for the model.
pub struct World {
    cfg: VnetConfig,
    clock_us: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<QEv>>,
    rng: StdRng,
    control: ControlCore<VAddr>,
    control_seed: u64,
    /// `false` after [`World::crash_coordinator`] until a standby
    /// promotes: control requests go unanswered.
    coordinator_up: bool,
    /// Commit sequence proxy: bumps per control mutation, feeds the
    /// follower's `Bootstrapped`/`Tailed` events.
    commit_seq: u64,
    follower: Option<FollowerCore>,
    /// Guards stale poll timers after a promote replaces the follower.
    follower_gen: u64,
    content: Vec<u8>,
    encoder: ObjectEncoder,
    peers: BTreeMap<VAddr, PeerActor>,
    /// Peers that died; kept so late events resolve deterministically.
    dead: BTreeSet<VAddr>,
    node_to_addr: BTreeMap<NodeId, VAddr>,
    next_addr: u32,
    default_link: LinkProfile,
    link_overrides: BTreeMap<(VAddr, VAddr), LinkProfile>,
    cuts: BTreeSet<(VAddr, VAddr)>,
    pool: BufPool,
    stats: WorldStats,
    /// Closed defect intervals (completed repairs, healed cuts).
    defect_us_closed: u64,
    /// Closed alive-thread time (links of peers that died).
    alive_us_closed: u64,
    journal: Vec<String>,
}

impl World {
    /// Builds a world, registers the source at [`SOURCE_ADDR`], and
    /// prepares `content` for serving.
    ///
    /// # Panics
    ///
    /// Panics if the control core rejects its own configuration or the
    /// source registration — a scenario bug, not a runtime outcome.
    #[must_use]
    pub fn new(seed: u64, cfg: VnetConfig, content: &[u8]) -> World {
        let split = Content::split(content, cfg.generation_size, cfg.packet_len);
        let generations = split.generations().len();
        assert_eq!(
            generations, cfg.generations,
            "content shape disagrees with VnetConfig.generations"
        );
        let control = ControlCore::new(cfg.overlay, seed ^ 0xC0DE, SharedRecorder::null())
            .expect("overlay config");
        let encoder = ObjectEncoder::new(split).with_schedule(Schedule::RoundRobin);
        let mut world = World {
            cfg,
            clock_us: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            control,
            control_seed: seed ^ 0xC0DE,
            coordinator_up: true,
            commit_seq: 0,
            follower: None,
            follower_gen: 0,
            content: content.to_vec(),
            encoder,
            peers: BTreeMap::new(),
            dead: BTreeSet::new(),
            node_to_addr: BTreeMap::new(),
            next_addr: 1,
            default_link: LinkProfile::default(),
            link_overrides: BTreeMap::new(),
            cuts: BTreeSet::new(),
            pool: BufPool::default(),
            stats: WorldStats::default(),
            defect_us_closed: 0,
            alive_us_closed: 0,
            journal: Vec::new(),
        };
        let outcome = world.control.dispatch(CtrlRequest::RegisterSource {
            data_addr: SOURCE_ADDR,
            generations: world.cfg.generations,
            generation_size: world.cfg.generation_size,
            packet_len: world.cfg.packet_len,
            content_len: content.len(),
        });
        assert!(
            matches!(outcome, CoreOutcome::Done { response: CtrlResponse::Ok, .. }),
            "source registration refused"
        );
        world
    }

    /// Current virtual time in microseconds.
    #[must_use]
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// The deterministic event journal (one line per protocol event,
    /// virtual timestamps only — byte-identical across reruns at the
    /// same seed).
    #[must_use]
    pub fn journal(&self) -> &[String] {
        &self.journal
    }

    /// Sets the default link shaping for every edge without an override.
    pub fn set_default_link(&mut self, profile: LinkProfile) {
        self.default_link = profile;
    }

    /// Overrides shaping for the directed edge `from → to`.
    pub fn shape_link(&mut self, from: VAddr, to: VAddr, profile: LinkProfile) {
        self.link_overrides.insert((from, to), profile);
    }

    /// Severs the directed edge `from → to`: frames sent on it vanish
    /// while both ends stay up. Starts defect accounting for any
    /// subscription riding the edge.
    pub fn cut_link(&mut self, from: VAddr, to: VAddr) {
        if !self.cuts.insert((from, to)) {
            return;
        }
        let now = self.clock_us;
        if let Some(peer) = self.peers.get_mut(&to) {
            if peer.completed_at_us.is_none() {
                for link in peer.links.values_mut() {
                    if link.parent.addr() == from && !link.dead {
                        link.defect_since.get_or_insert(now);
                    }
                }
            }
        }
        self.journal.push(format!("t={now} cut {from}->{to}"));
    }

    /// Restores a previously cut edge. Defect accounting closes when
    /// frames actually flow again, not here.
    pub fn heal_link(&mut self, from: VAddr, to: VAddr) {
        if self.cuts.remove(&(from, to)) {
            self.journal.push(format!("t={} heal {from}->{to}", self.clock_us));
        }
    }

    /// Number of live peers.
    #[must_use]
    pub fn alive(&self) -> usize {
        self.peers.len()
    }

    /// Live peers whose object has fully decoded.
    #[must_use]
    pub fn complete(&self) -> usize {
        self.peers.values().filter(|p| p.state.is_complete()).count()
    }

    /// The decoded object of a live peer, exact to `content_len`.
    #[must_use]
    pub fn decoded_content(&self, node: NodeId) -> Option<Vec<u8>> {
        let addr = self.node_to_addr.get(&node)?;
        let peer = self.peers.get(addr)?;
        let mut bytes: Vec<u8> =
            peer.state.recover_all()?.into_iter().flatten().flatten().collect();
        bytes.truncate(self.content.len());
        Some(bytes)
    }

    /// Live peer addresses, ascending (the deterministic kill-pool).
    #[must_use]
    pub fn peer_addrs(&self) -> Vec<VAddr> {
        self.peers.keys().copied().collect()
    }

    /// Live peer nodes in ascending address order, the deterministic
    /// victim pool for scenario churn. `true` in the pair marks a peer
    /// whose object has fully decoded.
    #[must_use]
    pub fn alive_nodes(&self) -> Vec<(NodeId, bool)> {
        self.peers.values().map(|p| (p.node, p.state.is_complete())).collect()
    }

    /// The first live peer (ascending address order) that currently
    /// serves another live peer — the deterministic choice of a victim
    /// whose death forces a repair episode.
    #[must_use]
    pub fn a_serving_peer(&self) -> Option<NodeId> {
        self.peers
            .values()
            .flat_map(|p| p.links.values())
            .filter_map(|l| l.parent.node())
            .filter(|n| self.node_to_addr.contains_key(n))
            .min_by_key(|n| self.node_to_addr[n])
    }

    /// One line per live peer — rank, completion, and the current
    /// thread→parent map. For scenario debugging and soak reports.
    #[must_use]
    pub fn dump_peers(&self) -> Vec<String> {
        self.peers
            .values()
            .map(|p| {
                let links: Vec<String> = p
                    .links
                    .iter()
                    .map(|(t, l)| {
                        let mark = if l.dead {
                            "!"
                        } else if l.repair.is_some() {
                            "~"
                        } else {
                            ""
                        };
                        format!("{t}:{}{mark}", l.parent.addr())
                    })
                    .collect();
                format!(
                    "node={} addr={} rank={} complete={} links=[{}]",
                    p.node,
                    p.addr,
                    p.state.rank(),
                    p.state.is_complete(),
                    links.join(",")
                )
            })
            .collect()
    }

    /// The defect-time reading at the current instant. In-flight
    /// defects and live subscriptions contribute up to `now`, so two
    /// readings bracket a window exactly.
    #[must_use]
    pub fn defect_report(&self) -> DefectReport {
        let now = self.clock_us;
        let mut defect = self.defect_us_closed;
        let mut alive = self.alive_us_closed;
        for peer in self.peers.values() {
            let until = peer.served_until(now);
            for link in peer.links.values() {
                alive += until - peer.joined_at_us;
                if let Some(since) = link.defect_since {
                    defect += until.max(since) - since;
                }
            }
        }
        DefectReport { defect_us: defect, alive_us: alive }
    }

    /// Joins one fresh peer through the hello protocol and schedules
    /// its subscriptions.
    ///
    /// # Panics
    ///
    /// Panics if the hello is refused (no source — a scenario bug).
    pub fn join_peer(&mut self) -> NodeId {
        assert!(self.coordinator_up, "cannot join while the coordinator is down");
        let addr = VAddr(self.next_addr);
        self.next_addr += 1;
        let outcome = self.control.dispatch(CtrlRequest::Hello { data_addr: addr });
        let CoreOutcome::Done {
            response:
                CtrlResponse::Welcome {
                    node, generations, generation_size, packet_len, parents, ..
                },
            ..
        } = outcome
        else {
            panic!("hello refused");
        };
        let now = self.clock_us;
        let mut actor = PeerActor {
            node,
            addr,
            state: ObjectState::with_pool(
                generations,
                generation_size,
                packet_len,
                self.pool.clone(),
            ),
            links: BTreeMap::new(),
            joined_at_us: now,
            completed_at_us: None,
        };
        let parent_list: Vec<String> =
            parents.iter().map(|(t, p)| format!("{t}:{}", p.addr())).collect();
        for (thread, parent) in parents {
            actor.links.insert(
                thread,
                UpLink {
                    parent,
                    epoch: 0,
                    liveness: LinkLiveness::new(self.cfg.policy.stall_timeout, now),
                    serve_gen: 0,
                    repair: None,
                    defect_since: None,
                    dead: false,
                },
            );
            self.push_ev(
                now + self.cfg.pace_us,
                Ev::Emit { child: addr, thread, epoch: 0 },
            );
            self.push_ev(
                now + self.stall_us(),
                Ev::Liveness { child: addr, thread, epoch: 0 },
            );
        }
        self.node_to_addr.insert(node, addr);
        self.journal.push(format!(
            "t={now} join node={node} addr={addr} parents=[{}]",
            parent_list.join(",")
        ));
        self.peers.insert(addr, actor);
        node
    }

    /// Crashes a peer: no goodbye, its subscriptions just go silent.
    /// Children detect the stall and repair through the coordinator;
    /// the coordinator learns of the death from their complaints.
    pub fn kill_peer(&mut self, node: NodeId) {
        let Some(addr) = self.node_to_addr.remove(&node) else { return };
        let Some(actor) = self.peers.remove(&addr) else { return };
        let now = self.clock_us;
        // Close the actor's own books: alive time for every link up to
        // completion (or death), plus any defect still open.
        let until = actor.served_until(now);
        for link in actor.links.values() {
            self.alive_us_closed += until - actor.joined_at_us;
            if let Some(since) = link.defect_since {
                self.defect_us_closed += until.max(since) - since;
            }
        }
        self.dead.insert(addr);
        // Incomplete children subscribed to the corpse start their
        // defect clock at the moment of death, even though they only
        // notice at the next stall check.
        for peer in self.peers.values_mut() {
            if peer.completed_at_us.is_some() {
                continue;
            }
            for link in peer.links.values_mut() {
                if link.parent.addr() == addr && !link.dead {
                    link.defect_since.get_or_insert(now);
                }
            }
        }
        self.journal.push(format!("t={now} kill node={node} addr={addr}"));
    }

    /// Dispatches one control request, or `None` while the coordinator
    /// is down (a crashed control plane answers nothing). Successful
    /// mutations advance the commit sequence the standby tails.
    fn control_dispatch(&mut self, request: CtrlRequest<VAddr>) -> Option<CoreOutcome<VAddr>> {
        if !self.coordinator_up {
            return None;
        }
        let outcome = self.control.dispatch(request);
        if let CoreOutcome::Done { effects, .. } = &outcome {
            self.commit_seq += effects.len() as u64;
        }
        Some(outcome)
    }

    /// Attaches a warm standby: a [`FollowerCore`] polled on the
    /// virtual clock. When [`World::crash_coordinator`] silences the
    /// control plane, `fail_threshold` consecutive failed polls promote
    /// the standby — installing a successor core that kept the durable
    /// prefix (the source registration) but lost the un-shipped tail,
    /// so every surviving peer re-enters through the resync path. That
    /// readmission load is exactly what promotion can create at scale.
    pub fn start_standby(&mut self, poll_interval: Duration, fail_threshold: u32) {
        self.follower = Some(FollowerCore::new(poll_interval, fail_threshold));
        self.follower_gen += 1;
        let gen = self.follower_gen;
        self.push_ev(self.clock_us, Ev::FollowerPoll { gen });
        self.journal.push(format!("t={} standby", self.clock_us));
    }

    /// Crashes the coordinator: control requests go unanswered until a
    /// standby (see [`World::start_standby`]) promotes. Repair episodes
    /// keep retrying on their backoff schedule, exactly as the TCP
    /// driver does against a dead control port.
    pub fn crash_coordinator(&mut self) {
        self.coordinator_up = false;
        self.journal.push(format!("t={} coordinator_crash", self.clock_us));
    }

    /// Whether the control plane currently answers.
    #[must_use]
    pub fn coordinator_up(&self) -> bool {
        self.coordinator_up
    }

    fn on_follower_poll(&mut self, gen: u64) {
        if gen != self.follower_gen {
            return;
        }
        let Some(core) = self.follower.as_mut() else { return };
        let event = if self.coordinator_up {
            match core.next_step() {
                FollowStep::Bootstrap => FollowEvent::Bootstrapped { seq: self.commit_seq },
                FollowStep::Tail { .. } => FollowEvent::Tailed { last: self.commit_seq },
            }
        } else {
            FollowEvent::Failed
        };
        match core.on(event) {
            FollowDirective::Continue { sleep } => {
                let t = self.clock_us
                    + u64::try_from(sleep.as_micros()).unwrap_or(u64::MAX).max(1);
                self.push_ev(t, Ev::FollowerPoll { gen });
            }
            FollowDirective::Promote => self.promote_standby(),
        }
    }

    /// The standby takes over: a successor [`ControlCore`] with the
    /// durable prefix (source registration) but none of the peer rows —
    /// the worst-case un-shipped tail. Survivors readmit themselves via
    /// resync on their next complaint.
    fn promote_standby(&mut self) {
        self.follower = None;
        self.follower_gen += 1;
        self.control_seed = self.control_seed.wrapping_add(1);
        self.control =
            ControlCore::new(self.cfg.overlay, self.control_seed, SharedRecorder::null())
                .expect("overlay config");
        let outcome = self.control.dispatch(CtrlRequest::RegisterSource {
            data_addr: SOURCE_ADDR,
            generations: self.cfg.generations,
            generation_size: self.cfg.generation_size,
            packet_len: self.cfg.packet_len,
            content_len: self.content.len(),
        });
        assert!(
            matches!(outcome, CoreOutcome::Done { response: CtrlResponse::Ok, .. }),
            "promoted core refused the source registration"
        );
        self.coordinator_up = true;
        self.journal.push(format!("t={} promote", self.clock_us));
    }

    /// Replaces the coordinator with a fresh core that has never heard
    /// of anyone, then re-registers the source (its restart behavior).
    /// Peers discover the amnesia on their next complaint ("unknown
    /// child") and readmit themselves through the resync path.
    ///
    /// # Panics
    ///
    /// Panics if the fresh core refuses the configuration or the
    /// re-registration — a scenario bug.
    pub fn coordinator_amnesia(&mut self) {
        self.control_seed = self.control_seed.wrapping_add(1);
        self.control =
            ControlCore::new(self.cfg.overlay, self.control_seed, SharedRecorder::null())
                .expect("overlay config");
        let outcome = self.control.dispatch(CtrlRequest::RegisterSource {
            data_addr: SOURCE_ADDR,
            generations: self.cfg.generations,
            generation_size: self.cfg.generation_size,
            packet_len: self.cfg.packet_len,
            content_len: self.content.len(),
        });
        assert!(
            matches!(outcome, CoreOutcome::Done { response: CtrlResponse::Ok, .. }),
            "source re-registration refused"
        );
        self.journal.push(format!("t={} amnesia", self.clock_us));
    }

    /// Runs the event loop for `dur_us` of virtual time.
    pub fn run_for(&mut self, dur_us: u64) {
        self.run_until(self.clock_us + dur_us);
    }

    /// Runs the event loop until the virtual clock reaches `t_us`.
    pub fn run_until(&mut self, t_us: u64) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.t_us > t_us {
                break;
            }
            let Some(Reverse(ev)) = self.queue.pop() else { break };
            self.clock_us = ev.t_us;
            self.handle(ev.ev);
        }
        self.clock_us = t_us;
    }

    /// Runs until every live peer decoded the object or the virtual
    /// clock hits `deadline_us`; returns whether all completed.
    pub fn run_until_all_complete(&mut self, deadline_us: u64) -> bool {
        while self.clock_us < deadline_us {
            if self.peers.values().all(|p| p.state.is_complete()) {
                return true;
            }
            let step = (deadline_us - self.clock_us).min(10 * self.cfg.pace_us);
            self.run_for(step);
        }
        self.peers.values().all(|p| p.state.is_complete())
    }

    fn stall_us(&self) -> u64 {
        u64::try_from(self.cfg.policy.stall_timeout.as_micros()).unwrap_or(u64::MAX)
    }

    fn push_ev(&mut self, t_us: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QEv { t_us, seq, ev }));
    }

    fn profile(&self, from: VAddr, to: VAddr) -> LinkProfile {
        self.link_overrides.get(&(from, to)).copied().unwrap_or(self.default_link)
    }

    /// One coded frame from `parent` for the (child, thread) link, or
    /// `None` when the parent has nothing to serve yet (rank 0).
    /// `counter` is the subscription's own generation cursor — see
    /// [`UpLink::serve_gen`] for why rotation must be per-link.
    fn produce_frame(&mut self, parent: &CtrlParent<VAddr>, counter: u64) -> Option<Vec<u8>> {
        match parent {
            CtrlParent::Source(_) => {
                let g = (counter % self.cfg.generations as u64) as u32;
                let packet = self.encoder.packet_for(g, &mut self.rng);
                Some(wire::encode_frame_tagged(&packet, None, None))
            }
            CtrlParent::Node(_, addr) => {
                let snapshot = {
                    let state = &mut self.peers.get_mut(addr)?.state;
                    let n = state.recoders.len();
                    let mut found = None;
                    for probe in 0..n {
                        let g = (counter as usize + probe) % n;
                        if g >= state.window_base && state.recoders[g].rank() > 0 {
                            found = Some(state.recoders[g].snapshot());
                            break;
                        }
                    }
                    found?
                };
                let packet = snapshot.recode(&mut self.rng)?;
                Some(wire::encode_frame_tagged(&packet, None, None))
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Emit { child, thread, epoch } => self.on_emit(child, thread, epoch),
            Ev::Deliver { child, thread, epoch, frame } => {
                self.on_deliver(child, thread, epoch, &frame);
            }
            Ev::Liveness { child, thread, epoch } => {
                self.on_liveness(child, thread, epoch);
            }
            Ev::RepairTick { child, thread, epoch } => {
                self.on_repair_tick(child, thread, epoch);
            }
            Ev::FollowerPoll { gen } => self.on_follower_poll(gen),
        }
    }

    /// Is this event's (child, thread, epoch) still the live
    /// subscription it was scheduled for? Completion retires every
    /// upstream subscription, so pending timers die here.
    fn link_current(&self, child: VAddr, thread: ThreadId, epoch: u64) -> bool {
        self.peers.get(&child).is_some_and(|p| {
            p.completed_at_us.is_none()
                && p.links.get(&thread).is_some_and(|l| l.epoch == epoch && !l.dead)
        })
    }

    fn on_emit(&mut self, child: VAddr, thread: ThreadId, epoch: u64) {
        if !self.link_current(child, thread, epoch) {
            return;
        }
        let parent = self.peers[&child].links[&thread].parent;
        let parent_addr = parent.addr();
        // A dead parent stops serving: the emission timer dies with it.
        // (The child's liveness check takes over from here.)
        if self.dead.contains(&parent_addr) {
            return;
        }
        let next = self.clock_us + self.cfg.pace_us;
        if self.cuts.contains(&(parent_addr, child)) {
            // The parent keeps writing into the void — it cannot know.
            self.stats.frames_lost += 1;
            self.push_ev(next, Ev::Emit { child, thread, epoch });
            return;
        }
        let profile = self.profile(parent_addr, child);
        if profile.loss > 0.0 && self.rng.random::<f64>() < profile.loss {
            self.stats.frames_lost += 1;
            self.push_ev(next, Ev::Emit { child, thread, epoch });
            return;
        }
        let counter = {
            let link = self
                .peers
                .get_mut(&child)
                .and_then(|p| p.links.get_mut(&thread))
                .expect("link_current checked");
            let c = link.serve_gen;
            link.serve_gen += 1;
            c
        };
        if let Some(frame) = self.produce_frame(&parent, counter) {
            let delay = profile.delay_us(frame.len());
            self.push_ev(
                self.clock_us + delay,
                Ev::Deliver { child, thread, epoch, frame },
            );
        }
        // Rank-0 parents emit nothing but stay subscribed; the next
        // tick may find them innovative.
        self.push_ev(next, Ev::Emit { child, thread, epoch });
    }

    fn on_deliver(&mut self, child: VAddr, thread: ThreadId, epoch: u64, frame: &[u8]) {
        if !self.link_current(child, thread, epoch) {
            return;
        }
        let Ok((packet, _ctx, _base)) = wire::decode_frame_message(frame, &self.pool) else {
            return;
        };
        let now = self.clock_us;
        let mut completed_node = None;
        {
            let peer = self.peers.get_mut(&child).expect("link_current checked");
            let was_complete = peer.state.is_complete();
            peer.state.push(packet);
            self.stats.frames_delivered += 1;
            let link = peer.links.get_mut(&thread).expect("link_current checked");
            link.liveness.on_data(now);
            // Frames flowing again closes any open defect (a healed cut
            // or a stall that resolved without repair) and cancels a
            // pending episode.
            if let Some(since) = link.defect_since.take() {
                self.defect_us_closed += now - since;
                if link.repair.take().is_some() {
                    self.journal
                        .push(format!("t={now} recovered node={} thread={thread}", peer.node));
                }
            }
            if !was_complete && peer.state.is_complete() {
                completed_node = Some(peer.node);
                // Completion retires the upstream subscriptions: close
                // any open defect (owed nothing from here on) and let
                // pending timers die against `link_current`.
                peer.completed_at_us = Some(now);
                for l in peer.links.values_mut() {
                    l.repair = None;
                    if let Some(since) = l.defect_since.take() {
                        self.defect_us_closed += now - since;
                    }
                }
            }
        }
        if let Some(node) = completed_node {
            self.stats.completed += 1;
            self.journal.push(format!("t={now} complete node={node}"));
            // Report completion; an amnesiac coordinator answers Ok
            // regardless and a dead one answers nothing — either way
            // the response needs no handling.
            let _ = self.control_dispatch(CtrlRequest::Completed { node });
        }
    }

    fn on_liveness(&mut self, child: VAddr, thread: ThreadId, epoch: u64) {
        if !self.link_current(child, thread, epoch) {
            return;
        }
        let now = self.clock_us;
        let next = now + self.stall_us();
        let (node, stalled, episode_running) = {
            let peer = self.peers.get(&child).expect("link_current checked");
            let link = &peer.links[&thread];
            (
                peer.node,
                link.liveness.is_stalled(now, peer.state.is_complete()),
                link.repair.is_some(),
            )
        };
        if stalled && !episode_running {
            let backoff = self.cfg.policy.backoff(0, &mut self.rng);
            let peer = self.peers.get_mut(&child).expect("link_current checked");
            let link = peer.links.get_mut(&thread).expect("link_current checked");
            link.defect_since.get_or_insert(now);
            link.repair = Some(RepairEpisode { started_us: now, attempt: 0 });
            self.journal.push(format!(
                "t={now} defect node={node} thread={thread} parent={}",
                link.parent.addr()
            ));
            let t = now + u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
            self.push_ev(t, Ev::RepairTick { child, thread, epoch });
        }
        self.push_ev(next, Ev::Liveness { child, thread, epoch });
    }

    fn on_repair_tick(&mut self, child: VAddr, thread: ThreadId, epoch: u64) {
        if !self.link_current(child, thread, epoch) {
            return;
        }
        let now = self.clock_us;
        let deadline_us =
            u64::try_from(self.cfg.policy.deadline.as_micros()).unwrap_or(u64::MAX);
        let (node, started_us, attempt, failed_parent) = {
            let peer = self.peers.get(&child).expect("link_current checked");
            let link = &peer.links[&thread];
            let Some(ep) = link.repair.as_ref() else { return };
            (peer.node, ep.started_us, ep.attempt, link.parent.node())
        };
        if now.saturating_sub(started_us) > deadline_us {
            let peer = self.peers.get_mut(&child).expect("link_current checked");
            let link = peer.links.get_mut(&thread).expect("link_current checked");
            link.repair = None;
            link.dead = true;
            self.stats.gave_up += 1;
            self.journal.push(format!("t={now} give_up node={node} thread={thread}"));
            return;
        }
        let outcome = self.control_dispatch(CtrlRequest::Complaint {
            child: node,
            failed_parent,
            thread,
            ctx: None,
        });
        // A dead coordinator answers nothing: the episode keeps its
        // backoff schedule running, like a TCP dial timeout would.
        let Some(CoreOutcome::Done { response, .. }) = outcome else {
            self.schedule_retry(child, thread, epoch, attempt);
            return;
        };
        match response {
            CtrlResponse::Redirect { new_parent, .. } => {
                self.resubscribe(child, thread, node, new_parent, attempt);
            }
            CtrlResponse::Error { reason } if reason.contains("unknown child") => {
                // Amnesiac coordinator: readmit ourselves, then retry the
                // complaint on the next tick.
                self.resync(child, node);
                self.schedule_retry(child, thread, epoch, attempt);
            }
            _ => self.schedule_retry(child, thread, epoch, attempt),
        }
    }

    /// Re-introduces a peer's row to an amnesiac coordinator.
    fn resync(&mut self, child: VAddr, node: NodeId) {
        let parents: Vec<(ThreadId, Option<NodeId>)> = self.peers[&child]
            .links
            .iter()
            .map(|(t, l)| (*t, l.parent.node()))
            .collect();
        let outcome = self.control_dispatch(CtrlRequest::Resync {
            node,
            data_addr: child,
            parents,
            ctx: None,
        });
        if matches!(outcome, Some(CoreOutcome::Done { response: CtrlResponse::Ok, .. })) {
            self.stats.resyncs += 1;
            self.journal.push(format!("t={} resync node={node}", self.clock_us));
        }
    }

    fn schedule_retry(&mut self, child: VAddr, thread: ThreadId, epoch: u64, attempt: u32) {
        let backoff = self.cfg.policy.backoff(attempt + 1, &mut self.rng);
        if let Some(link) =
            self.peers.get_mut(&child).and_then(|p| p.links.get_mut(&thread))
        {
            if let Some(ep) = link.repair.as_mut() {
                ep.attempt = attempt + 1;
            }
        }
        let t = self.clock_us + u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
        self.push_ev(t, Ev::RepairTick { child, thread, epoch });
    }

    /// Moves a subscription to `new_parent`: bumps the epoch (stale
    /// timers die), resets liveness, restarts the emission and stall
    /// clocks, and closes the defect interval.
    fn resubscribe(
        &mut self,
        child: VAddr,
        thread: ThreadId,
        node: NodeId,
        new_parent: CtrlParent<VAddr>,
        attempts: u32,
    ) {
        let now = self.clock_us;
        let new_epoch = {
            let peer = self.peers.get_mut(&child).expect("caller checked");
            let link = peer.links.get_mut(&thread).expect("caller checked");
            link.parent = new_parent;
            link.epoch += 1;
            link.liveness = LinkLiveness::new(self.cfg.policy.stall_timeout, now);
            link.repair = None;
            // The redirect target may itself be dead (the coordinator
            // has not heard yet) — then the stall re-fires and a fresh
            // episode runs, exactly like the TCP driver. The defect
            // clock keeps running until frames actually arrive.
            link.epoch
        };
        self.stats.repairs += 1;
        self.journal.push(format!(
            "t={now} repair node={node} thread={thread} parent={} attempts={}",
            new_parent.addr(),
            attempts + 1
        ));
        self.push_ev(now + self.cfg.pace_us, Ev::Emit { child, thread, epoch: new_epoch });
        self.push_ev(
            now + self.stall_us(),
            Ev::Liveness { child, thread, epoch: new_epoch },
        );
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("clock_us", &self.clock_us)
            .field("alive", &self.peers.len())
            .field("queued", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i.wrapping_mul(131).wrapping_add(7) % 256) as u8).collect()
    }

    fn small_world(seed: u64) -> (World, Vec<u8>) {
        let cfg = VnetConfig {
            overlay: OverlayConfig::new(4, 2),
            ..VnetConfig::default()
        };
        let content = pattern(cfg.generations * cfg.generation_size * cfg.packet_len);
        (World::new(seed, cfg, &content), content)
    }

    /// A world whose transfer is slow enough that faults injected a few
    /// virtual milliseconds in land mid-transfer (complete peers owe
    /// nothing and never complain, so repair tests need stragglers).
    fn slow_world(seed: u64) -> (World, Vec<u8>) {
        let cfg = VnetConfig {
            overlay: OverlayConfig::new(4, 2),
            generations: 4,
            generation_size: 16,
            ..VnetConfig::default()
        };
        let content = pattern(cfg.generations * cfg.generation_size * cfg.packet_len);
        (World::new(seed, cfg, &content), content)
    }

    #[test]
    fn a_small_swarm_completes_and_decodes_exactly() {
        let (mut world, content) = small_world(11);
        let nodes: Vec<NodeId> = (0..8).map(|_| world.join_peer()).collect();
        assert!(world.run_until_all_complete(60_000_000), "{world:?}");
        for node in nodes {
            assert_eq!(world.decoded_content(node).as_deref(), Some(&content[..]));
        }
        assert_eq!(world.stats().completed, 8);
    }

    #[test]
    fn killing_a_parent_heals_through_repair() {
        let (mut world, content) = slow_world(23);
        let all: Vec<NodeId> = (0..8).map(|_| world.join_peer()).collect();
        world.run_for(10_000);
        // Kill a peer that is really someone's parent, mid-transfer, so
        // at least one survivor must repair through the coordinator.
        let victim = world.a_serving_peer().expect("8 peers at k=4 share threads");
        let rest: Vec<NodeId> = all.into_iter().filter(|n| *n != victim).collect();
        world.kill_peer(victim);
        assert!(world.run_until_all_complete(120_000_000), "{world:?}");
        let stats = world.stats();
        assert!(stats.repairs > 0, "no repair episode ran: {stats:?}");
        assert_eq!(stats.gave_up, 0, "{stats:?}");
        for node in rest {
            assert_eq!(world.decoded_content(node).as_deref(), Some(&content[..]));
        }
        // The healed defects were measured.
        let report = world.defect_report();
        assert!(report.defect_us > 0, "{report:?}");
        assert!(report.probability() < 1.0);
    }

    #[test]
    fn a_cut_link_stalls_then_repairs_and_a_heal_recovers_silently() {
        let (mut world, content) = slow_world(31);
        let a = world.join_peer();
        let b = world.join_peer();
        world.run_for(10_000);
        // Sever every edge into b mid-transfer: both current parents
        // and the source, so no redirect can route around the cuts. The
        // stall detector must notice and episodes must keep running.
        let b_addr = world.node_to_addr[&b];
        let a_addr = world.node_to_addr[&a];
        for from in [SOURCE_ADDR, a_addr] {
            world.cut_link(from, b_addr);
        }
        world.run_for(3_000_000);
        let mid = world.defect_report();
        assert!(mid.defect_us > 0, "cut never registered as defect: {mid:?}");
        assert!(
            world.stats().frames_lost > 0,
            "cut edges dropped nothing: {:?}",
            world.stats()
        );
        // Heal: frames flow again and the swarm finishes with no repair
        // ever giving up — the episodes either resolved via redirect or
        // dissolved when data resumed.
        for from in [SOURCE_ADDR, a_addr] {
            world.heal_link(from, b_addr);
        }
        assert!(world.run_until_all_complete(240_000_000), "{world:?}");
        assert_eq!(world.stats().gave_up, 0, "{:?}", world.stats());
        assert_eq!(world.decoded_content(b).as_deref(), Some(&content[..]));
        let end = world.defect_report();
        assert!(end.probability() > 0.0 && end.probability() < 1.0, "{end:?}");
    }

    #[test]
    fn coordinator_amnesia_readmits_through_resync() {
        let (mut world, content) = slow_world(47);
        let all: Vec<NodeId> = (0..8).map(|_| world.join_peer()).collect();
        world.run_for(10_000);
        world.coordinator_amnesia();
        // Kill a serving peer after the amnesia: its children's
        // complaints hit "unknown child", forcing resync readmission
        // before the redirect can be answered.
        let victim = world.a_serving_peer().expect("8 peers at k=4 share threads");
        world.kill_peer(victim);
        assert!(world.run_until_all_complete(120_000_000), "{world:?}");
        assert!(world.stats().resyncs > 0, "resync path never ran: {:?}", world.stats());
        for node in all.into_iter().filter(|n| *n != victim) {
            assert_eq!(world.decoded_content(node).as_deref(), Some(&content[..]));
        }
    }

    #[test]
    fn standby_promotes_on_the_virtual_clock_and_survivors_resync() {
        // A long transfer with a twitchy stall detector: the fault below
        // must land mid-transfer and be *noticed* before survivors can
        // coast to completion on their remaining links.
        let cfg = VnetConfig {
            overlay: OverlayConfig::new(4, 2),
            generations: 8,
            generation_size: 16,
            policy: RepairPolicy {
                stall_timeout: Duration::from_millis(20),
                max_backoff: Duration::from_millis(100),
                ..VnetConfig::default().policy
            },
            ..VnetConfig::default()
        };
        let content = pattern(cfg.generations * cfg.generation_size * cfg.packet_len);
        let mut world = World::new(53, cfg, &content);
        let all: Vec<NodeId> = (0..8).map(|_| world.join_peer()).collect();
        world.start_standby(Duration::from_millis(10), 3);
        world.run_for(10_000);
        // Coordinator dies mid-transfer, and so does a serving peer:
        // complaints go unanswered until the FollowerCore counts three
        // failed polls and promotes.
        let victim = world.a_serving_peer().expect("8 peers at k=4 share threads");
        world.crash_coordinator();
        world.kill_peer(victim);
        assert!(!world.coordinator_up());
        world.run_for(200_000);
        assert!(world.coordinator_up(), "standby never promoted");
        let promote_line =
            world.journal().iter().find(|l| l.contains("promote")).cloned();
        assert!(promote_line.is_some(), "no promote in journal");
        assert!(world.run_until_all_complete(240_000_000), "{world:?}");
        let stats = world.stats();
        // The promoted core lost the peer rows: survivors readmitted
        // themselves through the resync path.
        assert!(stats.resyncs > 0, "no resync after promotion: {stats:?}");
        assert_eq!(stats.gave_up, 0, "{stats:?}");
        for node in all.into_iter().filter(|n| *n != victim) {
            assert_eq!(world.decoded_content(node).as_deref(), Some(&content[..]));
        }
    }

    #[test]
    fn same_seed_same_journal_different_seed_diverges() {
        let run = |seed: u64| {
            let (mut world, _) = small_world(seed);
            let nodes: Vec<NodeId> = (0..6).map(|_| world.join_peer()).collect();
            world.run_for(30_000);
            world.kill_peer(nodes[0]);
            world.run_for(10_000_000);
            world.journal().join("\n")
        };
        let a = run(99);
        let b = run(99);
        assert_eq!(a, b, "same seed must replay byte-identically");
        let c = run(100);
        assert_ne!(a, c, "different seeds should explore different worlds");
    }

    #[test]
    fn lossy_links_slow_but_do_not_stop_the_swarm() {
        let (mut world, content) = small_world(59);
        world.set_default_link(LinkProfile {
            latency_us: 2_000,
            loss: 0.2,
            bandwidth_bps: 50_000_000,
        });
        let nodes: Vec<NodeId> = (0..5).map(|_| world.join_peer()).collect();
        assert!(world.run_until_all_complete(240_000_000), "{world:?}");
        assert!(world.stats().frames_lost > 0, "loss never sampled");
        for node in nodes {
            assert_eq!(world.decoded_content(node).as_deref(), Some(&content[..]));
        }
    }

    #[test]
    fn vaddr_renders_and_parses() {
        assert_eq!(VAddr(7).render(), "v7");
        assert_eq!(VAddr::parse("v7"), Ok(VAddr(7)));
        assert!(VAddr::parse("127.0.0.1:80").is_err());
    }
}
