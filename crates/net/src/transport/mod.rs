//! Transport backends for the net plane.
//!
//! The sans-io cores under [`crate::core`] define *what* the protocol
//! does; the modules here define *where* the bytes go:
//!
//! * [`tcp`] — the original blocking, thread-per-connection TCP driver.
//!   This is the default and is behavior-preserving: the `curtain_peer`/
//!   `curtain_coordinator`/`curtain_source` bins and every pre-existing
//!   soak run on it unchanged.
//! * [`udp`] — a datagram backend: coded frames are cut into MTU-sized
//!   chunks ([`crate::core::wire::chunk_message`]) and reassembled
//!   loss-tolerantly on the far side.
//! * [`vnet`] — an in-process virtual network with a virtual clock,
//!   per-link latency/loss/cut shaping, and deterministic seeded
//!   scheduling. One OS process, thousands of real-protocol peers, the
//!   same state machines that run over real sockets — this is what the
//!   `e22` lab sweep drives.
//!
//! Selection mirrors the codec layer: `CURTAIN_TRANSPORT=tcp|udp|vnet`
//! (see [`TransportKind::from_env`]), surfaced as `--transport` on the
//! bins. The vnet is not dialable from a standalone bin — it only exists
//! in-process — so the bins reject it with a pointer at `e22`.

pub mod tcp;
pub mod udp;
pub mod vnet;

/// Which transport backend a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransportKind {
    /// Blocking TCP streams (the default; production-shaped).
    #[default]
    Tcp,
    /// UDP datagrams with chunk/reassembly framing.
    Udp,
    /// The in-process deterministic virtual network.
    Vnet,
}

impl TransportKind {
    /// Parses the selector used on CLIs and in `CURTAIN_TRANSPORT`.
    #[must_use]
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "tcp" => Some(TransportKind::Tcp),
            "udp" => Some(TransportKind::Udp),
            "vnet" | "sim" => Some(TransportKind::Vnet),
            _ => None,
        }
    }

    /// Reads `CURTAIN_TRANSPORT` from the environment; unset or
    /// unrecognised values fall back to [`TransportKind::Tcp`].
    #[must_use]
    pub fn from_env() -> TransportKind {
        std::env::var("CURTAIN_TRANSPORT")
            .ok()
            .and_then(|v| TransportKind::parse(&v))
            .unwrap_or_default()
    }

    /// The canonical selector string (`tcp`/`udp`/`vnet`) — used as the
    /// `transport` label on telemetry.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            TransportKind::Tcp => "tcp",
            TransportKind::Udp => "udp",
            TransportKind::Vnet => "vnet",
        }
    }
}

/// Resolves a bin-level transport selection: an explicit `--transport`
/// flag wins over `CURTAIN_TRANSPORT`, which falls back to TCP.
///
/// # Errors
///
/// Returns a usage-style message for an unrecognised flag value.
pub fn resolve(flag: Option<&str>) -> Result<TransportKind, String> {
    match flag {
        Some(value) => TransportKind::parse(value)
            .ok_or_else(|| format!("unknown transport {value:?} (expected tcp, udp, or vnet)")),
        None => Ok(TransportKind::from_env()),
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_parses_and_round_trips() {
        for kind in [TransportKind::Tcp, TransportKind::Udp, TransportKind::Vnet] {
            assert_eq!(TransportKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(TransportKind::parse(" VNET "), Some(TransportKind::Vnet));
        assert_eq!(TransportKind::parse("sim"), Some(TransportKind::Vnet));
        assert_eq!(TransportKind::parse("carrier-pigeon"), None);
        assert_eq!(TransportKind::default(), TransportKind::Tcp);
    }

    #[test]
    fn explicit_flag_wins_and_bad_flags_error() {
        assert_eq!(resolve(Some("udp")), Ok(TransportKind::Udp));
        assert!(resolve(Some("smoke-signal")).unwrap_err().contains("smoke-signal"));
    }
}
