//! Warm-standby coordinator: snapshot bootstrap, WAL tailing, and
//! promotion on primary failure.
//!
//! The standby owns a WAL of its *own* — there is no shared filesystem.
//! It bootstraps by fetching a full checkpoint over the control port
//! (`Request::SnapshotFetch`), then polls `Request::WalTail` to stream
//! every durable mutation into its log. When the primary stops
//! answering for [`StandbyOptions::fail_threshold`] consecutive polls,
//! the standby promotes itself: it replays its shipped log *at the
//! primary's address* (so surviving peers keep dialing the same
//! coordinator address), fences the id allocator with an epoch bump
//! (see [`Coordinator::fenced_next_id`] — shipped history may be
//! missing grants the primary admitted but never shipped), and kicks
//! off a proactive resync sweep to repopulate anything the shipped
//! history missed.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use curtain_overlay::OverlayConfig;
use curtain_telemetry::{Event, SharedRecorder};
use parking_lot::{Condvar, Mutex};

use crate::coordinator::Coordinator;
use crate::core::standby::{FollowDirective, FollowEvent, FollowStep, FollowerCore};
use crate::proto::{self, Request, Response};
use crate::wal::{Wal, WalOptions, WalRecord};

/// Per-request timeout when talking to the primary.
const CALL_TIMEOUT: Duration = Duration::from_secs(2);

/// How a warm standby follows (and eventually replaces) a primary.
#[derive(Debug, Clone)]
pub struct StandbyOptions {
    /// The primary's control address — polled while it lives, inherited
    /// when it dies.
    pub primary: SocketAddr,
    /// The standby's own log (shipped records land here).
    pub wal: WalOptions,
    /// Overlay shape; must match the primary's.
    pub config: OverlayConfig,
    /// RNG seed for the promoted coordinator's thread assignments.
    pub seed: u64,
    /// Delay between `WalTail` polls.
    pub poll_interval: Duration,
    /// Consecutive failed polls before the standby declares the primary
    /// dead and promotes itself.
    pub fail_threshold: u32,
}

impl StandbyOptions {
    /// Defaults: 100 ms polls, promotion after 5 consecutive failures
    /// (~½ s of primary silence).
    pub fn new(primary: SocketAddr, wal: WalOptions, config: OverlayConfig) -> Self {
        StandbyOptions {
            primary,
            wal,
            config,
            seed: 0xC0DE,
            poll_interval: Duration::from_millis(100),
            fail_threshold: 5,
        }
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the poll cadence.
    #[must_use]
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Overrides the failure threshold.
    #[must_use]
    pub fn with_fail_threshold(mut self, n: u32) -> Self {
        self.fail_threshold = n;
        self
    }
}

/// State shared between the follower thread and the [`Standby`] handle.
struct Shared {
    stop: AtomicBool,
    /// Operator-requested promotion (failover drills, planned switchover).
    force_promote: AtomicBool,
    /// Last shipped (and locally fsynced) sequence number.
    last_seq: AtomicU64,
    /// The promoted coordinator, once failover happened.
    promoted: Mutex<Option<io::Result<Coordinator>>>,
    promoted_cond: Condvar,
}

/// A running warm standby (the follower loop lives on its own thread).
pub struct Standby {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Standby {
    /// Starts following `options.primary`. Bootstraps via snapshot
    /// shipping on the follower thread, so this returns immediately
    /// even when the primary is busy.
    pub fn start(options: StandbyOptions, recorder: SharedRecorder) -> Self {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            force_promote: AtomicBool::new(false),
            last_seq: AtomicU64::new(0),
            promoted: Mutex::new(None),
            promoted_cond: Condvar::new(),
        });
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || follow(&shared, &options, &recorder))
        };
        Standby { shared, handle: Some(handle) }
    }

    /// Last WAL sequence number shipped from the primary and fsynced
    /// into the standby's own log.
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.shared.last_seq.load(Ordering::SeqCst)
    }

    /// Whether promotion has happened (successfully or not).
    #[must_use]
    pub fn is_promoted(&self) -> bool {
        self.shared.promoted.lock().is_some()
    }

    /// Requests immediate promotion (planned switchover / drill) without
    /// waiting for the failure detector.
    pub fn promote_now(&self) {
        self.shared.force_promote.store(true, Ordering::SeqCst);
    }

    /// Blocks until promotion happens or `timeout` passes.
    pub fn wait_promoted(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut promoted = self.shared.promoted.lock();
        while promoted.is_none() {
            if self.shared.promoted_cond.wait_until(&mut promoted, deadline).timed_out() {
                return promoted.is_some();
            }
        }
        true
    }

    /// Takes the promoted coordinator, if failover has happened.
    ///
    /// # Errors
    ///
    /// Returns the recovery error if promotion was attempted and failed.
    pub fn take_promoted(&mut self) -> Option<io::Result<Coordinator>> {
        self.shared.promoted.lock().take()
    }

    /// Stops the follower thread (and any promoted coordinator still
    /// held — take it first to keep it serving).
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Standby {
    fn drop(&mut self) {
        self.stop_now();
    }
}

impl std::fmt::Debug for Standby {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Standby")
            .field("last_seq", &self.last_seq())
            .field("promoted", &self.is_promoted())
            .finish()
    }
}

/// Fetches a snapshot and rewrites the local log as that one checkpoint.
/// Returns the sequence number the snapshot covers.
fn bootstrap(primary: SocketAddr, wal: &mut Wal) -> io::Result<u64> {
    match proto::call(primary, &Request::SnapshotFetch, CALL_TIMEOUT)? {
        Response::Snapshot { seq, record } => {
            let ck = WalRecord::parse_json(&record)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            wal.compact(&ck)?;
            Ok(seq)
        }
        other => Err(io::Error::other(format!("bad snapshot response: {other:?}"))),
    }
}

/// One tail poll: ship records after `after` into the local log (one
/// fsync per shipped batch). `Ok(None)` means the primary demands a
/// fresh snapshot (the standby fell behind its retained ring, or the
/// primary restarted).
fn tail_once(primary: SocketAddr, wal: &mut Wal, after: u64) -> io::Result<Option<u64>> {
    match proto::call(primary, &Request::WalTail { after }, CALL_TIMEOUT)? {
        Response::WalSegment { last, records } => {
            for payload in &records {
                let record = WalRecord::parse_json(payload)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                wal.append(&record)?;
            }
            if !records.is_empty() {
                wal.sync()?;
            }
            Ok(Some(last))
        }
        Response::Error { reason } if reason.contains("snapshot required") => Ok(None),
        other => Err(io::Error::other(format!("bad tail response: {other:?}"))),
    }
}

/// The follower loop: bootstrap, tail, and eventually promote.
fn follow(shared: &Arc<Shared>, options: &StandbyOptions, recorder: &SharedRecorder) {
    // The standby's log never compacts on its own: it IS the shipped
    // history, and the primary re-anchors it with snapshots as needed.
    let mut wal = match Wal::create(&options.wal.path, u64::MAX) {
        Ok(w) => w,
        Err(e) => {
            publish(shared, Err(e));
            return;
        }
    };
    // All follow/failover *decisions* live in the sans-io core; this
    // loop just issues the step it asks for and books the outcome.
    let mut core = FollowerCore::new(options.poll_interval, options.fail_threshold);
    while !shared.stop.load(Ordering::SeqCst) {
        if shared.force_promote.load(Ordering::SeqCst) {
            promote(shared, options, recorder, wal);
            return;
        }
        let event = match core.next_step() {
            FollowStep::Tail { after } => match tail_once(options.primary, &mut wal, after) {
                Ok(Some(last)) => FollowEvent::Tailed { last },
                // Fell off the retained ring — re-anchor.
                Ok(None) => FollowEvent::SnapshotRequired,
                Err(_) => FollowEvent::Failed,
            },
            FollowStep::Bootstrap => match bootstrap(options.primary, &mut wal) {
                Ok(seq) => {
                    recorder.counter("standby_bootstraps", 1);
                    FollowEvent::Bootstrapped { seq }
                }
                Err(_) => FollowEvent::Failed,
            },
        };
        if matches!(event, FollowEvent::Failed) {
            recorder.counter("standby_poll_failures", 1);
        }
        match core.on(event) {
            FollowDirective::Promote => {
                // The primary has been silent long enough: take over.
                promote(shared, options, recorder, wal);
                return;
            }
            FollowDirective::Continue { sleep } => {
                if matches!(event, FollowEvent::Bootstrapped { .. } | FollowEvent::Tailed { .. })
                {
                    shared.last_seq.store(core.last_seq(), Ordering::SeqCst);
                    recorder.gauge("standby_last_seq", core.last_seq() as f64);
                }
                std::thread::sleep(sleep);
            }
        }
    }
}

/// Promotes this standby: replays the shipped log at the primary's
/// address with the id fence applied, announces `StandbyPromoted`, and
/// starts the proactive resync sweep.
fn promote(shared: &Arc<Shared>, options: &StandbyOptions, recorder: &SharedRecorder, wal: Wal) {
    // Release our writer handle before recovery reopens the same path.
    drop(wal);
    let result = Coordinator::promote_at(
        options.primary,
        options.wal.clone(),
        options.config,
        options.seed,
        recorder.clone(),
    );
    if let Ok(c) = &result {
        recorder.record(&Event::StandbyPromoted {
            seq: shared.last_seq.load(Ordering::SeqCst),
            members: c.members() as u64,
        });
        recorder.counter("standby_promotions", 1);
        // Repopulate whatever the shipped history missed: nudge every
        // survivor to resync, splice the ones that are really gone.
        drop(c.spawn_resync_sweep());
    }
    publish(shared, result);
}

fn publish(shared: &Arc<Shared>, result: io::Result<Coordinator>) {
    *shared.promoted.lock() = Some(result);
    shared.promoted_cond.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ParentAddr;

    const T: Duration = Duration::from_secs(2);

    fn register(addr: SocketAddr, source_port: u16) -> Response {
        proto::call(
            addr,
            &Request::RegisterSource {
                data_addr: format!("127.0.0.1:{source_port}").parse().unwrap(),
                generations: 1,
                generation_size: 4,
                packet_len: 16,
                content_len: 64,
            },
            T,
        )
        .unwrap()
    }

    /// Joins with a *live* data listener backing the address, so the
    /// promoted coordinator's resync sweep nudges this "peer" instead of
    /// splicing it out as dead.
    fn hello_live(addr: SocketAddr) -> (curtain_overlay::NodeId, std::net::TcpListener) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let resp = proto::call(
            addr,
            &Request::Hello { data_addr: listener.local_addr().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { node, .. } = resp else {
            panic!("expected welcome, got {resp:?}");
        };
        (node, listener)
    }

    fn wal_dir() -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("curtain-standby-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn standby_tails_the_primary_and_promotes_on_failure() {
        use curtain_telemetry::MemorySink;

        let config = OverlayConfig::new(4, 2);
        let primary_path = wal_dir().join("failover_primary.wal");
        let standby_path = wal_dir().join("failover_standby.wal");
        let primary = Coordinator::start_durable(
            config,
            41,
            SharedRecorder::null(),
            &WalOptions::new(&primary_path),
        )
        .unwrap();
        let primary_addr = primary.addr();
        assert_eq!(register(primary_addr, 9900), Response::Ok);
        let (n0, _l0) = hello_live(primary_addr);

        let sink = MemorySink::new();
        let mut standby = Standby::start(
            StandbyOptions::new(primary_addr, WalOptions::new(&standby_path), config)
                .with_poll_interval(Duration::from_millis(20))
                .with_fail_threshold(3),
            SharedRecorder::wall_clock(sink.clone()),
        );
        // Mutations made while the standby follows are shipped to it.
        let (n1, _l1) = hello_live(primary_addr);
        let deadline = Instant::now() + Duration::from_secs(5);
        while standby.last_seq() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(standby.last_seq() >= 3, "standby never caught up");

        // Primary dies; the standby notices and takes over at the SAME
        // control address.
        let rows = primary.matrix_rows();
        primary.kill();
        assert!(standby.wait_promoted(Duration::from_secs(10)), "no promotion");
        let promoted = standby.take_promoted().unwrap().unwrap();
        assert_eq!(promoted.addr(), primary_addr);
        assert_eq!(promoted.matrix_rows(), rows, "shipped history rebuilt M exactly");

        // The promoted coordinator serves at the old address with fenced
        // fresh ids.
        let (fresh, _lf) = hello_live(primary_addr);
        assert!(fresh.0 > n0.0 && fresh.0 > n1.0);
        let kinds: Vec<String> =
            sink.events().iter().map(|(_, e)| e.kind().to_string()).collect();
        assert!(kinds.contains(&"standby_promoted".to_string()), "{kinds:?}");
        assert_eq!(sink.metrics().snapshot().counters["standby_promotions"], 1);

        // Its complaint path still works end to end.
        let resp = proto::call(
            primary_addr,
            &Request::Complaint { child: fresh, failed_parent: None, thread: 0, ctx: None },
            T,
        )
        .unwrap();
        assert!(
            matches!(resp, Response::Redirect { .. } | Response::Error { .. }),
            "{resp:?}"
        );
        drop(promoted);
        let _ = std::fs::remove_file(&primary_path);
        let _ = std::fs::remove_file(&standby_path);
    }

    #[test]
    fn forced_promotion_is_a_planned_switchover() {
        let config = OverlayConfig::new(4, 2);
        let primary_path = wal_dir().join("switchover_primary.wal");
        let standby_path = wal_dir().join("switchover_standby.wal");
        let primary = Coordinator::start_durable(
            config,
            42,
            SharedRecorder::null(),
            &WalOptions::new(&primary_path),
        )
        .unwrap();
        let primary_addr = primary.addr();
        assert_eq!(register(primary_addr, 9910), Response::Ok);
        let (_n, _live) = hello_live(primary_addr);

        let mut standby = Standby::start(
            StandbyOptions::new(primary_addr, WalOptions::new(&standby_path), config)
                .with_poll_interval(Duration::from_millis(20)),
            SharedRecorder::null(),
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        while standby.last_seq() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Planned switchover: stop the primary first (frees the port),
        // then promote without waiting for the failure detector.
        let members = primary.members();
        primary.kill();
        standby.promote_now();
        assert!(standby.wait_promoted(Duration::from_secs(10)));
        let promoted = standby.take_promoted().unwrap().unwrap();
        assert_eq!(promoted.members(), members);
        // The welcome's parents still point at the registered source.
        let resp = proto::call(
            primary_addr,
            &Request::Hello { data_addr: "127.0.0.1:9912".parse().unwrap() },
            T,
        )
        .unwrap();
        let Response::Welcome { parents, .. } = resp else { panic!("{resp:?}") };
        assert!(parents
            .iter()
            .any(|(_, p)| matches!(p, ParentAddr::Source(a) if a.port() == 9910)));
        drop(promoted);
        let _ = std::fs::remove_file(&primary_path);
        let _ = std::fs::remove_file(&standby_path);
    }
}
