//! A peer: joins, subscribes to its parents, recodes, serves its children,
//! and runs the complaint/repair protocol when a parent dies.
//!
//! Repair semantics (see [`RepairPolicy`]): a broken upstream thread runs
//! a *repair episode* — complaint attempts with exponential backoff and
//! jitter, retried until the episode deadline — and episodes are admitted
//! against a sliding-window budget, so a long-lived peer can repair
//! indefinitely as long as it is not thrashing. Every attempt and every
//! give-up is observable (`RepairAttempt` / `RepairGaveUp` events, the
//! `repair_attempts` histogram, and the `repairs` / `repair_gave_up`
//! counters).

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use curtain_overlay::NodeId;
use curtain_rlnc::BufPool;
use curtain_telemetry::trace::{wall_micros, NO_PARENT};
use curtain_telemetry::{Event, SharedRecorder, TraceContext};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::core::peer::{LinkLiveness, ObjectState};
use crate::transport::tcp;
use crate::framing::{self, Subscribe};
use crate::proto::{self, ParentAddr, Request, Response};
use crate::repair::{RepairBudget, RepairPolicy};

const CALL_TIMEOUT: Duration = Duration::from_secs(5);
/// How long a freshly accepted child may take to send its subscribe line.
const SUBSCRIBE_DEADLINE: Duration = Duration::from_secs(5);

/// Everything configurable about a peer; the [`Default`] matches
/// [`Peer::join`].
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Forwarding pace: one packet per `pace` per child subscription.
    pub pace: Duration,
    /// Telemetry recorder (typically [`SharedRecorder::wall_clock`]).
    pub recorder: SharedRecorder,
    /// The complaint/repair policy for every upstream thread.
    pub repair: RepairPolicy,
    /// Propagate causal trace contexts: forward incoming packet contexts
    /// as child spans on recoded frames (`HopSend`/`HopRecv` events), and
    /// wrap repair episodes in span trees. Requires an enabled `recorder`
    /// to have any visible effect; off by default — untraced peers emit
    /// frames byte-identical to the pre-tracing wire format.
    pub trace: bool,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            pace: Duration::from_micros(300),
            recorder: SharedRecorder::null(),
            repair: RepairPolicy::default(),
            trace: false,
        }
    }
}

struct Shared {
    node: NodeId,
    data_addr: SocketAddr,
    state: Mutex<ObjectState>,
    /// Packet-buffer pool shared by every generation's row space and the
    /// upstream receive path; ingest recycles through here.
    pool: BufPool,
    complete: AtomicBool,
    completion_reported: AtomicBool,
    stop: AtomicBool,
    coordinator: SocketAddr,
    recorder: SharedRecorder,
    disconnect_noted: AtomicBool,
    policy: RepairPolicy,
    /// Causal-context propagation on (see [`PeerConfig::trace`]).
    trace: bool,
    /// Repair episodes currently running (for `/health`).
    active_repairs: AtomicU64,
    /// This peer's current thread→parent view, kept fresh by the upstream
    /// loops so a [`Request::Resync`] can hand an amnesiac coordinator the
    /// whole row at once.
    parents: Mutex<Vec<(u16, ParentAddr)>>,
    /// Per-child serving threads, tracked so `stop_threads` can join them
    /// (a detached child could outlive `crash()` and race the recorder
    /// flush — or keep serving a socket the peer thinks is closed).
    children: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// True when this peer both wants causal propagation and has
    /// somewhere to record it.
    fn tracing(&self) -> bool {
        self.trace && self.recorder.is_enabled()
    }

    fn note_progress(&self) {
        if !self.state.lock().is_complete() {
            return;
        }
        // Exactly one thread reports, and `complete` only becomes
        // observable after the report attempt has concluded — otherwise
        // `wait_complete` can return while the Completed call is still in
        // flight and the coordinator's completion count lags behind.
        if !self.completion_reported.swap(true, Ordering::SeqCst) {
            let _ = proto::call(
                self.coordinator,
                &Request::Completed { node: self.node },
                CALL_TIMEOUT,
            );
            self.complete.store(true, Ordering::SeqCst);
        }
    }

    /// Uploads this peer's full thread→parent view to the coordinator —
    /// the amnesia protocol. A coordinator that lost its matrix (crash
    /// with no WAL) answers complaints with "unknown child"; the row it
    /// forgot lives here, so we hand it back and the coordinator
    /// re-inserts it. Best-effort: failures just mean the next complaint
    /// retries the whole dance.
    fn resync(&self, ctx: Option<TraceContext>) {
        let parents: Vec<(u16, Option<NodeId>)> =
            self.parents.lock().iter().map(|(t, p)| (*t, p.node())).collect();
        self.recorder.counter("peer_resyncs", 1);
        let _ = proto::call(
            self.coordinator,
            &Request::Resync { node: self.node, data_addr: self.data_addr, parents, ctx },
            CALL_TIMEOUT,
        );
    }

    /// Sleeps in short slices so `stop` interrupts a backoff promptly.
    fn sleep_interruptible(&self, total: Duration) {
        let deadline = Instant::now() + total;
        while !self.stop.load(Ordering::SeqCst) {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            std::thread::sleep(left.min(Duration::from_millis(20)));
        }
    }
}

/// A running peer.
///
/// # Example
///
/// See the crate-level example.
pub struct Peer {
    node: NodeId,
    data_addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    content_len: usize,
}

impl Peer {
    /// Joins the overlay through the coordinator's hello protocol and
    /// starts all data-plane threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol rejections.
    pub fn join(coordinator: SocketAddr) -> io::Result<Self> {
        Self::join_with(coordinator, PeerConfig::default())
    }

    /// Joins with an explicit forwarding pace (one packet per `pace` per
    /// child subscription).
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol rejections.
    pub fn join_paced(coordinator: SocketAddr, pace: Duration) -> io::Result<Self> {
        Self::join_with(coordinator, PeerConfig { pace, ..PeerConfig::default() })
    }

    /// Like [`Peer::join_paced`] with a telemetry recorder (typically
    /// [`SharedRecorder::wall_clock`]). The peer records `PeerConnect` /
    /// `PeerDisconnect` for its own lifecycle, `PacketInnovative` /
    /// `PacketRedundant` per upstream packet, `RepairAttempt` /
    /// `RepairGaveUp` around the complaint loop, a `repair_latency_ms`
    /// histogram around each successful complaint round-trip, a
    /// `repair_attempts` histogram (attempts per successful episode), and
    /// `repairs` / `repair_gave_up` counters.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol rejections.
    pub fn join_traced(
        coordinator: SocketAddr,
        pace: Duration,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        Self::join_with(coordinator, PeerConfig { pace, recorder, ..PeerConfig::default() })
    }

    /// Joins with full control over pace, telemetry, and repair policy.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol rejections.
    pub fn join_with(coordinator: SocketAddr, config: PeerConfig) -> io::Result<Self> {
        let PeerConfig { pace, recorder, repair, trace } = config;
        let (listener, data_addr) = tcp::bind_data_listener()?;

        let resp = proto::call(coordinator, &Request::Hello { data_addr }, CALL_TIMEOUT)?;
        let Response::Welcome { node, generations, generation_size, packet_len, content_len, parents } =
            resp
        else {
            return Err(io::Error::other(format!("join rejected: {resp:?}")));
        };

        let pool = BufPool::default();
        let shared = Arc::new(Shared {
            node,
            data_addr,
            state: Mutex::new(ObjectState::with_pool(
                generations,
                generation_size,
                packet_len,
                pool.clone(),
            )),
            pool,
            complete: AtomicBool::new(false),
            completion_reported: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            coordinator,
            recorder,
            disconnect_noted: AtomicBool::new(false),
            policy: repair,
            trace,
            active_repairs: AtomicU64::new(0),
            parents: Mutex::new(parents.clone()),
            children: Mutex::new(Vec::new()),
        });
        shared.recorder.record(&Event::PeerConnect { peer: node.0 });
        if shared.recorder.is_enabled() {
            // Stamp the trace with the GF(256) kernel backend so later
            // analysis can attribute recode/decode timings to it.
            shared.recorder.record(&Event::RunInfo {
                key: "gf_backend".to_string(),
                value: curtain_gf::kernels::active().name().to_string(),
            });
            // Label per-packet innovation events with this peer's id.
            let mut state = shared.state.lock();
            for recoder in &mut state.recoders {
                recoder.set_telemetry(shared.recorder.clone(), node.0);
            }
        }

        let mut handles = Vec::new();
        // Child-serving accept loop.
        {
            let shared = Arc::clone(&shared);
            let seed = Arc::new(AtomicU64::new(node.0.wrapping_mul(0x9E37_79B9)));
            handles.push(std::thread::spawn(move || {
                while !shared.stop.load(Ordering::SeqCst) {
                    match tcp::poll_accept(&listener) {
                        Ok(Some(stream)) => {
                            let worker_shared = Arc::clone(&shared);
                            let s = seed.fetch_add(1, Ordering::SeqCst);
                            let handle = std::thread::spawn(move || {
                                let _ = serve_child(&stream, &worker_shared, pace, s);
                            });
                            let mut children = shared.children.lock();
                            // Reap naturally finished children so the
                            // list stays bounded on long-lived peers.
                            children.retain(|h| !h.is_finished());
                            children.push(handle);
                        }
                        Ok(None) => {}
                        Err(_) => break,
                    }
                }
            }));
        }
        // One upstream thread per parent.
        for (thread, parent) in parents {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                upstream_loop(&shared, thread, parent);
            }));
        }
        Ok(Peer { node, data_addr, shared, handles, content_len })
    }

    /// This peer's overlay id.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Where this peer's children connect.
    #[must_use]
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// Current total decoding rank across generations.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shared.state.lock().rank()
    }

    /// True once the full generation is decodable.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shared.complete.load(Ordering::SeqCst)
    }

    /// Child subscriptions currently being served.
    #[must_use]
    pub fn active_children(&self) -> usize {
        self.shared.children.lock().iter().filter(|h| !h.is_finished()).count()
    }

    /// Repair episodes currently in flight on this peer's upstream threads.
    #[must_use]
    pub fn active_repair_episodes(&self) -> u64 {
        self.shared.active_repairs.load(Ordering::SeqCst)
    }

    /// One-line JSON health document for the `/health` endpoint: decode
    /// rank per generation, buffer-pool occupancy, child/repair activity.
    #[must_use]
    pub fn health_json(&self) -> String {
        health_json_of(&self.shared)
    }

    /// A `'static` closure producing [`Peer::health_json`] — the callback
    /// shape [`curtain_telemetry::ExposeServer::bind`] wants.
    pub fn health_handle(&self) -> impl Fn() -> String + Send + Sync + 'static {
        let shared = Arc::clone(&self.shared);
        move || health_json_of(&shared)
    }

    /// Blocks (polling) until complete or `timeout`; returns success.
    #[must_use]
    pub fn wait_complete(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.is_complete() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.is_complete()
    }

    /// The decoded content, trimmed to the source's original length;
    /// `None` before completion.
    #[must_use]
    pub fn decoded_content(&self) -> Option<Vec<u8>> {
        let generations = self.shared.state.lock().recover_all()?;
        let mut out = Vec::new();
        for packets in generations {
            for p in packets {
                out.extend_from_slice(&p);
            }
        }
        out.truncate(self.content_len);
        Some(out)
    }

    /// Leaves gracefully: good-bye to the coordinator, then all sockets
    /// close (children are spliced to this peer's parents and will
    /// resubscribe via the complaint path).
    pub fn leave(mut self) {
        let _ = proto::call(
            self.shared.coordinator,
            &Request::Goodbye { node: self.node },
            CALL_TIMEOUT,
        );
        self.stop_threads();
    }

    /// Crashes: drops everything without telling anyone — the non-ergodic
    /// failure of §2. Children detect the dead sockets and complain.
    pub fn crash(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // The accept loop is joined, so no new children can appear;
        // drain and join every per-child serving thread too — by the
        // time `crash()`/`leave()` returns, nothing serves this peer's
        // sockets and the recorder flush below races nobody.
        let children: Vec<_> = self.shared.children.lock().drain(..).collect();
        for h in children {
            let _ = h.join();
        }
        if !self.shared.disconnect_noted.swap(true, Ordering::SeqCst) {
            self.shared.recorder.record(&Event::PeerDisconnect { peer: self.node.0 });
            let _ = self.shared.recorder.flush();
        }
    }
}

impl Drop for Peer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

impl std::fmt::Debug for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Peer")
            .field("node", &self.node)
            .field("rank", &self.rank())
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// Renders the peer's health document (shared by [`Peer::health_json`]
/// and the `'static` handle the expose server holds).
fn health_json_of(shared: &Shared) -> String {
    use curtain_telemetry::json::JsonValue;
    use std::collections::BTreeMap;
    let (ranks, total_rank, complete_generations) = {
        let st = shared.state.lock();
        let ranks: Vec<JsonValue> =
            st.recoders.iter().map(|r| JsonValue::Int(r.rank() as i64)).collect();
        (ranks, st.rank(), st.complete_count)
    };
    let active_children =
        shared.children.lock().iter().filter(|h| !h.is_finished()).count();
    let pool = shared.pool.stats();
    let mut doc = BTreeMap::new();
    doc.insert("role".to_string(), JsonValue::Str("peer".to_string()));
    doc.insert("ok".to_string(), JsonValue::Bool(true));
    doc.insert("node".to_string(), JsonValue::Int(shared.node.0 as i64));
    doc.insert(
        "complete".to_string(),
        JsonValue::Bool(shared.complete.load(Ordering::SeqCst)),
    );
    doc.insert("rank".to_string(), JsonValue::Int(total_rank as i64));
    doc.insert("generation_ranks".to_string(), JsonValue::Array(ranks));
    doc.insert(
        "complete_generations".to_string(),
        JsonValue::Int(complete_generations as i64),
    );
    doc.insert("active_children".to_string(), JsonValue::Int(active_children as i64));
    doc.insert(
        "active_repair_episodes".to_string(),
        JsonValue::Int(shared.active_repairs.load(Ordering::SeqCst) as i64),
    );
    let mut pool_doc = BTreeMap::new();
    pool_doc.insert("hits".to_string(), JsonValue::Int(pool.hits as i64));
    pool_doc.insert("misses".to_string(), JsonValue::Int(pool.misses as i64));
    pool_doc.insert("recycled".to_string(), JsonValue::Int(pool.recycled as i64));
    pool_doc.insert("discarded".to_string(), JsonValue::Int(pool.discarded as i64));
    pool_doc.insert("idle".to_string(), JsonValue::Int(shared.pool.idle() as i64));
    doc.insert("buf_pool".to_string(), JsonValue::Object(pool_doc));
    JsonValue::Object(doc).render()
}

/// Serves one child subscription: recoded packets at the configured pace.
/// A coordinator's resync nudge on the same port instead triggers a
/// re-announce via the `Resync` control verb (the proactive sweep after
/// an amnesiac recovery or failover) and closes the connection.
fn serve_child(stream: &TcpStream, shared: &Shared, pace: Duration, seed: u64) -> io::Result<()> {
    let _sub =
        match framing::read_data_hello_deadline(stream, &shared.stop, SUBSCRIBE_DEADLINE)? {
            framing::DataHello::Subscribe(sub) => sub,
            framing::DataHello::ResyncNudge => {
                shared.resync(None);
                return Ok(());
            }
        };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = stream.try_clone()?;
    out.set_write_timeout(Some(Duration::from_secs(2)))?;
    let traced = shared.recorder.is_enabled();
    let tracing = shared.tracing();
    let mut scratch = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        // Lock held only for an O(1) Arc clone of the generation's basis
        // snapshot; the GF recode below runs against the shared immutable
        // rows, so concurrent children and the upstream push path never
        // wait on each other's math (and nothing is copied under the lock).
        let (snapshot, recv_ctx, base) = {
            let mut st = shared.state.lock();
            let base = st.window_base;
            match st.snapshot_next_ctx() {
                Some((s, c)) => (Some(s), c, base),
                None => (None, None, base),
            }
        };
        let timer = if traced { Some(Instant::now()) } else { None };
        match snapshot.and_then(|s| s.recode(&mut rng)) {
            Some(p) => {
                if let Some(t) = timer {
                    shared.recorder.histogram("recode_ns", t.elapsed().as_nanos() as f64);
                }
                // Forward causality: the outgoing recoded packet gets a
                // child span of the context under which this generation
                // last advanced; the HopSend records the parent link.
                let out_ctx = match recv_ctx {
                    Some(ctx) if tracing => {
                        let child = ctx.child();
                        shared.recorder.record(&Event::HopSend {
                            trace: child.trace,
                            span: child.span,
                            parent: ctx.span,
                            node: shared.node.0,
                            generation: p.generation(),
                            t_us: wall_micros(),
                        });
                        Some(child)
                    }
                    _ => None,
                };
                // Re-stamp the upstream window base so children retire
                // the same generations (unwindowed overlays stay on the
                // extension-free wire format).
                let out_base = (base > 0).then_some(base as u32);
                if framing::write_frame_tagged_into(&mut out, &p, out_ctx, out_base, &mut scratch)
                    .is_err()
                {
                    break; // child went away
                }
                std::thread::sleep(pace);
            }
            None => std::thread::sleep(Duration::from_millis(2)), // rank 0 yet
        }
    }
    Ok(())
}

/// Reads from one parent; on socket death (or stall), runs the
/// complaint/repair protocol and resubscribes to the replacement. Exits
/// only on `stop` or after a `RepairGaveUp` — never silently.
fn upstream_loop(shared: &Shared, thread: u16, mut parent: ParentAddr) {
    let mut rng = StdRng::seed_from_u64(shared.node.0.rotate_left(16) ^ u64::from(thread));
    let mut budget = RepairBudget::new(&shared.policy);
    'reconnect: while !shared.stop.load(Ordering::SeqCst) {
        let stream = match tcp::dial(parent.addr(), CALL_TIMEOUT) {
            Ok(s) => s,
            Err(_) => {
                if !repair_episode(shared, thread, &mut parent, &mut budget, &mut rng) {
                    return;
                }
                continue 'reconnect;
            }
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        if framing::write_subscribe(&stream, &Subscribe { node: shared.node, thread }).is_err() {
            if !repair_episode(shared, thread, &mut parent, &mut budget, &mut rng) {
                return;
            }
            continue 'reconnect;
        }
        let mut reader = stream;
        // The stall decision is the sans-io core's; this driver just feeds
        // it a microsecond clock anchored at connect time.
        let epoch = Instant::now();
        let now_us = || u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut link = LinkLiveness::new(shared.policy.stall_timeout, now_us());
        let mut scratch = Vec::new();
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            match framing::read_frame_tagged_pooled(&mut reader, &shared.pool, &mut scratch) {
                Ok(Some((packet, ctx, base))) => {
                    link.on_data(now_us());
                    let ctx = ctx.filter(|_| shared.tracing());
                    if let Some(ctx) = ctx {
                        shared.recorder.record(&Event::HopRecv {
                            trace: ctx.trace,
                            span: ctx.span,
                            node: shared.node.0,
                            generation: packet.generation(),
                            t_us: wall_micros(),
                        });
                    }
                    let innovative = {
                        let mut st = shared.state.lock();
                        if let Some(base) = base {
                            st.advance_window(base as usize);
                        }
                        st.push_ctx(packet, ctx)
                    };
                    if innovative {
                        shared.note_progress();
                    }
                }
                Ok(None) => {
                    // Clean EOF: the parent is gone.
                    if !repair_episode(shared, thread, &mut parent, &mut budget, &mut rng) {
                        return;
                    }
                    continue 'reconnect;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Idle link: [`LinkLiveness`] decides whether the
                    // silence is a partition-shaped defect yet.
                    if link.is_stalled(now_us(), shared.complete.load(Ordering::SeqCst)) {
                        if !repair_episode(shared, thread, &mut parent, &mut budget, &mut rng) {
                            return;
                        }
                        continue 'reconnect;
                    }
                    continue;
                }
                Err(_) => {
                    if !repair_episode(shared, thread, &mut parent, &mut budget, &mut rng) {
                        return;
                    }
                    continue 'reconnect;
                }
            }
        }
    }
}

/// One repair episode: admitted against the sliding-window budget, then
/// complaint attempts with jittered exponential backoff until the policy
/// deadline. Updates `parent` and returns `true` on success; records
/// `RepairGaveUp` and returns `false` when the policy is exhausted.
fn repair_episode(
    shared: &Shared,
    thread: u16,
    parent: &mut ParentAddr,
    budget: &mut RepairBudget,
    rng: &mut StdRng,
) -> bool {
    if shared.stop.load(Ordering::SeqCst) {
        return false;
    }
    let started = Instant::now();
    // The whole episode is one span tree: a "repair" root at this peer,
    // one "complain" child per attempt (whose context rides the Complaint
    // so the coordinator's "splice" hangs underneath), and a
    // "repair_complete" child marking the resubscribe hand-off. The
    // stitched tree is the episode's critical path.
    let episode = EpisodeSpans::open(shared);
    if !budget.admit(started) {
        give_up(shared, thread, 0);
        episode.close(shared, false);
        return false;
    }
    let deadline = started + shared.policy.deadline;
    let mut attempt: u32 = 0;
    loop {
        shared.sleep_interruptible(shared.policy.backoff(attempt, rng));
        if shared.stop.load(Ordering::SeqCst) {
            episode.close(shared, false);
            return false;
        }
        attempt += 1;
        shared.recorder.record(&Event::RepairAttempt {
            peer: shared.node.0,
            thread: u32::from(thread),
            attempt,
        });
        let complain = episode.child(shared, "complain");
        let resp = proto::call(
            shared.coordinator,
            &Request::Complaint {
                child: shared.node,
                failed_parent: parent.node(),
                thread,
                ctx: complain,
            },
            CALL_TIMEOUT,
        );
        let redirected = matches!(resp, Ok(Response::Redirect { .. }));
        EpisodeSpans::close_child(shared, complain, redirected);
        match resp {
            Ok(Response::Redirect { new_parent, .. }) => {
                let done = episode.child(shared, "repair_complete");
                *parent = new_parent;
                let mut view = shared.parents.lock();
                if let Some(entry) = view.iter_mut().find(|(t, _)| *t == thread) {
                    entry.1 = *parent;
                }
                drop(view);
                shared.recorder.counter("repairs", 1);
                shared
                    .recorder
                    .histogram("repair_latency_ms", started.elapsed().as_secs_f64() * 1e3);
                shared.recorder.histogram("repair_attempts", f64::from(attempt));
                EpisodeSpans::close_child(shared, done, true);
                episode.close(shared, true);
                return true;
            }
            // "Unknown child" means the coordinator lost its matrix (a
            // crash-restart without the WAL): upload our row via the
            // resync protocol, then retry the complaint — the coordinator
            // now knows us again and can redirect.
            Ok(Response::Error { ref reason }) if reason.contains("unknown child") => {
                shared.resync(episode.child_linkless());
                if Instant::now() >= deadline {
                    give_up(shared, thread, attempt);
                    episode.close(shared, false);
                    return false;
                }
            }
            // Anything else — a coordinator call timeout, a transient
            // Error response, a protocol hiccup — is retried until the
            // episode deadline, not treated as fatal: one lost control
            // packet must not orphan the thread permanently.
            Ok(_) | Err(_) => {
                if Instant::now() >= deadline {
                    give_up(shared, thread, attempt);
                    episode.close(shared, false);
                    return false;
                }
            }
        }
    }
}

/// Span bookkeeping for one repair episode; every method is a no-op for
/// an untraced peer (`ctx` stays `None`).
struct EpisodeSpans {
    ctx: Option<TraceContext>,
}

impl EpisodeSpans {
    /// Opens the "repair" root span (and bumps the active-episode gauge).
    fn open(shared: &Shared) -> Self {
        let active = shared.active_repairs.fetch_add(1, Ordering::SeqCst) + 1;
        shared.recorder.gauge("active_repair_episodes", active as f64);
        let ctx = shared.tracing().then(TraceContext::root);
        if let Some(ctx) = ctx {
            shared.recorder.record(&Event::SpanStart {
                trace: ctx.trace,
                span: ctx.span,
                parent: NO_PARENT,
                name: "repair".to_string(),
                node: shared.node.0,
            });
        }
        EpisodeSpans { ctx }
    }

    /// Opens a child span under the episode root and returns its context
    /// (to ride a request or be closed with `close_child`).
    fn child(&self, shared: &Shared, name: &str) -> Option<TraceContext> {
        let root = self.ctx?;
        let child = root.child();
        shared.recorder.record(&Event::SpanStart {
            trace: child.trace,
            span: child.span,
            parent: root.span,
            name: name.to_string(),
            node: shared.node.0,
        });
        Some(child)
    }

    /// A child context for a request whose span the *server* opens (the
    /// resync path): same trace, the root as parent — no local span.
    fn child_linkless(&self) -> Option<TraceContext> {
        self.ctx
    }

    fn close_child(shared: &Shared, child: Option<TraceContext>, ok: bool) {
        if let Some(child) = child {
            shared.recorder.record(&Event::SpanEnd {
                trace: child.trace,
                span: child.span,
                ok,
            });
        }
    }

    /// Closes the root span (and drops the active-episode gauge).
    fn close(&self, shared: &Shared, ok: bool) {
        let active = shared.active_repairs.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        shared.recorder.gauge("active_repair_episodes", active as f64);
        if let Some(ctx) = self.ctx {
            shared.recorder.record(&Event::SpanEnd { trace: ctx.trace, span: ctx.span, ok });
        }
    }
}

fn give_up(shared: &Shared, thread: u16, attempts: u32) {
    shared.recorder.record(&Event::RepairGaveUp {
        peer: shared.node.0,
        thread: u32::from(thread),
        attempts,
    });
    shared.recorder.counter("repair_gave_up", 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_rlnc::pipeline::{ObjectEncoder, Schedule};
    use curtain_rlnc::Content;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Barrier;

    fn filled_state(
        generations: usize,
        generation_size: usize,
        packet_len: usize,
        packets: usize,
    ) -> (ObjectState, ObjectEncoder, StdRng) {
        let content: Vec<u8> = (0..generations * generation_size * packet_len)
            .map(|i| (i % 251) as u8)
            .collect();
        let split = Content::split(&content, generation_size, packet_len);
        let mut encoder = ObjectEncoder::new(split).with_schedule(Schedule::RoundRobin);
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let mut state = ObjectState::new(generations, generation_size, packet_len);
        for _ in 0..packets {
            state.push(encoder.next_packet(&mut rng));
        }
        (state, encoder, rng)
    }

    /// Satellite (c): GF recoding must happen *outside* the shared state
    /// lock. A worker recodes continuously from one snapshot while the
    /// main thread keeps pushing fresh packets; every `try_lock` during
    /// the recode window must succeed immediately. Under the old
    /// recode-under-lock structure the lock is held for the duration of
    /// each GF pass and this assertion trips.
    #[test]
    fn recode_runs_outside_the_state_lock() {
        let (state, mut encoder, mut rng) = filled_state(1, 32, 2048, 16);
        let state = Arc::new(Mutex::new(state));
        let start = Arc::new(Barrier::new(2));
        let done = Arc::new(AtomicBool::new(false));

        let worker = {
            let state = Arc::clone(&state);
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let snapshot = state.lock().snapshot_next().expect("rank > 0");
                start.wait();
                let mut rng = StdRng::seed_from_u64(7);
                let until = Instant::now() + Duration::from_millis(250);
                let mut produced = 0u64;
                while Instant::now() < until {
                    let _ = snapshot.recode(&mut rng);
                    produced += 1;
                }
                done.store(true, Ordering::SeqCst);
                produced
            })
        };

        start.wait();
        let push_start = Instant::now();
        let mut checks = 0u64;
        let mut pushes = 0u64;
        while !done.load(Ordering::SeqCst) {
            match state.try_lock() {
                Some(mut st) => {
                    st.push(encoder.next_packet(&mut rng));
                    pushes += 1;
                }
                None => panic!("state lock contended while a child recodes"),
            }
            checks += 1;
            std::thread::sleep(Duration::from_micros(200));
        }
        let push_elapsed = push_start.elapsed();
        let produced = worker.join().expect("worker");
        assert!(produced > 0, "worker produced no recoded packets");
        assert!(checks >= 50, "too few lock probes to be meaningful: {checks}");
        println!(
            "concurrent serve/push: {produced} recodes alongside {pushes} pushes \
             in {push_elapsed:?} with zero lock contention ({checks} probes)"
        );
    }
}
