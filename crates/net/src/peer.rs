//! A peer: joins, subscribes to its parents, recodes, serves its children,
//! and runs the complaint/repair protocol when a parent dies.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use curtain_overlay::NodeId;
use curtain_rlnc::Recoder;
use curtain_telemetry::{Event, SharedRecorder};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::framing::{self, Subscribe};
use crate::proto::{self, ParentAddr, Request, Response};

const CALL_TIMEOUT: Duration = Duration::from_secs(5);
/// Consecutive repair attempts per thread before the upstream gives up.
const MAX_REPAIRS: usize = 32;

/// Per-generation buffers plus the rotation cursor for serving children.
struct ObjectState {
    recoders: Vec<Recoder>,
    complete_count: usize,
    serve_cursor: usize,
}

impl ObjectState {
    fn new(generations: usize, generation_size: usize, packet_len: usize) -> Self {
        ObjectState {
            recoders: (0..generations)
                .map(|g| Recoder::new(g as u32, generation_size, packet_len))
                .collect(),
            complete_count: 0,
            serve_cursor: 0,
        }
    }

    /// Returns true iff the push was innovative.
    fn push(&mut self, packet: curtain_rlnc::CodedPacket) -> bool {
        let g = packet.generation() as usize;
        let Some(recoder) = self.recoders.get_mut(g) else {
            return false;
        };
        let was_complete = recoder.is_complete();
        let innovative = recoder.push(packet).unwrap_or(false);
        if !was_complete && recoder.is_complete() {
            self.complete_count += 1;
        }
        innovative
    }

    fn is_complete(&self) -> bool {
        self.complete_count == self.recoders.len()
    }

    fn rank(&self) -> usize {
        self.recoders.iter().map(Recoder::rank).sum()
    }

    /// A recoded packet from the next generation with data, rotating so
    /// children receive all generations.
    fn recode_next<R: rand::Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Option<curtain_rlnc::CodedPacket> {
        let n = self.recoders.len();
        for probe in 0..n {
            let g = (self.serve_cursor + probe) % n;
            if self.recoders[g].rank() > 0 {
                self.serve_cursor = (g + 1) % n;
                return self.recoders[g].recode(rng);
            }
        }
        None
    }

    fn recover_all(&self) -> Option<Vec<Vec<Vec<u8>>>> {
        self.recoders.iter().map(Recoder::recover).collect()
    }
}

struct Shared {
    node: NodeId,
    state: Mutex<ObjectState>,
    complete: AtomicBool,
    completion_reported: AtomicBool,
    stop: AtomicBool,
    coordinator: SocketAddr,
    recorder: SharedRecorder,
    disconnect_noted: AtomicBool,
}

impl Shared {
    fn note_progress(&self) {
        if self.state.lock().is_complete() && !self.complete.swap(true, Ordering::SeqCst) {
            // First completion: tell the coordinator (best effort).
            if !self.completion_reported.swap(true, Ordering::SeqCst) {
                let _ = proto::call(
                    self.coordinator,
                    &Request::Completed { node: self.node },
                    CALL_TIMEOUT,
                );
            }
        }
    }
}

/// A running peer.
///
/// # Example
///
/// See the crate-level example.
pub struct Peer {
    node: NodeId,
    data_addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    content_len: usize,
}

impl Peer {
    /// Joins the overlay through the coordinator's hello protocol and
    /// starts all data-plane threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol rejections.
    pub fn join(coordinator: SocketAddr) -> io::Result<Self> {
        Self::join_paced(coordinator, Duration::from_micros(300))
    }

    /// Joins with an explicit forwarding pace (one packet per `pace` per
    /// child subscription).
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol rejections.
    pub fn join_paced(coordinator: SocketAddr, pace: Duration) -> io::Result<Self> {
        Self::join_traced(coordinator, pace, SharedRecorder::null())
    }

    /// Like [`Peer::join_paced`] with a telemetry recorder (typically
    /// [`SharedRecorder::wall_clock`]). The peer records `PeerConnect` /
    /// `PeerDisconnect` for its own lifecycle, `PacketInnovative` /
    /// `PacketRedundant` per upstream packet, a `repair_latency_ms`
    /// histogram around each successful complaint round-trip, and a
    /// `repairs` counter.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and protocol rejections.
    pub fn join_traced(
        coordinator: SocketAddr,
        pace: Duration,
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let data_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let resp = proto::call(coordinator, &Request::Hello { data_addr }, CALL_TIMEOUT)?;
        let Response::Welcome { node, generations, generation_size, packet_len, content_len, parents } =
            resp
        else {
            return Err(io::Error::other(format!("join rejected: {resp:?}")));
        };

        let shared = Arc::new(Shared {
            node,
            state: Mutex::new(ObjectState::new(generations, generation_size, packet_len)),
            complete: AtomicBool::new(false),
            completion_reported: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            coordinator,
            recorder,
            disconnect_noted: AtomicBool::new(false),
        });
        shared.recorder.record(&Event::PeerConnect { peer: node.0 });
        if shared.recorder.is_enabled() {
            // Label per-packet innovation events with this peer's id.
            let mut state = shared.state.lock();
            for recoder in &mut state.recoders {
                recoder.set_telemetry(shared.recorder.clone(), node.0);
            }
        }

        let mut handles = Vec::new();
        // Child-serving accept loop.
        {
            let shared = Arc::clone(&shared);
            let seed = Arc::new(AtomicU64::new(node.0.wrapping_mul(0x9E37_79B9)));
            handles.push(std::thread::spawn(move || {
                while !shared.stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let shared = Arc::clone(&shared);
                            let s = seed.fetch_add(1, Ordering::SeqCst);
                            std::thread::spawn(move || {
                                let _ = serve_child(&stream, &shared, pace, s);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }
        // One upstream thread per parent.
        for (thread, parent) in parents {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                upstream_loop(&shared, thread, parent);
            }));
        }
        Ok(Peer { node, data_addr, shared, handles, content_len })
    }

    /// This peer's overlay id.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Where this peer's children connect.
    #[must_use]
    pub fn data_addr(&self) -> SocketAddr {
        self.data_addr
    }

    /// Current total decoding rank across generations.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shared.state.lock().rank()
    }

    /// True once the full generation is decodable.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.shared.complete.load(Ordering::SeqCst)
    }

    /// Blocks (polling) until complete or `timeout`; returns success.
    #[must_use]
    pub fn wait_complete(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.is_complete() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.is_complete()
    }

    /// The decoded content, trimmed to the source's original length;
    /// `None` before completion.
    #[must_use]
    pub fn decoded_content(&self) -> Option<Vec<u8>> {
        let generations = self.shared.state.lock().recover_all()?;
        let mut out = Vec::new();
        for packets in generations {
            for p in packets {
                out.extend_from_slice(&p);
            }
        }
        out.truncate(self.content_len);
        Some(out)
    }

    /// Leaves gracefully: good-bye to the coordinator, then all sockets
    /// close (children are spliced to this peer's parents and will
    /// resubscribe via the complaint path).
    pub fn leave(mut self) {
        let _ = proto::call(
            self.shared.coordinator,
            &Request::Goodbye { node: self.node },
            CALL_TIMEOUT,
        );
        self.stop_threads();
    }

    /// Crashes: drops everything without telling anyone — the non-ergodic
    /// failure of §2. Children detect the dead sockets and complain.
    pub fn crash(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if !self.shared.disconnect_noted.swap(true, Ordering::SeqCst) {
            self.shared.recorder.record(&Event::PeerDisconnect { peer: self.node.0 });
            let _ = self.shared.recorder.flush();
        }
    }
}

impl Drop for Peer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

impl std::fmt::Debug for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Peer")
            .field("node", &self.node)
            .field("rank", &self.rank())
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// Serves one child subscription: recoded packets at the configured pace.
fn serve_child(stream: &TcpStream, shared: &Shared, pace: Duration, seed: u64) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let _sub = framing::read_subscribe(stream)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = stream.try_clone()?;
    while !shared.stop.load(Ordering::SeqCst) {
        let packet = shared.state.lock().recode_next(&mut rng);
        match packet {
            Some(p) => {
                if framing::write_frame(&mut out, &p).is_err() {
                    break; // child went away
                }
                std::thread::sleep(pace);
            }
            None => std::thread::sleep(Duration::from_millis(2)), // rank 0 yet
        }
    }
    Ok(())
}

/// Reads from one parent; on socket death, runs the complaint/repair
/// protocol and resubscribes to the replacement.
fn upstream_loop(shared: &Shared, thread: u16, mut parent: ParentAddr) {
    let mut repairs = 0usize;
    'reconnect: while !shared.stop.load(Ordering::SeqCst) && repairs < MAX_REPAIRS {
        let stream = match TcpStream::connect_timeout(&parent.addr(), CALL_TIMEOUT) {
            Ok(s) => s,
            Err(_) => {
                repairs += 1;
                if !complain(shared, thread, &mut parent) {
                    return;
                }
                continue 'reconnect;
            }
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        if framing::write_subscribe(&stream, &Subscribe { node: shared.node, thread }).is_err() {
            repairs += 1;
            if !complain(shared, thread, &mut parent) {
                return;
            }
            continue 'reconnect;
        }
        let mut reader = stream;
        loop {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            match framing::read_frame(&mut reader) {
                Ok(Some(packet)) => {
                    if shared.state.lock().push(packet) {
                        shared.note_progress();
                    }
                }
                Ok(None) => {
                    // Clean EOF: the parent is gone.
                    repairs += 1;
                    if !complain(shared, thread, &mut parent) {
                        return;
                    }
                    continue 'reconnect;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue; // idle link; re-check stop and keep reading
                }
                Err(_) => {
                    repairs += 1;
                    if !complain(shared, thread, &mut parent) {
                        return;
                    }
                    continue 'reconnect;
                }
            }
        }
    }
}

/// Runs the complaint protocol; updates `parent` on success.
fn complain(shared: &Shared, thread: u16, parent: &mut ParentAddr) -> bool {
    if shared.stop.load(Ordering::SeqCst) {
        return false;
    }
    // Repair latency as the child experiences it: backoff + complaint
    // round-trip until a replacement parent is in hand.
    let started = Instant::now();
    std::thread::sleep(Duration::from_millis(20)); // brief backoff
    let resp = proto::call(
        shared.coordinator,
        &Request::Complaint {
            child: shared.node,
            failed_parent: parent.node(),
            thread,
        },
        CALL_TIMEOUT,
    );
    match resp {
        Ok(Response::Redirect { new_parent, .. }) => {
            *parent = new_parent;
            shared.recorder.counter("repairs", 1);
            shared
                .recorder
                .histogram("repair_latency_ms", started.elapsed().as_secs_f64() * 1e3);
            true
        }
        _ => false,
    }
}
