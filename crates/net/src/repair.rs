//! Re-export shim: the repair policy now lives in the sans-io core
//! ([`crate::core::repair`]), where both the blocking TCP driver and the
//! virtual-clock vnet scheduler share it. This module keeps the old
//! `curtain_net::repair::…` paths compiling.

pub use crate::core::repair::{RepairBudget, RepairPolicy};
