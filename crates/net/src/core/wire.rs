//! The data-plane wire format, as pure byte functions.
//!
//! Everything here is sans-io: encoders append to caller-owned buffers,
//! decoders parse caller-supplied slices, and nothing touches a socket.
//! [`crate::framing`] wraps these functions with blocking stream I/O for
//! the TCP driver; the UDP and vnet transports consume them directly —
//! one message per frame — so all three backends speak byte-identical
//! frames by construction.
//!
//! Three encodings live here:
//!
//! * **Stream frames** — `[u32 LE length | flags][extensions][packet]`,
//!   the length-prefixed format TCP writes back-to-back on a connection
//!   (see [`TRACE_FLAG`] / [`WINDOW_FLAG`] for the optional extensions).
//! * **Handshake lines** — the one-line JSON [`Subscribe`] handshake and
//!   the coordinator's resync nudge ([`RESYNC_NUDGE_LINE`]).
//! * **Datagram chunks** — a frame cut into MTU-sized datagrams with a
//!   10-byte header, reassembled loss- and reorder-tolerantly by
//!   [`Reassembler`] (the UDP transport's framing).

use std::collections::{HashMap, VecDeque};

use curtain_overlay::{NodeId, ThreadId};
use curtain_rlnc::{BufPool, CodedPacket};
use curtain_telemetry::json::{self, JsonValue};
use curtain_telemetry::TraceContext;

/// Upper bound on a frame (coefficients + payload); guards against
/// corrupted length prefixes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// High bit of the length prefix: the frame body starts with a 16-byte
/// [`TraceContext`] before the packet bytes.
///
/// `MAX_FRAME` keeps real lengths far below this bit, so flagged and
/// unflagged frames can never be confused. Untraced frames are written
/// byte-identically to the pre-tracing format, and readers that predate
/// the flag reject a flagged frame as a bad length instead of
/// misparsing it — tracing is opt-in per sender, old receivers keep
/// interoperating with untraced senders unchanged.
pub const TRACE_FLAG: u32 = 1 << 31;

/// Bit 30 of the length prefix: the frame body carries a 4-byte
/// little-endian *window base* — the oldest generation the sender still
/// serves — placed after the trace context when both flags are set.
///
/// A windowed source advances the base as it cuts generations; peers
/// that understand the flag stop recoding generations behind the base
/// and re-stamp their own frames, so the active window propagates down
/// the overlay. Like [`TRACE_FLAG`], the bit sits far above `MAX_FRAME`,
/// so readers that predate it reject a flagged frame as a bad length
/// instead of misparsing it, and unflagged frames stay byte-identical —
/// windowed and pre-window nodes interoperate as long as the sender
/// does not window.
pub const WINDOW_FLAG: u32 = 1 << 30;

/// Width of the wire window base.
pub(crate) const WINDOW_BASE_LEN: usize = 4;

/// Upper bound on the subscribe line; anything longer is garbage.
pub(crate) const MAX_SUBSCRIBE_LINE: usize = 512;

/// The one-line handshake a subscriber sends after connecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscribe {
    /// The subscribing peer (for the publisher's bookkeeping/logging).
    pub node: NodeId,
    /// The overlay thread this subscription carries.
    pub thread: ThreadId,
}

impl Subscribe {
    /// Renders the handshake as its JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(self) -> String {
        let mut out = String::from("{\"node\":");
        out.push_str(&self.node.0.to_string());
        out.push_str(",\"thread\":");
        out.push_str(&self.thread.to_string());
        out.push('}');
        out
    }

    /// Parses a handshake line.
    ///
    /// # Errors
    ///
    /// Describes the malformed field.
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let obj = json::parse_flat_object(line.trim())?;
        let node = obj
            .fields
            .get("node")
            .and_then(JsonValue::as_u64)
            .ok_or("missing or bad node")?;
        let thread = obj
            .fields
            .get("thread")
            .and_then(JsonValue::as_u64)
            .and_then(|t| ThreadId::try_from(t).ok())
            .ok_or("missing or bad thread")?;
        Ok(Subscribe { node: NodeId(node), thread })
    }
}

/// The first line on a freshly accepted data connection: either a
/// subscriber's handshake or a coordinator's resync nudge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataHello {
    /// A peer subscribing to one overlay thread.
    Subscribe(Subscribe),
    /// A recovering coordinator asking this peer to re-announce itself
    /// via the `Resync` control verb (the proactive sweep).
    ResyncNudge,
}

/// The one-line resync nudge a sweeping coordinator sends on the data
/// port. Deliberately *not* a valid subscribe line: pre-sweep peers
/// reject it as a bad handshake and close, which is harmless.
pub const RESYNC_NUDGE_LINE: &str = "{\"nudge\":\"resync\"}";

/// Parses one data-plane hello line (already stripped of its newline).
///
/// # Errors
///
/// Describes the malformed line.
pub fn parse_data_hello(line: &str) -> Result<DataHello, String> {
    if line.trim() == RESYNC_NUDGE_LINE {
        return Ok(DataHello::ResyncNudge);
    }
    Subscribe::parse_json_line(line).map(DataHello::Subscribe)
}

/// Appends one encoded frame to `out`: the length prefix (with extension
/// flags), the optional 16-byte trace context, the optional 4-byte window
/// base, then the packet's wire bytes. With both extensions `None` the
/// bytes are identical to the original unflagged format.
pub fn encode_frame_tagged_into(
    out: &mut Vec<u8>,
    packet: &CodedPacket,
    ctx: Option<TraceContext>,
    window_base: Option<u32>,
) {
    let mut len = packet.wire_len() as u32;
    let mut flags = 0u32;
    if ctx.is_some() {
        len += TraceContext::WIRE_LEN as u32;
        flags |= TRACE_FLAG;
    }
    if window_base.is_some() {
        len += WINDOW_BASE_LEN as u32;
        flags |= WINDOW_FLAG;
    }
    out.extend_from_slice(&(len | flags).to_le_bytes());
    if let Some(ctx) = ctx {
        out.extend_from_slice(&ctx.to_wire());
    }
    if let Some(base) = window_base {
        out.extend_from_slice(&base.to_le_bytes());
    }
    packet.to_wire_into(out);
}

/// One encoded frame as a fresh buffer (see [`encode_frame_tagged_into`]).
#[must_use]
pub fn encode_frame_tagged(
    packet: &CodedPacket,
    ctx: Option<TraceContext>,
    window_base: Option<u32>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + packet.wire_len() + 20);
    encode_frame_tagged_into(&mut out, packet, ctx, window_base);
    out
}

/// A parsed frame with its optional extensions: the packet, the trace
/// context (if [`TRACE_FLAG`] was set) and the window base (if
/// [`WINDOW_FLAG`] was set).
pub type TaggedFrame = (CodedPacket, Option<TraceContext>, Option<u32>);

/// Decodes exactly one frame from `buf` (prefix included), parsing the
/// packet into pool-recycled buffers. The message-oriented counterpart of
/// the stream reader: trailing bytes after the frame are an error, so a
/// datagram or vnet message carries one frame and nothing else.
///
/// # Errors
///
/// Describes the corruption (bad length, truncation, trailing garbage,
/// malformed packet).
pub fn decode_frame_message(buf: &[u8], pool: &BufPool) -> Result<TaggedFrame, String> {
    let (frame, used) = decode_frame_prefix(buf, pool)?;
    if used != buf.len() {
        return Err(format!("{} trailing bytes after frame", buf.len() - used));
    }
    Ok(frame)
}

/// A validated length prefix: the body length in bytes and which
/// extensions ([`TRACE_FLAG`] / [`WINDOW_FLAG`]) the body carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramePrefix {
    /// Body length in bytes (extensions included, prefix excluded).
    pub len: usize,
    /// Body starts with a 16-byte trace context.
    pub traced: bool,
    /// Body carries a 4-byte window base (after the context, if any).
    pub windowed: bool,
}

/// Validates a raw little-endian length prefix: strips the extension
/// flags, bounds the length against [`MAX_FRAME`], and rejects bodies too
/// short to hold the extensions they claim.
///
/// # Errors
///
/// Describes the corrupt prefix.
pub fn parse_prefix(raw: u32) -> Result<FramePrefix, String> {
    let traced = raw & TRACE_FLAG != 0;
    let windowed = raw & WINDOW_FLAG != 0;
    let len = raw & !(TRACE_FLAG | WINDOW_FLAG);
    if len == 0 || len > MAX_FRAME {
        return Err("bad frame length".to_string());
    }
    let mut header = 0;
    if traced {
        header += TraceContext::WIRE_LEN;
    }
    if windowed {
        header += WINDOW_BASE_LEN;
    }
    if (len as usize) <= header {
        return Err("tagged frame too short".to_string());
    }
    Ok(FramePrefix { len: len as usize, traced, windowed })
}

/// Splits a frame body (already length-validated by [`parse_prefix`])
/// into its extensions and the packet bytes.
#[must_use]
pub fn split_body(prefix: FramePrefix, body: &[u8]) -> (Option<TraceContext>, Option<u32>, &[u8]) {
    debug_assert_eq!(body.len(), prefix.len);
    let mut rest = body;
    let ctx = if prefix.traced {
        let mut wire = [0u8; TraceContext::WIRE_LEN];
        wire.copy_from_slice(&rest[..TraceContext::WIRE_LEN]);
        rest = &rest[TraceContext::WIRE_LEN..];
        Some(TraceContext::from_wire(&wire))
    } else {
        None
    };
    let base = if prefix.windowed {
        let mut wire = [0u8; WINDOW_BASE_LEN];
        wire.copy_from_slice(&rest[..WINDOW_BASE_LEN]);
        rest = &rest[WINDOW_BASE_LEN..];
        Some(u32::from_le_bytes(wire))
    } else {
        None
    };
    (ctx, base, rest)
}

/// Decodes one frame from the front of `buf`, returning it and the number
/// of bytes consumed — the incremental form stream decoders build on.
///
/// # Errors
///
/// Describes the corruption; a buffer that merely ends early reports
/// `"truncated frame"` (callers feeding a stream can wait for more bytes).
pub fn decode_frame_prefix(buf: &[u8], pool: &BufPool) -> Result<(TaggedFrame, usize), String> {
    if buf.len() < 4 {
        return Err("truncated frame".to_string());
    }
    let raw = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let prefix = parse_prefix(raw)?;
    let total = 4 + prefix.len;
    if buf.len() < total {
        return Err("truncated frame".to_string());
    }
    let (ctx, base, rest) = split_body(prefix, &buf[4..total]);
    let packet = CodedPacket::from_wire_pooled(rest, pool).map_err(|e| e.to_string())?;
    Ok(((packet, ctx, base), total))
}

// ---------------------------------------------------------------------------
// Datagram chunking — the UDP transport's framing.
// ---------------------------------------------------------------------------

/// First byte of every chunk datagram. Chosen to collide with neither a
/// JSON control line (`{`) nor plausible length-prefix bytes, so a UDP
/// endpoint can demultiplex handshake lines from frame chunks on the
/// first byte.
pub const DGRAM_MAGIC: u8 = 0xC7;

/// Chunk header version; bumped if the layout ever changes.
pub const DGRAM_VERSION: u8 = 1;

/// Bytes of chunk header preceding each payload slice:
/// `[magic][version][msg_id u32 LE][chunk u16 LE][count u16 LE]`.
pub const DGRAM_HEADER_LEN: usize = 10;

/// One parsed chunk header plus its payload slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk<'a> {
    /// Message this chunk belongs to (sender-scoped, monotonically
    /// increasing so late duplicates of finished messages are cheap to
    /// drop).
    pub msg_id: u32,
    /// This chunk's index in `0..count`.
    pub index: u16,
    /// Total chunks of the message.
    pub count: u16,
    /// The payload slice carried by this datagram.
    pub payload: &'a [u8],
}

/// Cuts `payload` (one encoded frame) into datagrams of at most `mtu`
/// bytes each, headers included. Every datagram carries
/// [`DGRAM_HEADER_LEN`] bytes of header plus a payload slice; all slices
/// but the last are equal-sized.
///
/// # Panics
///
/// Panics if `mtu` cannot fit a header plus one payload byte, if the
/// payload is empty, or if the payload needs more than `u16::MAX` chunks
/// (far beyond [`MAX_FRAME`] at any sane MTU).
#[must_use]
pub fn chunk_message(msg_id: u32, payload: &[u8], mtu: usize) -> Vec<Vec<u8>> {
    assert!(mtu > DGRAM_HEADER_LEN, "mtu must exceed the chunk header");
    assert!(!payload.is_empty(), "empty datagram payload");
    let slice = mtu - DGRAM_HEADER_LEN;
    let count = payload.len().div_ceil(slice);
    assert!(count <= usize::from(u16::MAX), "payload needs too many chunks");
    payload
        .chunks(slice)
        .enumerate()
        .map(|(i, part)| {
            let mut d = Vec::with_capacity(DGRAM_HEADER_LEN + part.len());
            d.push(DGRAM_MAGIC);
            d.push(DGRAM_VERSION);
            d.extend_from_slice(&msg_id.to_le_bytes());
            d.extend_from_slice(&(i as u16).to_le_bytes());
            d.extend_from_slice(&(count as u16).to_le_bytes());
            d.extend_from_slice(part);
            d
        })
        .collect()
}

/// Parses one datagram's chunk header.
///
/// # Errors
///
/// Describes the malformed header (wrong magic/version, empty payload,
/// index out of range).
pub fn parse_chunk(datagram: &[u8]) -> Result<Chunk<'_>, String> {
    if datagram.len() <= DGRAM_HEADER_LEN {
        return Err("datagram shorter than chunk header".to_string());
    }
    if datagram[0] != DGRAM_MAGIC {
        return Err("bad chunk magic".to_string());
    }
    if datagram[1] != DGRAM_VERSION {
        return Err(format!("unsupported chunk version {}", datagram[1]));
    }
    let msg_id = u32::from_le_bytes([datagram[2], datagram[3], datagram[4], datagram[5]]);
    let index = u16::from_le_bytes([datagram[6], datagram[7]]);
    let count = u16::from_le_bytes([datagram[8], datagram[9]]);
    if count == 0 {
        return Err("zero-chunk message".to_string());
    }
    if index >= count {
        return Err(format!("chunk index {index} out of range 0..{count}"));
    }
    Ok(Chunk { msg_id, index, count, payload: &datagram[DGRAM_HEADER_LEN..] })
}

/// Reassembles chunked messages from one sender, tolerating reordering
/// and duplication. A message completes only when every chunk `0..count`
/// has arrived with consistent sizing; anything inconsistent drops the
/// whole message — a lost or corrupted chunk can delay a frame or kill
/// it, but can never surface a corrupt one.
///
/// Partially received messages are bounded: at most `max_pending`
/// in-flight messages are buffered, evicting the oldest (a message whose
/// middle chunk was lost eventually falls out instead of leaking).
#[derive(Debug)]
pub struct Reassembler {
    max_pending: usize,
    pending: HashMap<u32, Partial>,
    /// Insertion order for eviction.
    order: VecDeque<u32>,
    /// Recently completed message ids: late duplicates of a finished
    /// message must not deliver it twice (or re-open a partial).
    completed: VecDeque<u32>,
    /// Messages dropped by eviction or inconsistency (for telemetry).
    dropped: u64,
}

/// How many finished message ids [`Reassembler`] remembers for duplicate
/// suppression.
const COMPLETED_MEMORY: usize = 64;

#[derive(Debug)]
struct Partial {
    count: u16,
    received: u16,
    /// Chunk payloads by index (`None` = not yet arrived).
    chunks: Vec<Option<Vec<u8>>>,
    bytes: usize,
}

impl Reassembler {
    /// A reassembler buffering at most `max_pending` in-flight messages.
    ///
    /// # Panics
    ///
    /// Panics if `max_pending == 0`.
    #[must_use]
    pub fn new(max_pending: usize) -> Self {
        assert!(max_pending > 0, "reassembler needs at least one slot");
        Reassembler {
            max_pending,
            pending: HashMap::new(),
            order: VecDeque::new(),
            completed: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Messages dropped so far (evicted while incomplete, or killed by an
    /// inconsistent chunk).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// In-flight (incomplete) messages currently buffered.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one datagram. Returns the completed message payload when
    /// this chunk was the last missing piece, `None` while the message is
    /// still incomplete (or the chunk was a duplicate).
    ///
    /// # Errors
    ///
    /// Describes a malformed or inconsistent chunk; an inconsistency also
    /// drops the whole message it belonged to (never yielding a frame
    /// assembled from conflicting pieces).
    pub fn accept(&mut self, datagram: &[u8]) -> Result<Option<Vec<u8>>, String> {
        let chunk = parse_chunk(datagram)?;
        if self.completed.contains(&chunk.msg_id) {
            return Ok(None); // late duplicate of a finished message
        }
        if !self.pending.contains_key(&chunk.msg_id) {
            if chunk.count == 1 {
                // Single-chunk fast path: no buffering at all.
                self.note_completed(chunk.msg_id);
                return Ok(Some(chunk.payload.to_vec()));
            }
            while self.pending.len() >= self.max_pending {
                if let Some(oldest) = self.order.pop_front() {
                    if self.pending.remove(&oldest).is_some() {
                        self.dropped += 1;
                    }
                } else {
                    break;
                }
            }
            self.pending.insert(
                chunk.msg_id,
                Partial {
                    count: chunk.count,
                    received: 0,
                    chunks: vec![None; usize::from(chunk.count)],
                    bytes: 0,
                },
            );
            self.order.push_back(chunk.msg_id);
        }
        let partial = self.pending.get_mut(&chunk.msg_id).expect("just ensured");
        if partial.count != chunk.count {
            self.kill(chunk.msg_id);
            return Err("chunk count changed mid-message".to_string());
        }
        let slot = &mut partial.chunks[usize::from(chunk.index)];
        if let Some(existing) = slot {
            if existing.as_slice() != chunk.payload {
                self.kill(chunk.msg_id);
                return Err("duplicate chunk with different payload".to_string());
            }
            return Ok(None); // benign duplicate
        }
        partial.bytes += chunk.payload.len();
        if partial.bytes > MAX_FRAME as usize + DGRAM_HEADER_LEN {
            self.kill(chunk.msg_id);
            return Err("reassembled message exceeds MAX_FRAME".to_string());
        }
        *slot = Some(chunk.payload.to_vec());
        partial.received += 1;
        if partial.received < partial.count {
            return Ok(None);
        }
        let done = self.pending.remove(&chunk.msg_id).expect("complete");
        self.order.retain(|id| *id != chunk.msg_id);
        self.note_completed(chunk.msg_id);
        let mut payload = Vec::with_capacity(done.bytes);
        for part in done.chunks {
            payload.extend_from_slice(&part.expect("all chunks received"));
        }
        Ok(Some(payload))
    }

    fn note_completed(&mut self, msg_id: u32) {
        if self.completed.len() >= COMPLETED_MEMORY {
            self.completed.pop_front();
        }
        self.completed.push_back(msg_id);
    }

    fn kill(&mut self, msg_id: u32) {
        if self.pending.remove(&msg_id).is_some() {
            self.dropped += 1;
        }
        self.order.retain(|id| *id != msg_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    fn packet(generation: u32, payload_len: usize) -> CodedPacket {
        CodedPacket::new(
            generation,
            vec![1, 2, 3],
            Bytes::from((0..payload_len).map(|i| (i % 251) as u8).collect::<Vec<_>>()),
        )
    }

    #[test]
    fn message_decode_round_trips_every_flag_combination() {
        let pool = BufPool::default();
        let p = packet(7, 24);
        let ctx = TraceContext { trace: 0xDEAD, span: 0xBEEF };
        for (c, b) in
            [(None, None), (Some(ctx), None), (None, Some(5u32)), (Some(ctx), Some(9u32))]
        {
            let bytes = encode_frame_tagged(&p, c, b);
            let (got, got_ctx, got_base) = decode_frame_message(&bytes, &pool).unwrap();
            assert_eq!(got, p);
            assert_eq!(got_ctx, c);
            assert_eq!(got_base, b);
        }
    }

    #[test]
    fn message_decode_rejects_trailing_bytes_and_truncation() {
        let pool = BufPool::default();
        let mut bytes = encode_frame_tagged(&packet(0, 16), None, None);
        bytes.push(0);
        assert!(decode_frame_message(&bytes, &pool).unwrap_err().contains("trailing"));
        bytes.pop();
        bytes.pop();
        assert!(decode_frame_message(&bytes, &pool).unwrap_err().contains("truncated"));
    }

    #[test]
    fn prefix_decode_walks_a_concatenated_stream() {
        let pool = BufPool::default();
        let mut buf = Vec::new();
        for g in 0..4u32 {
            encode_frame_tagged_into(&mut buf, &packet(g, 16), None, Some(g));
        }
        let mut off = 0;
        let mut seen = Vec::new();
        while off < buf.len() {
            let ((p, _, base), used) = decode_frame_prefix(&buf[off..], &pool).unwrap();
            seen.push((p.generation(), base));
            off += used;
        }
        assert_eq!(seen, vec![(0, Some(0)), (1, Some(1)), (2, Some(2)), (3, Some(3))]);
    }

    #[test]
    fn chunk_round_trip_across_random_sizes_reorder_and_duplication() {
        // Property test: any payload size, any delivery order, any
        // duplication — the reassembled message is byte-identical.
        let mut rng = StdRng::seed_from_u64(0x0DD5);
        for case in 0..200 {
            let len = rng.random_range(1..=4096);
            let mtu = rng.random_range(DGRAM_HEADER_LEN + 1..=1400);
            let payload: Vec<u8> = (0..len).map(|_| rng.random()).collect();
            let mut datagrams = chunk_message(case, &payload, mtu);
            // Duplicate a random subset, then shuffle the delivery order.
            let dups: Vec<Vec<u8>> = datagrams
                .iter()
                .filter(|_| rng.random_bool(0.3))
                .cloned()
                .collect();
            datagrams.extend(dups);
            datagrams.shuffle(&mut rng);

            let mut reasm = Reassembler::new(8);
            let mut done = None;
            for d in &datagrams {
                if let Some(msg) = reasm.accept(d).expect("chunks are well-formed") {
                    assert!(done.is_none(), "message completed twice");
                    done = Some(msg);
                }
            }
            assert_eq!(done.as_deref(), Some(payload.as_slice()), "case {case} corrupted");
        }
    }

    #[test]
    fn lost_middle_chunk_never_yields_a_frame() {
        let mut rng = StdRng::seed_from_u64(0x1055);
        for case in 0..100 {
            let payload: Vec<u8> = (0..rng.random_range(300..2000)).map(|_| rng.random()).collect();
            let mut datagrams = chunk_message(case, &payload, 128);
            assert!(datagrams.len() >= 3, "need a middle chunk to lose");
            // Lose one non-edge chunk; deliver the rest in random order.
            let lost = rng.random_range(1..datagrams.len() - 1);
            datagrams.remove(lost);
            datagrams.shuffle(&mut rng);
            let mut reasm = Reassembler::new(8);
            for d in &datagrams {
                assert!(
                    reasm.accept(d).expect("well-formed").is_none(),
                    "incomplete message must never complete"
                );
            }
            assert_eq!(reasm.pending(), 1, "the torso stays pending until evicted");
        }
    }

    #[test]
    fn eviction_bounds_pending_and_counts_drops() {
        let mut reasm = Reassembler::new(2);
        // Three two-chunk messages, each missing its second chunk.
        for id in 0..3u32 {
            let payload = vec![id as u8; 200];
            let datagrams = chunk_message(id, &payload, 128);
            assert!(reasm.accept(&datagrams[0]).unwrap().is_none());
        }
        assert_eq!(reasm.pending(), 2, "oldest evicted");
        assert_eq!(reasm.dropped(), 1);
        // The evicted message's late chunk re-opens a fresh partial; it
        // still cannot complete from one chunk.
        let late = chunk_message(0, &vec![0u8; 200], 128);
        assert!(reasm.accept(&late[1]).unwrap().is_none());
    }

    #[test]
    fn conflicting_duplicate_kills_the_message() {
        let payload = vec![7u8; 300];
        let datagrams = chunk_message(9, &payload, 128);
        let mut reasm = Reassembler::new(4);
        assert!(reasm.accept(&datagrams[0]).unwrap().is_none());
        // Same msg_id and index, different payload bytes.
        let mut evil = datagrams[0].clone();
        let last = evil.len() - 1;
        evil[last] ^= 0xFF;
        assert!(reasm.accept(&evil).is_err());
        // The remaining real chunks can no longer complete the message.
        let mut completed = false;
        for d in &datagrams[1..] {
            if reasm.accept(d).unwrap().is_some() {
                completed = true;
            }
        }
        assert!(!completed, "a poisoned message must never complete");
        assert!(reasm.dropped() >= 1);
    }

    #[test]
    fn malformed_chunks_rejected() {
        let mut reasm = Reassembler::new(4);
        assert!(reasm.accept(&[]).is_err());
        assert!(reasm.accept(&[DGRAM_MAGIC; 5]).is_err());
        let good = &chunk_message(1, &[1, 2, 3], 64)[0];
        let mut bad_magic = good.clone();
        bad_magic[0] = b'{';
        assert!(reasm.accept(&bad_magic).is_err());
        let mut bad_version = good.clone();
        bad_version[1] = 99;
        assert!(reasm.accept(&bad_version).is_err());
        let mut bad_index = good.clone();
        bad_index[6] = 7; // index 7 of count 1
        assert!(reasm.accept(&bad_index).is_err());
    }

    #[test]
    fn chunked_frames_interop_with_stream_framing() {
        // Mixed-version interop: the datagram payload IS the stream
        // frame. Reassembling chunks and feeding the bytes to the
        // message decoder must agree with what the stream writer
        // produced, for every extension combination.
        let pool = BufPool::default();
        let p = packet(3, 900);
        let ctx = TraceContext { trace: 42, span: 43 };
        for (c, b) in
            [(None, None), (Some(ctx), None), (None, Some(2u32)), (Some(ctx), Some(8u32))]
        {
            let frame = encode_frame_tagged(&p, c, b);
            let mut reasm = Reassembler::new(4);
            let mut done = None;
            for d in chunk_message(77, &frame, 256) {
                if let Some(msg) = reasm.accept(&d).unwrap() {
                    done = Some(msg);
                }
            }
            let done = done.expect("reassembled");
            assert_eq!(done, frame, "reassembly must reproduce the stream bytes");
            let (got, got_ctx, got_base) = decode_frame_message(&done, &pool).unwrap();
            assert_eq!((got, got_ctx, got_base), (p.clone(), c, b));
        }
    }

    #[test]
    fn data_hello_lines_parse() {
        let sub = Subscribe { node: NodeId(42), thread: 7 };
        assert_eq!(
            parse_data_hello(&sub.to_json_line()),
            Ok(DataHello::Subscribe(sub))
        );
        assert_eq!(parse_data_hello(RESYNC_NUDGE_LINE), Ok(DataHello::ResyncNudge));
        assert!(parse_data_hello("junk").is_err());
    }
}
