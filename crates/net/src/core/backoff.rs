//! The one exponential-backoff-with-jitter implementation.
//!
//! Three corners of the net plane used to carry their own copy of this
//! arithmetic: the repair episode's complaint spacing
//! ([`crate::RepairPolicy::backoff`]), the coordinator's WAL-compaction
//! retry (`CommitInner::note_compact_result`), and the standby's
//! bootstrap retry loop. They now all delegate here, so the doubling,
//! the cap, and the jitter band are specified — and tested — once.

use std::time::Duration;

use rand::Rng;

/// Exponential backoff: `initial · 2^attempt`, capped at `max`, scaled
/// by a uniform jitter factor in `[1 - jitter, 1 + jitter]`.
///
/// Pure arithmetic over an explicit RNG — no clocks, no sleeping — so
/// the same schedule runs under real time (the TCP driver sleeps the
/// returned duration) and virtual time (the vnet driver turns it into a
/// timer event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before attempt 0.
    pub initial: Duration,
    /// Cap on the doubled delay.
    pub max: Duration,
    /// Jitter fraction, clamped to `[0, 1]` at evaluation time.
    pub jitter: f64,
}

impl Backoff {
    /// A jitter-free schedule (`initial · 2^attempt`, capped).
    #[must_use]
    pub fn new(initial: Duration, max: Duration) -> Self {
        Backoff { initial, max, jitter: 0.0 }
    }

    /// Adds a jitter fraction to the schedule.
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// The deterministic (unjittered) delay before attempt `attempt`
    /// (0-based): the base doubles per attempt and saturates at
    /// [`Backoff::max`], including for absurd attempt counts.
    #[must_use]
    pub fn base_delay(&self, attempt: u32) -> Duration {
        self.initial
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .min(self.max)
    }

    /// The jittered delay before attempt `attempt`: [`Backoff::base_delay`]
    /// scaled by a uniform factor in `[1 - jitter, 1 + jitter]`.
    pub fn delay<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> Duration {
        let base = self.base_delay(attempt);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return base;
        }
        let factor = 1.0 + jitter * (2.0 * rng.random::<f64>() - 1.0);
        base.mul_f64(factor.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn doubles_and_caps() {
        let b = Backoff::new(Duration::from_millis(10), Duration::from_millis(160));
        assert_eq!(b.base_delay(0), Duration::from_millis(10));
        assert_eq!(b.base_delay(1), Duration::from_millis(20));
        assert_eq!(b.base_delay(3), Duration::from_millis(80));
        assert_eq!(b.base_delay(10), Duration::from_millis(160));
        assert_eq!(b.base_delay(1000), Duration::from_millis(160));
    }

    #[test]
    fn unjittered_delay_consumes_no_randomness() {
        // jitter == 0 must not touch the RNG: the TCP and vnet drivers
        // share seeds with other decisions, and a stray draw would skew
        // replay determinism.
        let b = Backoff::new(Duration::from_millis(5), Duration::from_secs(1));
        let mut a = StdRng::seed_from_u64(9);
        let mut c = StdRng::seed_from_u64(9);
        let _ = b.delay(3, &mut a);
        assert_eq!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn jitter_stays_in_band() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_millis(100))
            .with_jitter(0.25);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let d = b.delay(0, &mut rng);
            assert!(
                d >= Duration::from_millis(75) && d <= Duration::from_millis(125),
                "jittered delay out of band: {d:?}"
            );
        }
    }

    #[test]
    fn out_of_range_jitter_is_clamped() {
        let b = Backoff::new(Duration::from_millis(100), Duration::from_millis(100))
            .with_jitter(7.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let d = b.delay(0, &mut rng);
            // Clamped to jitter = 1: band is [0, 2 · base].
            assert!(d <= Duration::from_millis(200), "clamp failed: {d:?}");
        }
    }

    #[test]
    fn zero_initial_is_always_zero() {
        let b = Backoff::new(Duration::ZERO, Duration::from_secs(1));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(b.delay(0, &mut rng), Duration::ZERO);
        assert_eq!(b.delay(20, &mut rng), Duration::ZERO);
    }
}
