//! The warm standby's sans-io core: the follower state machine.
//!
//! The follower loop's protocol decisions — *what to ask the primary
//! next*, *when silence becomes failover*, and *how long to sleep
//! between polls* — are pure bookkeeping over a failure counter and a
//! bootstrapped flag. [`FollowerCore`] holds them; the driver in
//! [`crate::standby`] owns the sockets, the WAL, and the promotion
//! side effects.
//!
//! Failover timing is part of the protocol contract: once bootstrapped,
//! every poll (success or failure) is followed by exactly
//! `poll_interval`, so the primary is declared dead after
//! `fail_threshold × poll_interval` of silence. Only the *pre-bootstrap*
//! retry path backs off (via [`Backoff`]) — a standby started before its
//! primary should not hammer the control port at full poll cadence, and
//! nothing downstream times against that phase.

use std::time::Duration;

use crate::core::backoff::Backoff;

/// Pre-bootstrap retries back off up to this many times the poll
/// interval.
const BOOTSTRAP_BACKOFF_CAP: u32 = 8;

/// The next request the follower should issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowStep {
    /// Fetch a full snapshot and re-anchor the local log.
    Bootstrap,
    /// Poll `WalTail { after }` for records past the last shipped seq.
    Tail {
        /// Last sequence number already shipped and fsynced locally.
        after: u64,
    },
}

/// What happened on the wire for the step the core asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowEvent {
    /// Snapshot fetched and compacted locally; it covers `seq`.
    Bootstrapped {
        /// Sequence number the snapshot covers.
        seq: u64,
    },
    /// A tail poll succeeded; the primary's durable history ends at
    /// `last`.
    Tailed {
        /// Last durable sequence number on the primary.
        last: u64,
    },
    /// The primary demands a fresh snapshot (the standby fell off the
    /// retained ring, or the primary restarted).
    SnapshotRequired,
    /// The request failed outright (timeout, refused, bad response).
    Failed,
}

/// What the driver must do after booking a [`FollowEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowDirective {
    /// Keep following; sleep this long before the next step.
    Continue {
        /// Delay before the next poll.
        sleep: Duration,
    },
    /// The primary has been silent past the threshold: promote.
    Promote,
}

/// The follower's decision state: bootstrapped-ness, the shipped
/// high-water mark, and the consecutive-failure count that arms the
/// failure detector.
#[derive(Debug, Clone)]
pub struct FollowerCore {
    poll_interval: Duration,
    fail_threshold: u32,
    retry: Backoff,
    bootstrapped: bool,
    failures: u32,
    last_seq: u64,
}

impl FollowerCore {
    /// A fresh follower that has shipped nothing.
    #[must_use]
    pub fn new(poll_interval: Duration, fail_threshold: u32) -> Self {
        FollowerCore {
            poll_interval,
            fail_threshold,
            retry: Backoff::new(
                poll_interval,
                poll_interval.saturating_mul(BOOTSTRAP_BACKOFF_CAP),
            ),
            bootstrapped: false,
            failures: 0,
            last_seq: 0,
        }
    }

    /// The request to issue next.
    #[must_use]
    pub fn next_step(&self) -> FollowStep {
        if self.bootstrapped {
            FollowStep::Tail { after: self.last_seq }
        } else {
            FollowStep::Bootstrap
        }
    }

    /// Last sequence number shipped (what `Tail` resumes after).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Whether the snapshot bootstrap has completed.
    #[must_use]
    pub fn is_bootstrapped(&self) -> bool {
        self.bootstrapped
    }

    /// Books the outcome of the last step and decides what follows.
    pub fn on(&mut self, event: FollowEvent) -> FollowDirective {
        match event {
            FollowEvent::Bootstrapped { seq } => {
                self.bootstrapped = true;
                self.failures = 0;
                self.last_seq = seq;
                FollowDirective::Continue { sleep: self.poll_interval }
            }
            FollowEvent::Tailed { last } => {
                self.failures = 0;
                self.last_seq = last;
                FollowDirective::Continue { sleep: self.poll_interval }
            }
            FollowEvent::SnapshotRequired => {
                // Fell off the retained ring — re-anchor. Not a failure:
                // the primary answered, it is alive.
                self.bootstrapped = false;
                self.failures = 0;
                FollowDirective::Continue { sleep: self.poll_interval }
            }
            FollowEvent::Failed => {
                self.failures += 1;
                if self.bootstrapped && self.failures >= self.fail_threshold {
                    return FollowDirective::Promote;
                }
                let sleep = if self.bootstrapped {
                    // The failure detector times against a fixed cadence.
                    self.poll_interval
                } else {
                    self.retry.base_delay(self.failures.saturating_sub(1))
                };
                FollowDirective::Continue { sleep }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLL: Duration = Duration::from_millis(100);

    #[test]
    fn follower_promotes_after_threshold_consecutive_failures() {
        let mut core = FollowerCore::new(POLL, 3);
        assert_eq!(core.next_step(), FollowStep::Bootstrap);
        assert_eq!(
            core.on(FollowEvent::Bootstrapped { seq: 7 }),
            FollowDirective::Continue { sleep: POLL }
        );
        assert_eq!(core.next_step(), FollowStep::Tail { after: 7 });
        // Two failures, then a success: the counter resets.
        assert_eq!(core.on(FollowEvent::Failed), FollowDirective::Continue { sleep: POLL });
        assert_eq!(core.on(FollowEvent::Failed), FollowDirective::Continue { sleep: POLL });
        assert_eq!(
            core.on(FollowEvent::Tailed { last: 9 }),
            FollowDirective::Continue { sleep: POLL }
        );
        assert_eq!(core.next_step(), FollowStep::Tail { after: 9 });
        // Three consecutive failures arm the detector on the third.
        assert_eq!(core.on(FollowEvent::Failed), FollowDirective::Continue { sleep: POLL });
        assert_eq!(core.on(FollowEvent::Failed), FollowDirective::Continue { sleep: POLL });
        assert_eq!(core.on(FollowEvent::Failed), FollowDirective::Promote);
    }

    #[test]
    fn pre_bootstrap_failures_back_off_and_never_promote() {
        let mut core = FollowerCore::new(POLL, 3);
        let mut sleeps = Vec::new();
        for _ in 0..6 {
            match core.on(FollowEvent::Failed) {
                FollowDirective::Continue { sleep } => sleeps.push(sleep),
                FollowDirective::Promote => panic!("promoted before ever bootstrapping"),
            }
            assert_eq!(core.next_step(), FollowStep::Bootstrap);
        }
        // Doubling from the poll interval, capped at 8×.
        assert_eq!(
            sleeps,
            vec![POLL, POLL * 2, POLL * 4, POLL * 8, POLL * 8, POLL * 8]
        );
    }

    #[test]
    fn snapshot_required_reanchors_without_counting_as_failure() {
        let mut core = FollowerCore::new(POLL, 2);
        core.on(FollowEvent::Bootstrapped { seq: 3 });
        core.on(FollowEvent::Failed);
        // The primary answered (it is alive), demanding a re-anchor.
        assert_eq!(
            core.on(FollowEvent::SnapshotRequired),
            FollowDirective::Continue { sleep: POLL }
        );
        assert!(!core.is_bootstrapped());
        assert_eq!(core.next_step(), FollowStep::Bootstrap);
        // Post-re-anchor failures are pre-bootstrap again: no promotion.
        for _ in 0..5 {
            assert!(matches!(core.on(FollowEvent::Failed), FollowDirective::Continue { .. }));
        }
        // The shipped high-water mark survives the re-anchor until the
        // fresh snapshot overwrites it.
        assert_eq!(core.last_seq(), 3);
    }
}
