//! The repair policy: how hard an upstream thread fights to stay fed.
//!
//! The paper's robustness argument (Theorem 4) assumes every thread
//! defect is *transient*: a child complains, the coordinator splices, and
//! connectivity returns within one repair interval. Over real sockets
//! that only holds if the complaint loop itself survives transient
//! failures — a coordinator call timing out, a replacement parent dying
//! before the resubscribe lands, a flapping link. [`RepairPolicy`]
//! centralizes the knobs:
//!
//! * **Backoff** — complaint attempts within one episode are spaced by
//!   exponential backoff with jitter (one shared [`Backoff`] schedule),
//!   so a herd of orphaned children does not synchronize against the
//!   coordinator.
//! * **Deadline** — an episode retries until [`RepairPolicy::deadline`]
//!   elapses, then gives up *observably* (a `RepairGaveUp` event, never a
//!   silent thread death).
//! * **Sliding-window budget** — episodes are admitted against a budget
//!   of [`RepairPolicy::window_budget`] per [`RepairPolicy::window`],
//!   replacing the old lifetime cap (`MAX_REPAIRS = 32`) that permanently
//!   orphaned a thread after 32 churn events *even when every repair
//!   succeeded*. Old episodes expire out of the window, so a long-lived
//!   peer can repair indefinitely; only a runaway flap exhausts it.
//! * **Stall detection** — a parent that stays connected but sends
//!   nothing for [`RepairPolicy::stall_timeout`] is treated as dead, so
//!   partitions (not just closed sockets) trigger repair.
//!
//! Everything here is pure bookkeeping over caller-supplied instants —
//! no sockets, no sleeping — which is what lets the same policy drive
//! the blocking TCP loops and the virtual-clock vnet scheduler.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use rand::Rng;

use super::backoff::Backoff;

/// Tuning for the complaint/repair loop of one peer.
///
/// The default is production-shaped: 10 ms initial backoff doubling to
/// 1 s, an 8 s per-episode deadline, 32 episodes per 10 s sliding window,
/// and a 3 s stall timeout. Tests compress or relax these freely.
#[derive(Debug, Clone)]
pub struct RepairPolicy {
    /// Backoff before the first complaint attempt of an episode.
    pub initial_backoff: Duration,
    /// Cap on the per-attempt backoff as it doubles.
    pub max_backoff: Duration,
    /// Jitter fraction: each backoff is scaled by a uniform factor in
    /// `[1 - jitter, 1 + jitter]`. Clamped to `[0, 1]`.
    pub jitter: f64,
    /// Total time an episode keeps retrying complaints before giving up.
    pub deadline: Duration,
    /// Width of the sliding window the episode budget counts against.
    pub window: Duration,
    /// Maximum repair episodes admitted per `window`; `0` disables
    /// repair entirely (every defect is immediately permanent).
    pub window_budget: usize,
    /// How long a connected parent may send nothing before the thread
    /// treats the link as dead and complains.
    pub stall_timeout: Duration,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter: 0.25,
            deadline: Duration::from_secs(8),
            window: Duration::from_secs(10),
            window_budget: 32,
            stall_timeout: Duration::from_secs(3),
        }
    }
}

impl RepairPolicy {
    /// This policy's complaint-spacing schedule as a [`Backoff`].
    #[must_use]
    pub fn backoff_schedule(&self) -> Backoff {
        Backoff::new(self.initial_backoff, self.max_backoff).with_jitter(self.jitter)
    }

    /// The jittered backoff before attempt `attempt` (0-based): the base
    /// doubles per attempt up to [`RepairPolicy::max_backoff`], then a
    /// uniform `[1 - jitter, 1 + jitter]` factor is applied.
    pub fn backoff<R: Rng + ?Sized>(&self, attempt: u32, rng: &mut R) -> Duration {
        self.backoff_schedule().delay(attempt, rng)
    }
}

/// Sliding-window admission for repair episodes.
///
/// Each admitted episode records its start; entries older than the window
/// expire. An episode is denied only when `window_budget` episodes
/// already started within the last `window` — the "thrashing" signal the
/// old lifetime cap was a blunt proxy for.
#[derive(Debug)]
pub struct RepairBudget {
    window: Duration,
    budget: usize,
    episodes: VecDeque<Instant>,
}

impl RepairBudget {
    /// An empty budget tracker for `policy`.
    #[must_use]
    pub fn new(policy: &RepairPolicy) -> Self {
        RepairBudget {
            window: policy.window,
            budget: policy.window_budget,
            episodes: VecDeque::new(),
        }
    }

    /// Tries to admit an episode starting at `now`; returns whether it is
    /// within budget (and records it if so).
    pub fn admit(&mut self, now: Instant) -> bool {
        self.expire(now);
        if self.episodes.len() >= self.budget {
            return false;
        }
        self.episodes.push_back(now);
        true
    }

    /// Episodes currently inside the window as of `now`.
    pub fn in_window(&mut self, now: Instant) -> usize {
        self.expire(now);
        self.episodes.len()
    }

    fn expire(&mut self, now: Instant) {
        while let Some(&front) = self.episodes.front() {
            if now.duration_since(front) >= self.window {
                self.episodes.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RepairPolicy {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(160),
            jitter: 0.0,
            ..RepairPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(policy.backoff(0, &mut rng), Duration::from_millis(10));
        assert_eq!(policy.backoff(1, &mut rng), Duration::from_millis(20));
        assert_eq!(policy.backoff(3, &mut rng), Duration::from_millis(80));
        // Caps at max_backoff, including for absurd attempt counts.
        assert_eq!(policy.backoff(10, &mut rng), Duration::from_millis(160));
        assert_eq!(policy.backoff(1000, &mut rng), Duration::from_millis(160));
    }

    #[test]
    fn backoff_jitter_stays_in_band() {
        let policy = RepairPolicy {
            initial_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(100),
            jitter: 0.25,
            ..RepairPolicy::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let b = policy.backoff(0, &mut rng);
            assert!(
                b >= Duration::from_millis(75) && b <= Duration::from_millis(125),
                "jittered backoff out of band: {b:?}"
            );
        }
    }

    #[test]
    fn budget_denies_only_past_window_rate() {
        let policy = RepairPolicy {
            window: Duration::from_secs(10),
            window_budget: 3,
            ..RepairPolicy::default()
        };
        let mut budget = RepairBudget::new(&policy);
        let t0 = Instant::now();
        assert!(budget.admit(t0));
        assert!(budget.admit(t0 + Duration::from_secs(1)));
        assert!(budget.admit(t0 + Duration::from_secs(2)));
        // Fourth within the window: denied.
        assert!(!budget.admit(t0 + Duration::from_secs(3)));
        assert_eq!(budget.in_window(t0 + Duration::from_secs(3)), 3);
        // Once the first episode ages out, capacity returns — the
        // regression the old lifetime cap failed: repairs spread over
        // time never exhaust the budget.
        assert!(budget.admit(t0 + Duration::from_secs(10)));
        assert!(!budget.admit(t0 + Duration::from_secs(10)));
    }

    #[test]
    fn budget_survives_many_paced_episodes() {
        // > 32 (the old MAX_REPAIRS lifetime cap) successful episodes,
        // paced slower than the window rate: all admitted.
        let policy =
            RepairPolicy { window: Duration::from_secs(10), window_budget: 4, ..Default::default() };
        let mut budget = RepairBudget::new(&policy);
        let t0 = Instant::now();
        for i in 0..100u64 {
            assert!(budget.admit(t0 + Duration::from_secs(3 * i)), "episode {i} denied");
        }
    }

    #[test]
    fn admission_exactly_at_the_window_edge() {
        // `expire` evicts entries aged *exactly* `window` (`>=`, not `>`):
        // an episode admitted at t0 must free its slot at precisely
        // t0 + window, while one instant earlier still counts against the
        // budget. Off-by-one here silently halves or doubles the
        // effective rate at the boundary.
        let policy = RepairPolicy {
            window: Duration::from_secs(10),
            window_budget: 1,
            ..RepairPolicy::default()
        };
        let mut budget = RepairBudget::new(&policy);
        let t0 = Instant::now();
        assert!(budget.admit(t0));
        // One nanosecond before the edge: the t0 episode still occupies
        // the only slot.
        let just_inside = t0 + Duration::from_secs(10) - Duration::from_nanos(1);
        assert!(!budget.admit(just_inside));
        assert_eq!(budget.in_window(just_inside), 1);
        // Exactly at the edge: the t0 episode has aged out.
        let edge = t0 + Duration::from_secs(10);
        assert_eq!(budget.in_window(edge), 0);
        assert!(budget.admit(edge));
        // And the new admission occupies the window from the edge onward.
        assert!(!budget.admit(edge + Duration::from_secs(1)));
    }

    #[test]
    fn budget_fully_resets_after_a_quiet_window() {
        // Exhaust the budget, go quiet for one full window, and the
        // tracker must be back at full capacity — no residue from the
        // burst (the property that makes the budget a rate limiter, not a
        // decaying lifetime cap).
        let policy = RepairPolicy {
            window: Duration::from_secs(10),
            window_budget: 3,
            ..RepairPolicy::default()
        };
        let mut budget = RepairBudget::new(&policy);
        let t0 = Instant::now();
        for i in 0..3u64 {
            assert!(budget.admit(t0 + Duration::from_millis(100 * i)));
        }
        assert!(!budget.admit(t0 + Duration::from_secs(1)));
        // Quiet until every burst entry is a full window old.
        let after = t0 + Duration::from_secs(10) + Duration::from_millis(300);
        assert_eq!(budget.in_window(after), 0);
        for i in 0..3u64 {
            assert!(budget.admit(after + Duration::from_millis(100 * i)), "slot {i} not freed");
        }
        assert!(!budget.admit(after + Duration::from_secs(1)));
    }

    #[test]
    fn zero_budget_denies_everything() {
        let policy = RepairPolicy { window_budget: 0, ..RepairPolicy::default() };
        let mut budget = RepairBudget::new(&policy);
        assert!(!budget.admit(Instant::now()));
    }
}
