//! The coordinator's control-plane brain, sans io.
//!
//! [`ControlCore`] owns everything the protocol needs to answer a
//! request — the paper's matrix `M` (a [`CurtainServer`]), the member
//! address book, the registered source, the completion set — and nothing
//! it does not: no sockets, no WAL, no locks, no threads. One call,
//! [`ControlCore::dispatch`], turns a [`CtrlRequest`] into a
//! [`CoreOutcome`]:
//!
//! * [`CoreOutcome::Done`] — the response to send, plus the list of
//!   [`Mutation`]s the driver must make durable (the TCP driver maps
//!   each onto a `WalRecord` and runs its commit machinery; the vnet
//!   driver drops them — a simulated coordinator keeps no log).
//! * [`CoreOutcome::Driver`] — the request touches durability state the
//!   core deliberately does not model (`SnapshotFetch`, `WalTail`), so
//!   the driver answers it from its commit queue.
//!
//! The core is generic over the address type, so the same dispatch logic
//! serves real `SocketAddr`s over TCP/UDP and vnet endpoint ids inside
//! the simulator — the same grants, splices, and redirects either way.

use std::collections::{HashMap, HashSet};

use curtain_overlay::{CurtainServer, Holder, NodeId, NodeStatus, OverlayConfig, ThreadId};
use curtain_telemetry::trace::{fresh_id, COORDINATOR_NODE};
use curtain_telemetry::{Event, SharedRecorder, TraceContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::core::ctrl::{CtrlParent, CtrlRequest, CtrlRequest as Request, CtrlResponse, WireAddr};

/// The registered source: its data listener and the content shape, at
/// whatever address type the transport speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceInfo<A> {
    /// Source data-plane listener (as advertised to peers).
    pub addr: A,
    /// Number of generations.
    pub generations: usize,
    /// Packets per generation.
    pub generation_size: usize,
    /// Bytes per packet.
    pub packet_len: usize,
    /// Original (unpadded) object length.
    pub content_len: usize,
}

/// One matrix mutation the driver must make durable before (or while —
/// that is the driver's commit policy, not the core's) the response
/// leaves. Mirrors the WAL record set minus checkpoints, which are a
/// durability artifact the core does not know about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation<A> {
    /// The source registered (or re-registered at the same address).
    RegisterSource(SourceInfo<A>),
    /// A hello was granted: the row as inserted.
    Hello {
        /// Assigned node id.
        node: u64,
        /// Matrix position the row was inserted at.
        position: u64,
        /// The row's thread set.
        threads: Vec<ThreadId>,
        /// The peer's data-plane listener.
        data_addr: A,
    },
    /// An amnesiac coordinator re-admitted a row from a peer's resync.
    Resync {
        /// The re-admitted node (keeps its old id).
        node: u64,
        /// The row's thread set (sorted).
        threads: Vec<ThreadId>,
        /// The peer's data-plane listener.
        data_addr: A,
    },
    /// A peer left gracefully.
    Goodbye {
        /// The departed node.
        node: u64,
    },
    /// A failed peer was spliced out of `M`.
    Splice {
        /// The spliced node.
        node: u64,
    },
    /// A peer reported full decode.
    Completed {
        /// The node.
        node: u64,
    },
}

/// What [`ControlCore::dispatch`] decided.
#[derive(Debug)]
pub enum CoreOutcome<A: WireAddr> {
    /// The core handled the request: send `response` after making the
    /// `effects` durable (in order — a complaint's splice record must
    /// land before anything that observes the repaired matrix).
    Done {
        /// The response to write back.
        response: CtrlResponse<A>,
        /// Matrix mutations this request caused, in application order.
        /// Applied to memory already; the driver only persists them.
        effects: Vec<Mutation<A>>,
    },
    /// A durability verb (`SnapshotFetch` / `WalTail`) the driver must
    /// answer from its commit state; the core has no opinion.
    Driver(CtrlRequest<A>),
}

/// The sans-io coordinator state machine. See the module docs.
pub struct ControlCore<A: WireAddr> {
    server: CurtainServer,
    rng: StdRng,
    addrs: HashMap<NodeId, A>,
    source: Option<SourceInfo<A>>,
    completed: HashSet<NodeId>,
    recorder: SharedRecorder,
}

impl<A: WireAddr> ControlCore<A> {
    /// A fresh core: empty matrix for `config`, thread assignments drawn
    /// from a `seed`ed RNG, protocol telemetry onto `recorder`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the overlay server.
    pub fn new(config: OverlayConfig, seed: u64, recorder: SharedRecorder) -> Result<Self, String> {
        let mut server = CurtainServer::new(config).map_err(|e| e.to_string())?;
        server.set_recorder(recorder.clone());
        Ok(ControlCore {
            server,
            rng: StdRng::seed_from_u64(seed),
            addrs: HashMap::new(),
            source: None,
            completed: HashSet::new(),
            recorder,
        })
    }

    /// Rebuilds a core from replayed state — the recovery path: the
    /// driver replays its WAL into a `server` + address book + source +
    /// completion set and hands them over.
    #[must_use]
    pub fn from_parts(
        server: CurtainServer,
        seed: u64,
        addrs: HashMap<NodeId, A>,
        source: Option<SourceInfo<A>>,
        completed: HashSet<NodeId>,
        recorder: SharedRecorder,
    ) -> Self {
        ControlCore {
            server,
            rng: StdRng::seed_from_u64(seed),
            addrs,
            source,
            completed,
            recorder,
        }
    }

    /// The embedded overlay server (the matrix `M` and its metrics).
    #[must_use]
    pub fn server(&self) -> &CurtainServer {
        &self.server
    }

    /// Data-plane address per member.
    #[must_use]
    pub fn addrs(&self) -> &HashMap<NodeId, A> {
        &self.addrs
    }

    /// The registered source, if any.
    #[must_use]
    pub fn source(&self) -> Option<&SourceInfo<A>> {
        self.source.as_ref()
    }

    /// Nodes that reported full decode.
    #[must_use]
    pub fn completed(&self) -> &HashSet<NodeId> {
        &self.completed
    }

    fn parent_addr(&self, holder: Holder) -> Option<CtrlParent<A>> {
        match holder {
            Holder::Server => self.source.as_ref().map(|s| CtrlParent::Source(s.addr)),
            Holder::Node(n) => self.addrs.get(&n).map(|a| CtrlParent::Node(n, *a)),
        }
    }

    /// Opens a coordinator-side span hanging off a request's causal
    /// context. Returns `None` (and records nothing) when the request was
    /// untraced — span bookkeeping must stay free for old/untraced peers.
    fn span_start(&self, ctx: Option<TraceContext>, name: &str) -> Option<TraceContext> {
        let ctx = ctx?;
        let child = TraceContext { trace: ctx.trace, span: fresh_id() };
        self.recorder.record(&Event::SpanStart {
            trace: child.trace,
            span: child.span,
            parent: ctx.span,
            name: name.to_string(),
            node: COORDINATOR_NODE,
        });
        Some(child)
    }

    /// Closes a span opened by [`ControlCore::span_start`] (no-op on `None`).
    fn span_end(&self, span: Option<TraceContext>, ok: bool) {
        if let Some(span) = span {
            self.recorder.record(&Event::SpanEnd { trace: span.trace, span: span.span, ok });
        }
    }

    /// The child's current parent on `thread`, after any necessary repair.
    ///
    /// # Errors
    ///
    /// Describes an unknown child, a thread the child does not hold, or
    /// a missing source registration.
    pub fn current_parent(
        &mut self,
        child: NodeId,
        thread: ThreadId,
    ) -> Result<CtrlParent<A>, String> {
        let pos = self
            .server
            .matrix()
            .position_of(child)
            .ok_or_else(|| format!("unknown child {child}"))?;
        let (_, holder) = self
            .server
            .matrix()
            .parents_of_position(pos)
            .into_iter()
            .find(|(t, _)| *t == thread)
            .ok_or_else(|| format!("{child} does not hold thread {thread}"))?;
        self.parent_addr(holder)
            .ok_or_else(|| "no source registered".to_string())
    }

    /// Marks `failed` failed and splices it out of `M` — report, repair,
    /// telemetry — returning the mutations the driver must persist.
    /// Shared by the complaint handler and the proactive resync sweep.
    pub fn splice_out(&mut self, failed: NodeId, ctx: Option<TraceContext>) -> Vec<Mutation<A>> {
        let mut effects = Vec::new();
        self.splice_out_into(failed, ctx, &mut effects);
        effects
    }

    fn splice_out_into(
        &mut self,
        failed: NodeId,
        ctx: Option<TraceContext>,
        effects: &mut Vec<Mutation<A>>,
    ) {
        let splice_span = self.span_start(ctx, "splice");
        let _ = self.server.report_failure(failed);
        let _ = self.server.repair(failed);
        self.addrs.remove(&failed);
        self.completed.remove(&failed);
        effects.push(Mutation::Splice { node: failed.0 });
        self.recorder.record(&Event::PeerDisconnect { peer: failed.0 });
        self.recorder.gauge("coordinator_members", self.server.matrix().len() as f64);
        self.span_end(splice_span, true);
    }

    /// Handles one control request. Durability verbs come back as
    /// [`CoreOutcome::Driver`]; everything else is decided here, with the
    /// memory state already mutated and the needed persistence listed in
    /// the outcome's effects.
    pub fn dispatch(&mut self, request: CtrlRequest<A>) -> CoreOutcome<A> {
        let mut effects = Vec::new();
        let response = match request {
            Request::RegisterSource {
                data_addr,
                generations,
                generation_size,
                packet_len,
                content_len,
            } => {
                // A second registration at a *different* address while a
                // session is live is a hijack, not a restart — refuse it.
                // (Same-address re-registration is the restart case and
                // stays idempotent.)
                if let Some(existing) = self.source {
                    if existing.addr != data_addr {
                        self.recorder.record(&Event::SourceRegisterRejected);
                        self.recorder.counter("source_register_rejected", 1);
                        return CoreOutcome::Done {
                            response: CtrlResponse::Error {
                                reason: format!(
                                    "source already registered at {}",
                                    existing.addr.render()
                                ),
                            },
                            effects,
                        };
                    }
                }
                let info = SourceInfo {
                    addr: data_addr,
                    generations,
                    generation_size,
                    packet_len,
                    content_len,
                };
                self.source = Some(info);
                effects.push(Mutation::RegisterSource(info));
                CtrlResponse::Ok
            }
            Request::Hello { data_addr } => {
                let Some(info) = self.source else {
                    return CoreOutcome::Done {
                        response: CtrlResponse::Error {
                            reason: "no source registered yet".into(),
                        },
                        effects,
                    };
                };
                let grant = self.server.hello(&mut self.rng);
                self.addrs.insert(grant.node, data_addr);
                effects.push(Mutation::Hello {
                    node: grant.node.0,
                    position: grant.position as u64,
                    threads: grant.parents.iter().map(|(t, _)| *t).collect(),
                    data_addr,
                });
                self.recorder.record(&Event::PeerConnect { peer: grant.node.0 });
                self.recorder.gauge("coordinator_members", self.server.matrix().len() as f64);
                let mut parents = Vec::with_capacity(grant.parents.len());
                for (thread, holder) in grant.parents {
                    match self.parent_addr(holder) {
                        Some(p) => parents.push((thread, p)),
                        None => {
                            return CoreOutcome::Done {
                                response: CtrlResponse::Error {
                                    reason: format!(
                                        "no address for parent of thread {thread}"
                                    ),
                                },
                                effects,
                            }
                        }
                    }
                }
                CtrlResponse::Welcome {
                    node: grant.node,
                    generations: info.generations,
                    generation_size: info.generation_size,
                    packet_len: info.packet_len,
                    content_len: info.content_len,
                    parents,
                }
            }
            Request::Goodbye { node } => match self.server.goodbye(node) {
                Ok(_) => {
                    self.addrs.remove(&node);
                    effects.push(Mutation::Goodbye { node: node.0 });
                    self.recorder.record(&Event::PeerDisconnect { peer: node.0 });
                    self.recorder
                        .gauge("coordinator_members", self.server.matrix().len() as f64);
                    CtrlResponse::Ok
                }
                Err(e) => CtrlResponse::Error { reason: e.to_string() },
            },
            Request::Complaint { child, failed_parent, thread, ctx } => {
                // If the accused is still a member, mark it failed and
                // splice it out (report + repair merged: the coordinator is
                // the repair interval here). Duplicate complaints are fine:
                // the node is already gone and we just return the child's
                // current parent.
                if let Some(failed) = failed_parent {
                    if self.server.matrix().position_of(failed).is_some() {
                        // When the complaint carries a causal context, the
                        // splice work becomes a child span of it — the
                        // stitched repair-episode tree then shows the
                        // coordinator-side step between complain and
                        // repair-complete.
                        self.splice_out_into(failed, ctx, &mut effects);
                    }
                }
                match self.current_parent(child, thread) {
                    Ok(new_parent) => CtrlResponse::Redirect { thread, new_parent },
                    Err(reason) => CtrlResponse::Error { reason },
                }
            }
            Request::Completed { node } => {
                if self.completed.insert(node) {
                    effects.push(Mutation::Completed { node: node.0 });
                }
                CtrlResponse::Ok
            }
            Request::Resync { node, data_addr, parents, ctx } => {
                if self.server.matrix().position_of(node).is_some() {
                    // Already known — a duplicate resync (the first Ok was
                    // lost), or the WAL had the row all along. Refresh the
                    // address and move on.
                    self.addrs.insert(node, data_addr);
                    return CoreOutcome::Done { response: CtrlResponse::Ok, effects };
                }
                let resync_span = self.span_start(ctx, "resync");
                let mut threads: Vec<ThreadId> = parents.iter().map(|(t, _)| *t).collect();
                threads.sort_unstable();
                match self.server.readmit(node, threads.clone(), NodeStatus::Working) {
                    Ok(_) => {
                        self.addrs.insert(node, data_addr);
                        effects.push(Mutation::Resync {
                            node: node.0,
                            threads: threads.clone(),
                            data_addr,
                        });
                        self.recorder.record(&Event::PeerResync {
                            peer: node.0,
                            threads: threads.len() as u32,
                        });
                        self.recorder.counter("resynced_rows", 1);
                        self.recorder
                            .gauge("coordinator_members", self.server.matrix().len() as f64);
                        self.span_end(resync_span, true);
                        CtrlResponse::Ok
                    }
                    Err(e) => {
                        self.span_end(resync_span, false);
                        CtrlResponse::Error { reason: e.to_string() }
                    }
                }
            }
            Request::Stats => CtrlResponse::Stats {
                members: self.server.matrix().len(),
                completed: self.completed.len(),
                repairs: self.server.metrics().repairs,
            },
            request @ (Request::SnapshotFetch | Request::WalTail { .. }) => {
                return CoreOutcome::Driver(request)
            }
        };
        CoreOutcome::Done { response, effects }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_telemetry::SharedRecorder;

    /// A toy address: vnet-style endpoint slots, no `std::net` anywhere.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    struct Slot(u64);

    impl WireAddr for Slot {
        fn render(&self) -> String {
            format!("slot:{}", self.0)
        }
        fn parse(s: &str) -> Result<Self, String> {
            s.strip_prefix("slot:")
                .and_then(|n| n.parse().ok())
                .map(Slot)
                .ok_or_else(|| format!("bad slot {s:?}"))
        }
    }

    fn core() -> ControlCore<Slot> {
        ControlCore::new(OverlayConfig::new(4, 2), 7, SharedRecorder::null()).unwrap()
    }

    fn done(outcome: CoreOutcome<Slot>) -> (CtrlResponse<Slot>, Vec<Mutation<Slot>>) {
        match outcome {
            CoreOutcome::Done { response, effects } => (response, effects),
            CoreOutcome::Driver(r) => panic!("unexpected driver outcome for {r:?}"),
        }
    }

    fn register(core: &mut ControlCore<Slot>) {
        let (resp, effects) = done(core.dispatch(Request::RegisterSource {
            data_addr: Slot(1000),
            generations: 1,
            generation_size: 8,
            packet_len: 64,
            content_len: 512,
        }));
        assert_eq!(resp, CtrlResponse::Ok);
        assert_eq!(effects.len(), 1);
        assert!(matches!(effects[0], Mutation::RegisterSource(_)));
    }

    #[test]
    fn hello_without_a_source_is_refused_with_no_effects() {
        let mut core = core();
        let (resp, effects) = done(core.dispatch(Request::Hello { data_addr: Slot(1) }));
        assert!(matches!(resp, CtrlResponse::Error { .. }));
        assert!(effects.is_empty());
    }

    #[test]
    fn register_hello_complete_flow_emits_matching_mutations() {
        let mut core = core();
        register(&mut core);
        let (resp, effects) = done(core.dispatch(Request::Hello { data_addr: Slot(1) }));
        let CtrlResponse::Welcome { node, generation_size, parents, .. } = resp else {
            panic!("expected welcome, got {resp:?}");
        };
        assert_eq!(generation_size, 8);
        assert_eq!(parents.len(), 2);
        assert!(parents.iter().all(|(_, p)| matches!(p, CtrlParent::Source(Slot(1000)))));
        let [Mutation::Hello { node: n, threads, data_addr, .. }] = &effects[..] else {
            panic!("expected one hello mutation, got {effects:?}");
        };
        assert_eq!(*n, node.0);
        assert_eq!(threads.len(), 2);
        assert_eq!(*data_addr, Slot(1));
        // Completion books once, then goes idempotent (no second record).
        let (_, effects) = done(core.dispatch(Request::Completed { node }));
        assert_eq!(effects, vec![Mutation::Completed { node: node.0 }]);
        let (_, effects) = done(core.dispatch(Request::Completed { node }));
        assert!(effects.is_empty());
    }

    #[test]
    fn hijacking_register_is_refused() {
        let mut core = core();
        register(&mut core);
        let (resp, effects) = done(core.dispatch(Request::RegisterSource {
            data_addr: Slot(2000),
            generations: 1,
            generation_size: 8,
            packet_len: 64,
            content_len: 512,
        }));
        let CtrlResponse::Error { reason } = resp else { panic!("expected refusal") };
        assert!(reason.contains("slot:1000"), "reason: {reason}");
        assert!(effects.is_empty());
        // Same-address re-registration stays idempotent.
        register(&mut core);
    }

    #[test]
    fn complaint_splices_then_redirects() {
        let mut core = core();
        register(&mut core);
        let mut nodes = Vec::new();
        for slot in [1u64, 2] {
            let (resp, _) = done(core.dispatch(Request::Hello { data_addr: Slot(slot) }));
            let CtrlResponse::Welcome { node, .. } = resp else { panic!() };
            nodes.push(node);
        }
        // Find a (child, thread, parent) relation to complain about.
        let pos1 = core.server().matrix().position_of(nodes[1]).unwrap();
        let (thread, holder) = core.server().matrix().parents_of_position(pos1)[0];
        let failed = match holder {
            Holder::Node(n) => n,
            Holder::Server => {
                // Child of the source: complaints about the source carry
                // no failed_parent and splice nothing.
                let (resp, effects) = done(core.dispatch(Request::Complaint {
                    child: nodes[1],
                    failed_parent: None,
                    thread,
                    ctx: None,
                }));
                assert!(matches!(resp, CtrlResponse::Redirect { .. }));
                assert!(effects.is_empty());
                return;
            }
        };
        let (resp, effects) = done(core.dispatch(Request::Complaint {
            child: nodes[1],
            failed_parent: Some(failed),
            thread,
            ctx: None,
        }));
        let CtrlResponse::Redirect { thread: t, new_parent } = resp else {
            panic!("expected redirect, got {resp:?}");
        };
        assert_eq!(t, thread);
        assert_ne!(new_parent.node(), Some(failed), "redirected back at the corpse");
        assert_eq!(effects, vec![Mutation::Splice { node: failed.0 }]);
        assert!(core.server().matrix().position_of(failed).is_none());
        // A duplicate complaint finds the node gone: redirect, no splice.
        let (resp, effects) = done(core.dispatch(Request::Complaint {
            child: nodes[1],
            failed_parent: Some(failed),
            thread,
            ctx: None,
        }));
        assert!(matches!(resp, CtrlResponse::Redirect { .. }));
        assert!(effects.is_empty());
    }

    #[test]
    fn resync_readmits_an_unknown_row() {
        let mut core = core();
        register(&mut core);
        let (resp, _) = done(core.dispatch(Request::Hello { data_addr: Slot(1) }));
        let CtrlResponse::Welcome { node, parents, .. } = resp else { panic!() };
        let row: Vec<(ThreadId, Option<NodeId>)> =
            parents.iter().map(|(t, p)| (*t, p.node())).collect();
        // Known node: address refresh only, no mutation.
        let (resp, effects) = done(core.dispatch(Request::Resync {
            node,
            data_addr: Slot(9),
            parents: row.clone(),
            ctx: None,
        }));
        assert_eq!(resp, CtrlResponse::Ok);
        assert!(effects.is_empty());
        assert_eq!(core.addrs().get(&node), Some(&Slot(9)));
        // Amnesiac path: splice it, then readmit from the peer's view.
        let _ = core.splice_out(node, None);
        assert!(core.server().matrix().position_of(node).is_none());
        let (resp, effects) = done(core.dispatch(Request::Resync {
            node,
            data_addr: Slot(9),
            parents: row,
            ctx: None,
        }));
        assert_eq!(resp, CtrlResponse::Ok);
        assert!(matches!(&effects[..], [Mutation::Resync { node: n, .. }] if *n == node.0));
        assert!(core.server().matrix().position_of(node).is_some());
    }

    #[test]
    fn durability_verbs_defer_to_the_driver() {
        let mut core = core();
        assert!(matches!(
            core.dispatch(Request::SnapshotFetch),
            CoreOutcome::Driver(Request::SnapshotFetch)
        ));
        assert!(matches!(
            core.dispatch(Request::WalTail { after: 3 }),
            CoreOutcome::Driver(Request::WalTail { after: 3 })
        ));
    }

    #[test]
    fn stats_track_the_membership() {
        let mut core = core();
        register(&mut core);
        for slot in 0..3u64 {
            let _ = core.dispatch(Request::Hello { data_addr: Slot(slot) });
        }
        let (resp, effects) = done(core.dispatch(Request::Stats));
        assert_eq!(resp, CtrlResponse::Stats { members: 3, completed: 0, repairs: 0 });
        assert!(effects.is_empty());
    }
}
