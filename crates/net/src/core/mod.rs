//! The sans-io net plane: every protocol decision in `crates/net`,
//! expressed as pure state machines over bytes, instants, and explicit
//! RNGs.
//!
//! Nothing in this module tree may construct a socket, spawn a thread,
//! or sleep — CI greps `src/core/` for the socket and thread-spawn
//! constructors and fails on any hit. Drivers own
//! the I/O: the blocking TCP layer ([`crate::peer`],
//! [`crate::coordinator`], [`crate::source`], [`crate::standby`]) feeds
//! these cores from real sockets and real clocks, the UDP endpoint feeds
//! them from datagrams, and the vnet scheduler
//! ([`crate::transport::vnet`]) feeds them from a virtual clock — which
//! is what lets one test drive a thousand real-protocol peers
//! deterministically in a single process.
//!
//! Layout:
//!
//! * [`wire`] — frame/handshake/datagram byte formats, pure codecs.
//! * [`ctrl`] — the control-plane request/response protocol, generic
//!   over the address type so cores never name `std::net`.
//! * [`backoff`] — the one exponential-backoff-with-jitter schedule.
//! * [`repair`] — repair policy, budget, and episode state machine.
//! * [`peer`] — per-object decoding state and upstream-thread logic.
//! * [`source`] — emission scheduling (round-robin and windowed).
//! * [`coordinator`] — the control-plane state machine (overlay
//!   bookkeeping, splice repair, WAL record emission as pure effects).
//! * [`standby`] — the warm-standby follower's decision logic.

pub mod backoff;
pub mod coordinator;
pub mod ctrl;
pub mod peer;
pub mod repair;
pub mod source;
pub mod standby;
pub mod wire;
