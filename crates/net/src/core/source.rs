//! The source's sans-io core: the sliding-window emission schedule.
//!
//! A source stream is an unbounded sequence of coded packets; the only
//! protocol decision per emission is *which generation to mix next* and
//! *what window base to stamp on the frame*. [`Window`] answers both as
//! a pure function of the emission counter, so the TCP subscriber
//! threads and the vnet's simulated source emit identical schedules.

/// Sliding-window serving parameters (copied into each subscriber
/// stream).
#[derive(Debug, Clone, Copy)]
pub struct Window {
    /// Generations mixed at a time.
    pub span: usize,
    /// Packets per generation (sizes the per-generation service quota).
    pub generation_size: usize,
}

impl Window {
    /// Packets emitted per generation before the window slides: enough
    /// redundancy to decode through mild loss without parking forever.
    #[must_use]
    pub fn quota(&self) -> u64 {
        (2 * self.generation_size) as u64
    }

    /// The window base after `emitted` packets, parked over the tail.
    ///
    /// The base holds at 0 for the first `span` quota periods (the
    /// ramp-up) and then advances one generation per quota. Without the
    /// ramp, generation 0 would be live for a single quota period shared
    /// across `span` generations and retire with only `quota / span`
    /// packets served — starving the head of the stream.
    #[must_use]
    pub fn base(&self, emitted: u64, generations: usize) -> usize {
        ((emitted / self.quota()) as usize)
            .saturating_sub(self.span - 1)
            .min(generations.saturating_sub(self.span))
    }

    /// The generation to serve for emission number `emitted`:
    /// round-robin across the window's live span.
    #[must_use]
    pub fn pick(&self, emitted: u64, generations: usize) -> usize {
        let base = self.base(emitted, generations);
        let live = (generations - base).min(self.span);
        base + (emitted % live as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::Window;

    /// Every generation must be served at least a full quota of frames
    /// before the window slides past it, the base must never regress,
    /// and the window must park over the tail — otherwise subscribers
    /// who joined at stream start can never finish the head or the tail
    /// of the object.
    #[test]
    fn window_schedule_serves_every_generation_a_full_quota() {
        for (span, generation_size, generations) in
            [(3, 8, 12), (2, 8, 12), (4, 16, 5), (3, 8, 3), (2, 4, 64)]
        {
            let w = Window { span, generation_size };
            let mut served = vec![0u64; generations];
            let mut last_base = 0usize;
            // Enough emissions to slide the base onto the tail and park.
            let total = w.quota() * (generations + span) as u64;
            for emitted in 0..total {
                let base = w.base(emitted, generations);
                assert!(base >= last_base, "base regressed at emission {emitted}");
                assert!(base <= generations - span, "base overran the tail");
                let pick = w.pick(emitted, generations);
                assert!(
                    (base..base + span).contains(&pick),
                    "picked generation {pick} outside window [{base}, {})",
                    base + span
                );
                served[pick] += 1;
                last_base = base;
            }
            assert_eq!(last_base, generations - span, "window never parked on the tail");
            for (generation, &count) in served.iter().enumerate() {
                assert!(
                    count >= w.quota(),
                    "generation {generation} retired after only {count} of {} frames \
                     (span {span}, g {generation_size}, {generations} generations)",
                    w.quota()
                );
            }
        }
    }
}
