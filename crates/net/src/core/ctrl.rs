//! The control-plane protocol, generic over the address type.
//!
//! Every message the coordinator speaks — join, leave, complaint,
//! completion, resync, stats, snapshot/WAL shipping — is defined here
//! once, parameterized by [`WireAddr`]. The TCP driver instantiates it
//! at `std::net::SocketAddr` ([`crate::proto`] is that alias layer); the
//! vnet instantiates it at its own synthetic address type. The sans-io
//! core never names `std::net`.
//!
//! The wire codec is hand-rolled over [`curtain_telemetry::json`] — the
//! same dependency-free JSON layer the trace format uses — so the control
//! plane carries no serialization dependency and its wire form is
//! explicit: every message is a flat-ish tagged object, e.g.
//! `{"req":"complaint","child":4,"failed_parent":1,"thread":7}`.

use std::collections::BTreeMap;
use std::fmt::Debug;

use curtain_overlay::{NodeId, ThreadId};
use curtain_telemetry::json::{self, JsonValue};
use curtain_telemetry::TraceContext;

/// An address the control plane can carry on the wire as a string.
///
/// The core treats addresses as opaque tokens: it renders them into
/// JSON, parses them back, and hands them to whatever driver dialed in.
/// `SocketAddr` implements this in the driver layer; the vnet's
/// synthetic addresses implement it in the vnet.
pub trait WireAddr: Copy + Eq + Debug {
    /// Renders the address for the wire.
    fn render(&self) -> String;
    /// Parses a rendered address.
    ///
    /// # Errors
    ///
    /// Describes the malformed address.
    fn parse(s: &str) -> Result<Self, String>;
}

/// Where a stream comes from: the source host or a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlParent<A> {
    /// The source's data listener.
    Source(A),
    /// A peer's data listener.
    Node(NodeId, A),
}

impl<A: WireAddr> CtrlParent<A> {
    /// The address to dial.
    #[must_use]
    pub fn addr(&self) -> A {
        match self {
            CtrlParent::Source(a) | CtrlParent::Node(_, a) => *a,
        }
    }

    /// The peer id, if this is a peer.
    #[must_use]
    pub fn node(&self) -> Option<NodeId> {
        match self {
            CtrlParent::Source(_) => None,
            CtrlParent::Node(n, _) => Some(*n),
        }
    }

    fn to_json(self) -> JsonValue {
        let mut fields = BTreeMap::new();
        match self {
            CtrlParent::Source(a) => {
                fields.insert("kind".into(), JsonValue::Str("source".into()));
                fields.insert("addr".into(), JsonValue::Str(a.render()));
            }
            CtrlParent::Node(n, a) => {
                fields.insert("kind".into(), JsonValue::Str("node".into()));
                fields.insert("node".into(), JsonValue::Int(n.0 as i64));
                fields.insert("addr".into(), JsonValue::Str(a.render()));
            }
        }
        JsonValue::Object(fields)
    }

    fn from_json(v: &JsonValue) -> Result<Self, String> {
        let addr = parse_addr_field(v, "addr")?;
        match v.get("kind").and_then(JsonValue::as_str) {
            Some("source") => Ok(CtrlParent::Source(addr)),
            Some("node") => Ok(CtrlParent::Node(NodeId(field_u64(v, "node")?), addr)),
            other => Err(format!("bad parent kind {other:?}")),
        }
    }
}

/// Requests a client may send to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlRequest<A> {
    /// The source announces itself and the content shape.
    RegisterSource {
        /// Source data-plane listener.
        data_addr: A,
        /// Number of generations the object is split into.
        generations: usize,
        /// Packets per generation.
        generation_size: usize,
        /// Bytes per packet.
        packet_len: usize,
        /// Original (unpadded) object length in bytes.
        content_len: usize,
    },
    /// A new peer asks to join (the hello protocol).
    Hello {
        /// The peer's data-plane listener (where its children will dial).
        data_addr: A,
    },
    /// A peer leaves gracefully (the good-bye protocol).
    Goodbye {
        /// The departing peer.
        node: NodeId,
    },
    /// A child reports that its parent for `thread` stopped serving and
    /// asks where to resubscribe (failure report + repair).
    Complaint {
        /// The complaining child.
        child: NodeId,
        /// The parent that died (`None` = it was the source).
        failed_parent: Option<NodeId>,
        /// The thread whose stream broke.
        thread: ThreadId,
        /// Causal context of the repair episode's complain span, when
        /// the child traces: the coordinator hangs its splice span off
        /// it. Optional on the wire — untraced complainants omit the
        /// fields and old coordinators ignore them.
        ctx: Option<TraceContext>,
    },
    /// A peer announces it decoded the full generation.
    Completed {
        /// The peer.
        node: NodeId,
    },
    /// A peer answers an "unknown child" rejection with its full
    /// thread→parent view so an amnesiac coordinator (restarted without
    /// its WAL) can re-insert the row instead of stranding the peer.
    Resync {
        /// The peer re-introducing itself (keeps its old id).
        node: NodeId,
        /// The peer's data-plane listener.
        data_addr: A,
        /// `(thread, last-known parent)` per upstream thread (`None` =
        /// the source). The threads are the row; the parents are a hint
        /// the coordinator may audit but does not need.
        parents: Vec<(ThreadId, Option<NodeId>)>,
        /// Causal context for the resync, when the peer traces; the
        /// coordinator's readmit span becomes its child. Optional on the
        /// wire for the same reasons as `Complaint::ctx`.
        ctx: Option<TraceContext>,
    },
    /// Asks for progress counters (used by tests and operators).
    Stats,
    /// A warm standby asks for a full-state snapshot to bootstrap from
    /// (snapshot shipping over the control port — no shared filesystem).
    SnapshotFetch,
    /// A warm standby asks for the WAL records committed after `after`
    /// (its last applied sequence number). The primary answers from its
    /// in-memory tail ring, or with an error telling the standby to
    /// refetch a snapshot if the ring no longer reaches back that far.
    WalTail {
        /// The last commit sequence number the standby has applied.
        after: u64,
    },
}

impl<A: WireAddr> CtrlRequest<A> {
    /// The single-line JSON wire form (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut fields = BTreeMap::new();
        let tag = |fields: &mut BTreeMap<String, JsonValue>, t: &str| {
            fields.insert("req".into(), JsonValue::Str(t.into()));
        };
        match self {
            CtrlRequest::RegisterSource {
                data_addr,
                generations,
                generation_size,
                packet_len,
                content_len,
            } => {
                tag(&mut fields, "register_source");
                fields.insert("data_addr".into(), JsonValue::Str(data_addr.render()));
                fields.insert("generations".into(), JsonValue::Int(*generations as i64));
                fields
                    .insert("generation_size".into(), JsonValue::Int(*generation_size as i64));
                fields.insert("packet_len".into(), JsonValue::Int(*packet_len as i64));
                fields.insert("content_len".into(), JsonValue::Int(*content_len as i64));
            }
            CtrlRequest::Hello { data_addr } => {
                tag(&mut fields, "hello");
                fields.insert("data_addr".into(), JsonValue::Str(data_addr.render()));
            }
            CtrlRequest::Goodbye { node } => {
                tag(&mut fields, "goodbye");
                fields.insert("node".into(), JsonValue::Int(node.0 as i64));
            }
            CtrlRequest::Complaint { child, failed_parent, thread, ctx } => {
                tag(&mut fields, "complaint");
                fields.insert("child".into(), JsonValue::Int(child.0 as i64));
                fields.insert(
                    "failed_parent".into(),
                    match failed_parent {
                        Some(n) => JsonValue::Int(n.0 as i64),
                        None => JsonValue::Null,
                    },
                );
                fields.insert("thread".into(), JsonValue::Int(i64::from(*thread)));
                insert_ctx(&mut fields, *ctx);
            }
            CtrlRequest::Completed { node } => {
                tag(&mut fields, "completed");
                fields.insert("node".into(), JsonValue::Int(node.0 as i64));
            }
            CtrlRequest::Resync { node, data_addr, parents, ctx } => {
                tag(&mut fields, "resync");
                insert_ctx(&mut fields, *ctx);
                fields.insert("node".into(), JsonValue::Int(node.0 as i64));
                fields.insert("data_addr".into(), JsonValue::Str(data_addr.render()));
                fields.insert(
                    "parents".into(),
                    JsonValue::Array(
                        parents
                            .iter()
                            .map(|(t, p)| {
                                JsonValue::Array(vec![
                                    JsonValue::Int(i64::from(*t)),
                                    match p {
                                        Some(n) => JsonValue::Int(n.0 as i64),
                                        None => JsonValue::Null,
                                    },
                                ])
                            })
                            .collect(),
                    ),
                );
            }
            CtrlRequest::Stats => tag(&mut fields, "stats"),
            CtrlRequest::SnapshotFetch => tag(&mut fields, "snapshot_fetch"),
            CtrlRequest::WalTail { after } => {
                tag(&mut fields, "wal_tail");
                fields.insert("after".into(), JsonValue::Int(*after as i64));
            }
        }
        JsonValue::Object(fields).render()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed lines.
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let v = json::parse_document(line.trim())?;
        let req = match v.get("req").and_then(JsonValue::as_str) {
            Some(t) => t,
            None => return Err("missing \"req\" tag".into()),
        };
        match req {
            "register_source" => Ok(CtrlRequest::RegisterSource {
                data_addr: parse_addr_field(&v, "data_addr")?,
                generations: field_usize(&v, "generations")?,
                generation_size: field_usize(&v, "generation_size")?,
                packet_len: field_usize(&v, "packet_len")?,
                content_len: field_usize(&v, "content_len")?,
            }),
            "hello" => {
                Ok(CtrlRequest::Hello { data_addr: parse_addr_field(&v, "data_addr")? })
            }
            "goodbye" => Ok(CtrlRequest::Goodbye { node: NodeId(field_u64(&v, "node")?) }),
            "complaint" => Ok(CtrlRequest::Complaint {
                child: NodeId(field_u64(&v, "child")?),
                failed_parent: match v.get("failed_parent") {
                    Some(JsonValue::Null) | None => None,
                    Some(x) => Some(NodeId(
                        x.as_u64().ok_or("bad failed_parent")?,
                    )),
                },
                thread: field_thread(&v)?,
                ctx: parse_ctx(&v),
            }),
            "completed" => Ok(CtrlRequest::Completed { node: NodeId(field_u64(&v, "node")?) }),
            "resync" => {
                let parents_json = v
                    .get("parents")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing parents array")?;
                let mut parents = Vec::with_capacity(parents_json.len());
                for pair in parents_json {
                    let [t, p] = pair.as_array().ok_or("bad parent pair")? else {
                        return Err("parent pair is not 2-element".into());
                    };
                    let thread = t
                        .as_u64()
                        .and_then(|x| ThreadId::try_from(x).ok())
                        .ok_or("bad thread id")?;
                    let parent = match p {
                        JsonValue::Null => None,
                        x => Some(NodeId(x.as_u64().ok_or("bad parent id")?)),
                    };
                    parents.push((thread, parent));
                }
                Ok(CtrlRequest::Resync {
                    node: NodeId(field_u64(&v, "node")?),
                    data_addr: parse_addr_field(&v, "data_addr")?,
                    parents,
                    ctx: parse_ctx(&v),
                })
            }
            "stats" => Ok(CtrlRequest::Stats),
            "snapshot_fetch" => Ok(CtrlRequest::SnapshotFetch),
            "wal_tail" => Ok(CtrlRequest::WalTail { after: field_u64(&v, "after")? }),
            other => Err(format!("unknown request {other:?}")),
        }
    }
}

/// Responses from the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlResponse<A> {
    /// Join granted.
    Welcome {
        /// Assigned node id.
        node: NodeId,
        /// Number of generations.
        generations: usize,
        /// Packets per generation.
        generation_size: usize,
        /// Bytes per packet.
        packet_len: usize,
        /// Original (unpadded) object length.
        content_len: usize,
        /// One parent per assigned thread.
        parents: Vec<(ThreadId, CtrlParent<A>)>,
    },
    /// Where to resubscribe after a complaint.
    Redirect {
        /// The thread in question.
        thread: ThreadId,
        /// The child's current parent for that thread.
        new_parent: CtrlParent<A>,
    },
    /// Progress counters.
    Stats {
        /// Current members.
        members: usize,
        /// Members that reported completion.
        completed: usize,
        /// Failures repaired so far.
        repairs: u64,
    },
    /// Generic acknowledgement.
    Ok,
    /// A strict-mode coordinator refuses to mutate while its WAL is
    /// degraded (the mutation would not be durable).
    Unavailable {
        /// Human-readable reason.
        reason: String,
    },
    /// A full-state snapshot for a bootstrapping standby.
    Snapshot {
        /// The commit sequence number the snapshot covers: tailing
        /// `WalTail { after: seq }` streams everything after it.
        seq: u64,
        /// A `WalRecord::Checkpoint` payload (opaque JSON at this layer).
        record: String,
    },
    /// A batch of committed WAL records for a tailing standby.
    WalSegment {
        /// The sequence number of the last record shipped (equals the
        /// request's `after` when `records` is empty).
        last: u64,
        /// `WalRecord` payloads in commit order (opaque JSON here).
        records: Vec<String>,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        reason: String,
    },
}

impl<A: WireAddr> CtrlResponse<A> {
    /// The single-line JSON wire form (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut fields = BTreeMap::new();
        let tag = |fields: &mut BTreeMap<String, JsonValue>, t: &str| {
            fields.insert("resp".into(), JsonValue::Str(t.into()));
        };
        match self {
            CtrlResponse::Welcome {
                node,
                generations,
                generation_size,
                packet_len,
                content_len,
                parents,
            } => {
                tag(&mut fields, "welcome");
                fields.insert("node".into(), JsonValue::Int(node.0 as i64));
                fields.insert("generations".into(), JsonValue::Int(*generations as i64));
                fields
                    .insert("generation_size".into(), JsonValue::Int(*generation_size as i64));
                fields.insert("packet_len".into(), JsonValue::Int(*packet_len as i64));
                fields.insert("content_len".into(), JsonValue::Int(*content_len as i64));
                fields.insert(
                    "parents".into(),
                    JsonValue::Array(
                        parents
                            .iter()
                            .map(|(t, p)| {
                                JsonValue::Array(vec![
                                    JsonValue::Int(i64::from(*t)),
                                    p.to_json(),
                                ])
                            })
                            .collect(),
                    ),
                );
            }
            CtrlResponse::Redirect { thread, new_parent } => {
                tag(&mut fields, "redirect");
                fields.insert("thread".into(), JsonValue::Int(i64::from(*thread)));
                fields.insert("new_parent".into(), new_parent.to_json());
            }
            CtrlResponse::Stats { members, completed, repairs } => {
                tag(&mut fields, "stats");
                fields.insert("members".into(), JsonValue::Int(*members as i64));
                fields.insert("completed".into(), JsonValue::Int(*completed as i64));
                fields.insert("repairs".into(), JsonValue::Int(*repairs as i64));
            }
            CtrlResponse::Ok => tag(&mut fields, "ok"),
            CtrlResponse::Unavailable { reason } => {
                tag(&mut fields, "unavailable");
                fields.insert("reason".into(), JsonValue::Str(reason.clone()));
            }
            CtrlResponse::Snapshot { seq, record } => {
                tag(&mut fields, "snapshot");
                fields.insert("seq".into(), JsonValue::Int(*seq as i64));
                fields.insert("record".into(), JsonValue::Str(record.clone()));
            }
            CtrlResponse::WalSegment { last, records } => {
                tag(&mut fields, "wal_segment");
                fields.insert("last".into(), JsonValue::Int(*last as i64));
                fields.insert(
                    "records".into(),
                    JsonValue::Array(
                        records.iter().map(|r| JsonValue::Str(r.clone())).collect(),
                    ),
                );
            }
            CtrlResponse::Error { reason } => {
                tag(&mut fields, "error");
                fields.insert("reason".into(), JsonValue::Str(reason.clone()));
            }
        }
        JsonValue::Object(fields).render()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed lines.
    pub fn parse_json_line(line: &str) -> Result<Self, String> {
        let v = json::parse_document(line.trim())?;
        let resp = match v.get("resp").and_then(JsonValue::as_str) {
            Some(t) => t,
            None => return Err("missing \"resp\" tag".into()),
        };
        match resp {
            "welcome" => {
                let parents_json = v
                    .get("parents")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing parents array")?;
                let mut parents = Vec::with_capacity(parents_json.len());
                for pair in parents_json {
                    let items = pair.as_array().ok_or("bad parent pair")?;
                    let [t, p] = items else {
                        return Err("parent pair is not 2-element".into());
                    };
                    let thread = t
                        .as_u64()
                        .and_then(|x| ThreadId::try_from(x).ok())
                        .ok_or("bad thread id")?;
                    parents.push((thread, CtrlParent::from_json(p)?));
                }
                Ok(CtrlResponse::Welcome {
                    node: NodeId(field_u64(&v, "node")?),
                    generations: field_usize(&v, "generations")?,
                    generation_size: field_usize(&v, "generation_size")?,
                    packet_len: field_usize(&v, "packet_len")?,
                    content_len: field_usize(&v, "content_len")?,
                    parents,
                })
            }
            "redirect" => Ok(CtrlResponse::Redirect {
                thread: field_thread(&v)?,
                new_parent: CtrlParent::from_json(
                    v.get("new_parent").ok_or("missing new_parent")?,
                )?,
            }),
            "stats" => Ok(CtrlResponse::Stats {
                members: field_usize(&v, "members")?,
                completed: field_usize(&v, "completed")?,
                repairs: field_u64(&v, "repairs")?,
            }),
            "ok" => Ok(CtrlResponse::Ok),
            "unavailable" => Ok(CtrlResponse::Unavailable {
                reason: v
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing reason")?
                    .to_string(),
            }),
            "snapshot" => Ok(CtrlResponse::Snapshot {
                seq: field_u64(&v, "seq")?,
                record: v
                    .get("record")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing record")?
                    .to_string(),
            }),
            "wal_segment" => Ok(CtrlResponse::WalSegment {
                last: field_u64(&v, "last")?,
                records: v
                    .get("records")
                    .and_then(JsonValue::as_array)
                    .ok_or("missing records array")?
                    .iter()
                    .map(|r| r.as_str().map(str::to_string).ok_or("bad record payload"))
                    .collect::<Result<_, _>>()?,
            }),
            "error" => Ok(CtrlResponse::Error {
                reason: v
                    .get("reason")
                    .and_then(JsonValue::as_str)
                    .ok_or("missing reason")?
                    .to_string(),
            }),
            other => Err(format!("unknown response {other:?}")),
        }
    }
}

/// Adds the optional `"trace"`/`"span"` fields carrying a causal context.
fn insert_ctx(fields: &mut BTreeMap<String, JsonValue>, ctx: Option<TraceContext>) {
    if let Some(ctx) = ctx {
        fields.insert("trace".into(), JsonValue::Int(ctx.trace as i64));
        fields.insert("span".into(), JsonValue::Int(ctx.span as i64));
    }
}

/// Reads the optional `"trace"`/`"span"` context fields. Absent or
/// malformed fields read as "no context" — a request from an untraced
/// (or older) sender must keep parsing.
fn parse_ctx(v: &JsonValue) -> Option<TraceContext> {
    let trace = v.get("trace").and_then(JsonValue::as_u64)?;
    let span = v.get("span").and_then(JsonValue::as_u64)?;
    Some(TraceContext { trace, span })
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    usize::try_from(field_u64(v, key)?).map_err(|_| format!("field {key:?} overflows usize"))
}

fn field_thread(v: &JsonValue) -> Result<ThreadId, String> {
    ThreadId::try_from(field_u64(v, "thread")?).map_err(|_| "thread overflows u16".to_string())
}

fn parse_addr_field<A: WireAddr>(v: &JsonValue, key: &str) -> Result<A, String> {
    A::parse(
        v.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing addr field {key:?}"))?,
    )
    .map_err(|e| format!("bad address in {key:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy address type: proves the codec is address-agnostic.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Slot(u64);

    impl WireAddr for Slot {
        fn render(&self) -> String {
            format!("slot:{}", self.0)
        }
        fn parse(s: &str) -> Result<Self, String> {
            s.strip_prefix("slot:")
                .and_then(|n| n.parse().ok())
                .map(Slot)
                .ok_or_else(|| format!("bad slot address {s:?}"))
        }
    }

    #[test]
    fn generic_messages_round_trip_over_a_synthetic_address_type() {
        let reqs = vec![
            CtrlRequest::Hello { data_addr: Slot(4) },
            CtrlRequest::Resync {
                node: NodeId(17),
                data_addr: Slot(9),
                parents: vec![(0, Some(NodeId(2))), (3, None)],
                ctx: Some(TraceContext { trace: 7, span: 9 }),
            },
            CtrlRequest::RegisterSource {
                data_addr: Slot(0),
                generations: 3,
                generation_size: 16,
                packet_len: 1024,
                content_len: 40_000,
            },
        ];
        for r in reqs {
            let s = r.to_json_line();
            assert_eq!(CtrlRequest::<Slot>::parse_json_line(&s).expect(&s), r, "line: {s}");
        }
        let resps = vec![
            CtrlResponse::Welcome {
                node: NodeId(1),
                generations: 3,
                generation_size: 16,
                packet_len: 1024,
                content_len: 40_000,
                parents: vec![
                    (0, CtrlParent::Source(Slot(1))),
                    (5, CtrlParent::Node(NodeId(2), Slot(3))),
                ],
            },
            CtrlResponse::Redirect {
                thread: 7,
                new_parent: CtrlParent::Node(NodeId(8), Slot(11)),
            },
        ];
        for r in resps {
            let s = r.to_json_line();
            assert_eq!(CtrlResponse::<Slot>::parse_json_line(&s).expect(&s), r, "line: {s}");
        }
    }

    #[test]
    fn a_bad_address_is_reported_not_panicked() {
        let line = r#"{"req":"hello","data_addr":"127.0.0.1:80"}"#;
        assert!(CtrlRequest::<Slot>::parse_json_line(line).is_err());
    }
}
