//! The peer's sans-io core: generation buffers and link liveness.
//!
//! Two pieces of the peer are pure protocol, independent of where the
//! bytes come from:
//!
//! * [`ObjectState`] — the per-generation recode buffers, the serving
//!   rotation, the upstream window base, and completion accounting. The
//!   TCP driver feeds it from socket reads; the vnet feeds it from
//!   simulated deliveries; both serve children by snapshotting a
//!   generation here and recoding outside any lock.
//! * [`LinkLiveness`] — the stall detector for one upstream thread: a
//!   parent that stays connected but sends nothing is still a defect
//!   once the stall timeout passes (a partition, not a close). Time is
//!   an explicit microsecond counter so the same arithmetic runs on the
//!   wall clock and on the vnet's virtual clock.
//!
//! The repair *schedule* (backoff, deadline, sliding-window budget)
//! lives next door in [`crate::core::repair`]; the I/O loops that use
//! all three stay in the drivers.

use std::sync::Arc;
use std::time::Duration;

use curtain_rlnc::{BufPool, CodedPacket, RecodeSnapshot, Recoder};
use curtain_telemetry::TraceContext;

/// Per-generation buffers plus the rotation cursor for serving children.
pub struct ObjectState {
    /// One recoder per generation (the decode/recode buffer).
    pub recoders: Vec<Recoder>,
    /// Generations decoded to full rank so far.
    pub complete_count: usize,
    serve_cursor: usize,
    /// Oldest generation still in the upstream's active window (0 when
    /// no parent windows). Serving skips generations behind it, and the
    /// base is re-stamped on outgoing frames so the window propagates
    /// down the overlay.
    pub window_base: usize,
    /// Per generation: the causal context of the last *innovative* packet
    /// received. A recoded outgoing packet is a linear mix of everything
    /// in the generation's basis, so its causal parent is "the most recent
    /// packet that actually changed that basis" — the best single
    /// antecedent a linear code admits.
    last_ctx: Vec<Option<TraceContext>>,
}

impl ObjectState {
    /// [`ObjectState::with_pool`] over a private pool.
    #[must_use]
    pub fn new(generations: usize, generation_size: usize, packet_len: usize) -> Self {
        Self::with_pool(generations, generation_size, packet_len, BufPool::default())
    }

    /// All generations draw row storage from one shared pool, so ingest
    /// and recode traffic is allocation-free at steady state.
    #[must_use]
    pub fn with_pool(
        generations: usize,
        generation_size: usize,
        packet_len: usize,
        pool: BufPool,
    ) -> Self {
        ObjectState {
            recoders: (0..generations)
                .map(|g| Recoder::with_pool(g as u32, generation_size, packet_len, pool.clone()))
                .collect(),
            complete_count: 0,
            serve_cursor: 0,
            window_base: 0,
            last_ctx: vec![None; generations],
        }
    }

    /// Notes an upstream window base; the base only moves forward (a
    /// straggling parent cannot reopen retired generations).
    pub fn advance_window(&mut self, base: usize) {
        self.window_base = self.window_base.max(base.min(self.recoders.len()));
    }

    /// Returns true iff the push was innovative.
    pub fn push(&mut self, packet: CodedPacket) -> bool {
        self.push_ctx(packet, None)
    }

    /// [`ObjectState::push`] carrying the packet's causal context; an
    /// innovative push makes it the generation's current context (see
    /// [`ObjectState::last_ctx`]).
    pub fn push_ctx(&mut self, packet: CodedPacket, ctx: Option<TraceContext>) -> bool {
        let g = packet.generation() as usize;
        let Some(recoder) = self.recoders.get_mut(g) else {
            return false;
        };
        let was_complete = recoder.is_complete();
        let innovative = recoder.push(packet).unwrap_or(false);
        if !was_complete && recoder.is_complete() {
            self.complete_count += 1;
        }
        if innovative && ctx.is_some() {
            self.last_ctx[g] = ctx;
        }
        innovative
    }

    /// True once every generation is decodable.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.complete_count == self.recoders.len()
    }

    /// Current total decoding rank across generations.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.recoders.iter().map(Recoder::rank).sum()
    }

    /// A snapshot of the next generation with data, rotating so children
    /// receive all generations. The caller recodes from the snapshot
    /// *outside* the state lock. Unlike a full `Recoder` clone, the
    /// snapshot is an `Arc` over the generation's current basis rows
    /// (cached inside the recoder until the next innovative packet), so
    /// the critical section is an O(1) refcount bump: no row memcpy, no
    /// GF math, and the upstream `push` path cannot stall behind a slow
    /// child. Later inserts copy-on-write around outstanding snapshots.
    pub fn snapshot_next(&mut self) -> Option<Arc<RecodeSnapshot>> {
        self.snapshot_next_ctx().map(|(snap, _)| snap)
    }

    /// [`ObjectState::snapshot_next`] plus the generation's current causal
    /// context (the last innovative packet's), so the serving path can
    /// derive a child span for the recoded frame.
    pub fn snapshot_next_ctx(&mut self) -> Option<(Arc<RecodeSnapshot>, Option<TraceContext>)> {
        let n = self.recoders.len();
        for probe in 0..n {
            let g = (self.serve_cursor + probe) % n;
            if g < self.window_base {
                continue; // retired by the upstream window
            }
            if self.recoders[g].rank() > 0 {
                self.serve_cursor = (g + 1) % n;
                return Some((self.recoders[g].snapshot(), self.last_ctx[g]));
            }
        }
        None
    }

    /// Every generation's decoded packets, or `None` before completion.
    #[must_use]
    pub fn recover_all(&self) -> Option<Vec<Vec<Vec<u8>>>> {
        self.recoders.iter().map(Recoder::recover).collect()
    }
}

/// The stall detector for one upstream link, on an explicit clock.
///
/// The protocol decision: an idle link is healthy while the peer is
/// complete (nothing more is owed) or while the quiet period is shorter
/// than the policy's stall timeout; past that, the silence is a defect
/// and the thread must run a repair episode exactly as if the socket had
/// died.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkLiveness {
    last_data_us: u64,
    stall_us: u64,
}

impl LinkLiveness {
    /// A fresh link, considered live as of `now_us`.
    #[must_use]
    pub fn new(stall_timeout: Duration, now_us: u64) -> Self {
        let stall_us = u64::try_from(stall_timeout.as_micros()).unwrap_or(u64::MAX);
        LinkLiveness { last_data_us: now_us, stall_us }
    }

    /// Books a frame arrival: the quiet period restarts.
    pub fn on_data(&mut self, now_us: u64) {
        self.last_data_us = self.last_data_us.max(now_us);
    }

    /// Whether the link has been quiet past the stall timeout. A complete
    /// peer never stalls: it is owed nothing.
    #[must_use]
    pub fn is_stalled(&self, now_us: u64, complete: bool) -> bool {
        !complete && now_us.saturating_sub(self.last_data_us) >= self.stall_us
    }

    /// Microseconds of quiet so far.
    #[must_use]
    pub fn idle_us(&self, now_us: u64) -> u64 {
        now_us.saturating_sub(self.last_data_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use curtain_rlnc::pipeline::{ObjectEncoder, Schedule};
    use curtain_rlnc::Content;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn filled_state(
        generations: usize,
        generation_size: usize,
        packet_len: usize,
        packets: usize,
    ) -> (ObjectState, ObjectEncoder, StdRng) {
        let content: Vec<u8> = (0..generations * generation_size * packet_len)
            .map(|i| (i % 251) as u8)
            .collect();
        let split = Content::split(&content, generation_size, packet_len);
        let mut encoder = ObjectEncoder::new(split).with_schedule(Schedule::RoundRobin);
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        let mut state = ObjectState::new(generations, generation_size, packet_len);
        for _ in 0..packets {
            state.push(encoder.next_packet(&mut rng));
        }
        (state, encoder, rng)
    }

    #[test]
    fn snapshot_next_rotates_generations() {
        let (mut state, _, mut rng) = filled_state(3, 4, 64, 12);
        let mut seen = Vec::new();
        for _ in 0..6 {
            let snap = state.snapshot_next().expect("rank > 0");
            let packet = snap.recode(&mut rng).expect("recodable");
            seen.push(packet.generation());
        }
        // Rotation visits every generation with data, twice around.
        assert_eq!(seen, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn window_base_retires_generations_from_serving() {
        let (mut state, _, mut rng) = filled_state(4, 4, 32, 16);
        state.advance_window(2);
        let mut seen = Vec::new();
        for _ in 0..6 {
            let snap = state.snapshot_next().expect("window still has data");
            seen.push(snap.recode(&mut rng).expect("recodable").generation());
        }
        assert_eq!(seen, vec![2, 3, 2, 3, 2, 3], "generations 0 and 1 are retired");
        // The base never moves backwards, and is clamped to the object.
        state.advance_window(1);
        assert_eq!(state.window_base, 2);
        state.advance_window(99);
        assert_eq!(state.window_base, 4);
        assert!(state.snapshot_next().is_none(), "everything retired");
    }

    #[test]
    fn snapshot_on_empty_state_is_none() {
        let mut state = ObjectState::new(2, 4, 32);
        assert!(state.snapshot_next().is_none());
    }

    /// The lock-held cost of `snapshot_next` is an `Arc` clone, not a
    /// `Recoder` clone: with a stable basis, consecutive snapshots of the
    /// same generation are pointer-identical, and only an innovative push
    /// produces a fresh one.
    #[test]
    fn snapshot_next_shares_until_innovation() {
        let (mut state, mut encoder, mut rng) = filled_state(1, 8, 64, 4);
        let a = state.snapshot_next().expect("rank > 0");
        let b = state.snapshot_next().expect("rank > 0");
        assert!(Arc::ptr_eq(&a, &b), "stable basis must re-share the cached snapshot");
        // Push until the rank grows; the next snapshot must be new.
        let before = a.epoch();
        while !state.push(encoder.next_packet(&mut rng)) {}
        let c = state.snapshot_next().expect("rank > 0");
        assert!(!Arc::ptr_eq(&a, &c), "innovation must invalidate the cached snapshot");
        assert!(c.epoch() > before);
    }

    #[test]
    fn liveness_stalls_only_past_the_timeout_and_never_when_complete() {
        let mut link = LinkLiveness::new(Duration::from_millis(5), 1_000);
        assert!(!link.is_stalled(1_000, false));
        assert!(!link.is_stalled(5_999, false), "one µs short of the timeout");
        assert!(link.is_stalled(6_000, false));
        assert!(!link.is_stalled(60_000, true), "complete peers are owed nothing");
        // Data resets the quiet period; a stale timestamp cannot rewind it.
        link.on_data(10_000);
        assert_eq!(link.idle_us(12_000), 2_000);
        link.on_data(9_000);
        assert_eq!(link.idle_us(12_000), 2_000, "clock must not move backwards");
        assert!(!link.is_stalled(14_999, false));
        assert!(link.is_stalled(15_000, false));
    }
}
