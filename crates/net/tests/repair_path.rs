//! Regression tests for the repair path's permanent-defect bugs, driven
//! through the fault-injecting proxy.

use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

use curtain_net::faults::{Fault, FaultProxy};
use curtain_net::framing::{self, Subscribe};
use curtain_net::repair::RepairPolicy;
use curtain_net::{Coordinator, Peer, PeerConfig, PendingSource, Source};
use curtain_overlay::{NodeId, OverlayConfig};
use curtain_telemetry::{MemorySink, SharedRecorder};

const PACE: Duration = Duration::from_micros(150);

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 % 251) as u8).collect()
}

/// Bind the source, put a fault proxy in front of its data port, and
/// register the *proxy* address, so every Hello/Redirect hands out the
/// proxied path. (The coordinator rejects re-registration at a different
/// address, so the proxy must be the advertised address from the start.)
fn proxied_source(coordinator: &Coordinator, data: &[u8], generation_size: usize) -> (Source, FaultProxy) {
    let pending = PendingSource::bind(data, generation_size, PACE).unwrap();
    let proxy = FaultProxy::start(pending.data_addr()).unwrap();
    let source = pending.register_as(coordinator.addr(), proxy.addr()).unwrap();
    (source, proxy)
}

fn quick_policy() -> RepairPolicy {
    RepairPolicy {
        initial_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        deadline: Duration::from_secs(10),
        window: Duration::from_secs(10),
        window_budget: 1000,
        stall_timeout: Duration::from_millis(800),
        ..RepairPolicy::default()
    }
}

/// Satellite (b): a transient coordinator outage during a repair episode
/// must be retried, not treated as a permanent defect. Under the old
/// `complain()` the first failed call killed the upstream thread forever
/// and the peer never completed.
#[test]
fn complaint_retries_through_coordinator_outage() {
    let coordinator = Coordinator::start_seeded(OverlayConfig::new(4, 2), 21).unwrap();
    let coord_proxy = FaultProxy::start(coordinator.addr()).unwrap();
    let data = content(4096);
    let (_source, source_proxy) = proxied_source(&coordinator, &data, 16);

    let sink = MemorySink::new();
    let peer = Peer::join_with(
        coord_proxy.addr(),
        PeerConfig {
            pace: PACE,
            recorder: SharedRecorder::wall_clock(sink.clone()),
            repair: quick_policy(),
            ..PeerConfig::default()
        },
    )
    .unwrap();
    // Let data flow, then break both the upstream and the control plane.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while peer.rank() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(peer.rank() > 0, "no data before fault injection");

    coord_proxy.set_fault(Fault::Refuse);
    source_proxy.set_fault(Fault::Refuse);
    source_proxy.cut();
    // Several complaint attempts fail against the refused coordinator.
    std::thread::sleep(Duration::from_millis(300));
    coord_proxy.set_fault(Fault::None);
    source_proxy.set_fault(Fault::None);

    // The in-flight episode is mid-backoff when the outage heals; wait
    // for its complaint to land before tearing anything down.
    let repaired = std::time::Instant::now() + Duration::from_secs(10);
    while sink.metrics().snapshot().counters.get("repairs").copied().unwrap_or(0) == 0
        && std::time::Instant::now() < repaired
    {
        std::thread::sleep(Duration::from_millis(10));
    }

    assert!(
        peer.wait_complete(Duration::from_secs(15)),
        "peer never recovered from a transient coordinator outage"
    );
    assert_eq!(peer.decoded_content().unwrap(), data);
    drop(peer);

    let metrics = sink.metrics().snapshot();
    assert!(metrics.counters.get("repairs").copied().unwrap_or(0) >= 1);
    assert_eq!(metrics.counters.get("repair_gave_up").copied().unwrap_or(0), 0);
    // The outage forced at least one episode to retry: some successful
    // episode took more than one attempt.
    let attempts = &metrics.histograms["repair_attempts"];
    assert!(
        attempts.max >= 2.0,
        "expected a multi-attempt episode, got max {}",
        attempts.max
    );
    let kinds: Vec<&str> = sink.events().iter().map(|(_, e)| e.kind()).collect();
    assert!(kinds.contains(&"repair_attempt"));
    assert!(!kinds.contains(&"repair_gave_up"));
}

/// A connection that truncates mid-frame (a byte budget, then hard close)
/// must trigger repair and never corrupt the decode: every frame carries
/// its coefficients, so a partial frame is dropped at the framing layer.
#[test]
fn truncated_mid_frame_connection_repairs_cleanly() {
    let coordinator = Coordinator::start_seeded(OverlayConfig::new(4, 2), 22).unwrap();
    let data = content(4096);
    let (_source, proxy) = proxied_source(&coordinator, &data, 16);

    let sink = MemorySink::new();
    let peer = Peer::join_with(
        coordinator.addr(),
        PeerConfig {
            pace: PACE,
            recorder: SharedRecorder::wall_clock(sink.clone()),
            repair: quick_policy(),
            ..PeerConfig::default()
        },
    )
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while peer.rank() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(peer.rank() > 0);

    // 777 is deliberately not frame-aligned: connections die mid-frame.
    proxy.set_fault(Fault::Truncate(777));
    proxy.cut();
    std::thread::sleep(Duration::from_millis(400));
    proxy.set_fault(Fault::None);
    proxy.cut(); // kill pumps still holding a truncation budget

    assert!(
        peer.wait_complete(Duration::from_secs(15)),
        "peer never recovered from mid-frame truncation"
    );
    assert_eq!(peer.decoded_content().unwrap(), data, "decode corrupted by partial frames");
    drop(peer);

    let metrics = sink.metrics().snapshot();
    assert!(metrics.counters.get("repairs").copied().unwrap_or(0) >= 1);
    assert_eq!(metrics.counters.get("repair_gave_up").copied().unwrap_or(0), 0);
}

/// Satellite (d): `crash()` must join the per-child serving threads. By
/// the time it returns, a subscribed child's socket sees EOF — no
/// detached thread keeps serving a peer the caller believes is gone.
#[test]
fn crash_joins_child_serving_threads() {
    let coordinator = Coordinator::start_seeded(OverlayConfig::new(4, 2), 23).unwrap();
    let data = content(4096);
    let _source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
    let peer = Peer::join_paced(coordinator.addr(), PACE).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while peer.rank() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(peer.rank() > 0);

    // Subscribe a hand-rolled child and read one frame to prove the
    // serving thread is live.
    let mut child = TcpStream::connect(peer.data_addr()).unwrap();
    framing::write_subscribe(&child, &Subscribe { node: NodeId(999), thread: 0 }).unwrap();
    child.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let first = framing::read_frame(&mut child).unwrap();
    assert!(first.is_some(), "child subscription never served a frame");
    let child_deadline = std::time::Instant::now() + Duration::from_secs(5);
    while peer.active_children() == 0 && std::time::Instant::now() < child_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(peer.active_children(), 1);

    peer.crash();
    // crash() has returned, so the serving thread is joined and its
    // socket dropped: the child drains buffered frames then hits EOF.
    child.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut buf = [0u8; 4096];
    let saw_eof = loop {
        match child.read(&mut buf) {
            Ok(0) => break true,
            Ok(_) => continue,
            Err(_) => break false,
        }
    };
    assert!(saw_eof, "child socket still open after crash() returned");
}

/// Stall detection: a parent that stays connected but sends nothing is a
/// defect. Blackhole the source link (no close, no data) and the peer
/// must complain and recover once redirected.
#[test]
fn stalled_but_connected_parent_triggers_repair() {
    let coordinator = Coordinator::start_seeded(OverlayConfig::new(4, 2), 24).unwrap();
    let data = content(4096);
    let (_source, proxy) = proxied_source(&coordinator, &data, 16);

    // Silence the link before the peer ever connects: sockets open fine
    // but no byte moves — a partition, not a close. The old loop treated
    // WouldBlock as pure idleness and waited forever.
    proxy.set_fault(Fault::Blackhole);

    let sink = MemorySink::new();
    let peer = Peer::join_with(
        coordinator.addr(),
        PeerConfig {
            pace: PACE,
            recorder: SharedRecorder::wall_clock(sink.clone()),
            repair: quick_policy(),
            ..PeerConfig::default()
        },
    )
    .unwrap();
    // Long enough for at least one stall episode (stall_timeout 800ms).
    std::thread::sleep(Duration::from_millis(1200));
    proxy.set_fault(Fault::None);

    assert!(
        peer.wait_complete(Duration::from_secs(15)),
        "peer never detected the stalled parent"
    );
    assert_eq!(peer.decoded_content().unwrap(), data);
    drop(peer);

    let metrics = sink.metrics().snapshot();
    assert!(metrics.counters.get("repairs").copied().unwrap_or(0) >= 1);
    assert_eq!(metrics.counters.get("repair_gave_up").copied().unwrap_or(0), 0);
}
