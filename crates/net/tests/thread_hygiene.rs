//! Thread-join audit, as a test: every role's shutdown (or `Drop`) must
//! reclaim every OS thread it spawned. A "working" session that leaves
//! detached threads behind is how long-lived processes — and long `cargo
//! test` runs — slowly drown.
//!
//! Linux-only: the count comes from `/proc/self/status`. This file holds
//! exactly one `#[test]` so no sibling test's threads can race the
//! baseline.

#![cfg(target_os = "linux")]

use std::time::{Duration, Instant};

use curtain_net::{Coordinator, Peer, Source};
use curtain_overlay::OverlayConfig;

const PACE: Duration = Duration::from_micros(150);
const DECODE_TIMEOUT: Duration = Duration::from_secs(20);

fn os_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

#[test]
fn a_full_session_reclaims_every_os_thread() {
    let baseline = os_threads();
    {
        let coordinator = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
        let data: Vec<u8> = (0..4096).map(|i| (i * 131 + 7) as u8).collect();
        let source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
        let peers: Vec<Peer> = (0..3).map(|_| Peer::join(coordinator.addr()).unwrap()).collect();
        for (i, peer) in peers.iter().enumerate() {
            assert!(peer.wait_complete(DECODE_TIMEOUT), "peer {i} never decoded");
        }
        assert!(os_threads() > baseline, "the session spawned no threads at all?");
        // Tear down through both exits: one peer leaves politely, the
        // rest are dropped; source and coordinator use their explicit
        // shutdowns.
        let mut peers = peers;
        peers.pop().unwrap().leave();
        drop(peers);
        source.shutdown();
        coordinator.shutdown();
    }
    // Every join happens inside Drop/shutdown, so by here the count
    // should already be back — but a just-joined thread's kernel exit
    // can trail the join return, so poll briefly instead of flaking.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now = os_threads();
        if now <= baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "session leaked {} OS thread(s): {now} now vs {baseline} before",
            now - baseline
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
