//! End-to-end broadcasts over real TCP sockets on localhost: join,
//! decode, graceful leave, crash + complaint-driven repair.

use std::time::Duration;

use curtain_net::{Coordinator, Peer, Source};
use curtain_overlay::OverlayConfig;
use curtain_telemetry::{MemorySink, SharedRecorder};

const PACE: Duration = Duration::from_micros(150);
const DECODE_TIMEOUT: Duration = Duration::from_secs(20);

fn content(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 + 7) as u8).collect()
}

#[test]
fn single_peer_decodes_from_source() {
    let coordinator = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
    let data = content(4096);
    let _source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
    let peer = Peer::join(coordinator.addr()).unwrap();
    assert!(peer.wait_complete(DECODE_TIMEOUT), "peer never decoded");
    assert_eq!(peer.decoded_content().unwrap(), data);
    assert_eq!(coordinator.completed(), 1);
}

#[test]
fn swarm_of_peers_all_decode() {
    let coordinator = Coordinator::start(OverlayConfig::new(6, 2)).unwrap();
    let data = content(8192);
    let _source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
    let peers: Vec<Peer> = (0..8)
        .map(|_| Peer::join(coordinator.addr()).unwrap())
        .collect();
    assert_eq!(coordinator.members(), 8);
    for (i, peer) in peers.iter().enumerate() {
        assert!(
            peer.wait_complete(DECODE_TIMEOUT),
            "peer {i} stuck at rank {}",
            peer.rank()
        );
        assert_eq!(peer.decoded_content().unwrap(), data, "peer {i} decoded garbage");
    }
    assert_eq!(coordinator.completed(), 8);
}

#[test]
fn graceful_leave_keeps_descendants_fed() {
    let coordinator = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
    let data = content(4096);
    let _source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
    // First joiner sits on top; several descendants hang below it.
    let first = Peer::join(coordinator.addr()).unwrap();
    let rest: Vec<Peer> = (0..4)
        .map(|_| Peer::join(coordinator.addr()).unwrap())
        .collect();
    // Let streams establish, then the top peer leaves politely.
    std::thread::sleep(Duration::from_millis(300));
    first.leave();
    assert_eq!(coordinator.members(), 4);
    for (i, peer) in rest.iter().enumerate() {
        assert!(
            peer.wait_complete(DECODE_TIMEOUT),
            "descendant {i} stuck at rank {} after graceful leave",
            peer.rank()
        );
        assert_eq!(peer.decoded_content().unwrap(), data);
    }
}

#[test]
fn crash_triggers_complaints_and_repair() {
    let coordinator = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
    let data = content(6144);
    let _source = Source::start(coordinator.addr(), &data, 24, PACE).unwrap();
    let first = Peer::join(coordinator.addr()).unwrap();
    let first_id = first.node_id();
    let rest: Vec<Peer> = (0..4)
        .map(|_| Peer::join(coordinator.addr()).unwrap())
        .collect();
    std::thread::sleep(Duration::from_millis(200));
    // Crash without a good-bye: sockets just die.
    first.crash();
    for (i, peer) in rest.iter().enumerate() {
        assert!(
            peer.wait_complete(DECODE_TIMEOUT),
            "descendant {i} stuck at rank {} after crash",
            peer.rank()
        );
        assert_eq!(peer.decoded_content().unwrap(), data);
    }
    // The crashed member was spliced out by the complaint path (if any
    // child depended on it) or is still listed (if nobody did). Either
    // way the survivors completed; when a repair happened the membership
    // reflects it.
    let members = coordinator.members();
    assert!(members == 4 || members == 5, "unexpected member count {members}");
    if members == 4 {
        assert!(coordinator.repairs() >= 1);
        let checkpoint = coordinator.checkpoint_json().unwrap();
        assert!(!checkpoint.contains(&format!("\"node\":{}", first_id.0)));
    }
}

#[test]
fn late_joiner_catches_up() {
    let coordinator = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
    let data = content(4096);
    let _source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
    let early: Vec<Peer> = (0..3)
        .map(|_| Peer::join(coordinator.addr()).unwrap())
        .collect();
    for p in &early {
        assert!(p.wait_complete(DECODE_TIMEOUT));
    }
    // Everyone already finished; a newcomer must still be able to decode
    // (peers keep serving their children).
    let late = Peer::join(coordinator.addr()).unwrap();
    assert!(late.wait_complete(DECODE_TIMEOUT), "late joiner stuck at rank {}", late.rank());
    assert_eq!(late.decoded_content().unwrap(), data);
}

#[test]
fn multi_generation_file_transfer() {
    // A "large" object: 24 KiB as 6 generations of 8 packets x 512 B —
    // the production path where decode cost stays bounded per generation.
    let coordinator = Coordinator::start(OverlayConfig::new(6, 2)).unwrap();
    let data = content(24 * 1024 - 100); // deliberately not a multiple: padding trimmed
    let source =
        Source::start_with_shape(coordinator.addr(), &data, 8, 512, PACE).unwrap();
    assert_eq!(source.generations(), 6);
    let peers: Vec<Peer> = (0..4)
        .map(|_| Peer::join(coordinator.addr()).unwrap())
        .collect();
    for (i, peer) in peers.iter().enumerate() {
        assert!(
            peer.wait_complete(DECODE_TIMEOUT),
            "peer {i} stuck at rank {} of {}",
            peer.rank(),
            6 * 8
        );
        assert_eq!(peer.decoded_content().unwrap(), data, "peer {i} content mismatch");
    }
}

#[test]
fn rolling_churn_swarm_still_decodes() {
    // Continuous churn while the transfer runs: peers join, some crash,
    // some leave, new ones replace them — the §3 protocols over real
    // sockets keep the survivors fed.
    let coordinator = Coordinator::start(OverlayConfig::new(8, 2)).unwrap();
    let data = content(8192);
    let _source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
    let mut stable: Vec<Peer> = (0..4)
        .map(|_| Peer::join(coordinator.addr()).unwrap())
        .collect();
    // Three churn waves.
    for wave in 0..3 {
        let extra: Vec<Peer> = (0..3)
            .map(|_| Peer::join(coordinator.addr()).unwrap())
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        for (j, p) in extra.into_iter().enumerate() {
            if (wave + j) % 2 == 0 {
                p.crash();
            } else {
                p.leave();
            }
        }
    }
    for (i, peer) in stable.iter().enumerate() {
        assert!(
            peer.wait_complete(DECODE_TIMEOUT),
            "stable peer {i} stuck at rank {} after churn",
            peer.rank()
        );
        assert_eq!(peer.decoded_content().unwrap(), data);
    }
    // Cleanup.
    for p in stable.drain(..) {
        p.leave();
    }
    let checkpoint = coordinator.checkpoint_json().unwrap();
    let restored = curtain_overlay::CurtainServer::from_json(&checkpoint).unwrap();
    restored.matrix().assert_invariants();
}

#[test]
fn traced_crash_recovery_records_repair_latency() {
    // Wall-clock telemetry across the real-TCP stack: the coordinator's
    // recorder sees the protocol lifecycle, the surviving peer's recorder
    // sees packet innovation plus the complaint round-trip latency.
    let coord_sink = MemorySink::new();
    let coordinator = Coordinator::start_traced(
        OverlayConfig::new(4, 2),
        0xC0DE,
        SharedRecorder::wall_clock(coord_sink.clone()),
    )
    .unwrap();
    let data = content(4096);
    let _source = Source::start(coordinator.addr(), &data, 16, PACE).unwrap();
    let first = Peer::join(coordinator.addr()).unwrap();
    let peer_sink = MemorySink::new();
    let survivor = Peer::join_traced(
        coordinator.addr(),
        PACE,
        SharedRecorder::wall_clock(peer_sink.clone()),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(200));
    first.crash();
    assert!(survivor.wait_complete(DECODE_TIMEOUT), "survivor stuck at rank {}", survivor.rank());
    assert_eq!(survivor.decoded_content().unwrap(), data);
    let survivor_id = survivor.node_id();
    survivor.leave();

    // Peer-side: connect + disconnect frame the session; decoding 16
    // packets means at least 16 innovative pushes.
    let kinds: Vec<&'static str> =
        peer_sink.events().iter().map(|(_, e)| e.kind()).collect();
    assert_eq!(kinds.first(), Some(&"peer_connect"));
    assert_eq!(kinds.last(), Some(&"peer_disconnect"));
    assert!(kinds.iter().filter(|k| **k == "packet_innovative").count() >= 16);
    // If the survivor hung below the crashed peer it ran the complaint
    // protocol; the latency histogram then carries one entry per repair.
    let metrics = peer_sink.metrics().snapshot();
    if let Some(h) = metrics.histograms.get("repair_latency_ms") {
        assert_eq!(Some(h.count), metrics.counters.get("repairs").copied());
        // Default policy: 10ms initial backoff, ±25% jitter ⇒ ≥ 7.5ms.
        assert!(h.min >= 7.0, "repair can't beat the jittered backoff: {}", h.min);
        // Each successful episode also logs its attempt count.
        let attempts = &metrics.histograms["repair_attempts"];
        assert_eq!(attempts.count, h.count);
        assert!(attempts.min >= 1.0);
    }
    // Coordinator-side: the survivor's whole lifecycle was observed.
    let coord_kinds: Vec<(u64, &'static str, Option<u64>)> = coord_sink
        .events()
        .iter()
        .map(|(at, e)| (*at, e.kind(), e.node()))
        .collect();
    for want in ["hello", "peer_connect", "good_bye", "peer_disconnect"] {
        assert!(
            coord_kinds
                .iter()
                .any(|(_, k, n)| *k == want && *n == Some(survivor_id.0)),
            "coordinator trace missing {want} for survivor"
        );
    }
}

#[test]
fn coordinator_checkpoint_reflects_live_membership() {
    let coordinator = Coordinator::start(OverlayConfig::new(4, 2)).unwrap();
    let data = content(2048);
    let _source = Source::start(coordinator.addr(), &data, 8, PACE).unwrap();
    let _peers: Vec<Peer> = (0..3)
        .map(|_| Peer::join(coordinator.addr()).unwrap())
        .collect();
    let json = coordinator.checkpoint_json().unwrap();
    let restored = curtain_overlay::CurtainServer::from_json(&json).unwrap();
    assert_eq!(restored.matrix().len(), 3);
    restored.matrix().assert_invariants();
}
