//! Bulk symbol-vector kernels over GF(2⁸) byte buffers.
//!
//! The RLNC hot path is `dst += c · src` over packet payloads (hundreds to
//! thousands of bytes). These functions are the crate's stable bulk-op API;
//! since the data-plane refactor they are thin wrappers over the
//! runtime-dispatched [`crate::kernels`] (SIMD split-nibble shuffle where the
//! CPU has it, the 64 KiB-table scalar walk everywhere else), so existing
//! callers get the fast path with no signature churn.

use crate::tables::GF256_MUL;

/// `dst[i] ^= src[i]` — addition of two symbol vectors in GF(2⁸).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "vector length mismatch");
    crate::kernels::add_assign(dst, src);
}

/// `dst[i] = c * dst[i]` — in-place scaling of a symbol vector.
#[inline]
pub fn scale_assign(dst: &mut [u8], c: u8) {
    crate::kernels::scale_assign(dst, c);
}

/// `dst[i] ^= c * src[i]` — the axpy kernel at the heart of mixing and
/// Gaussian elimination.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "vector length mismatch");
    crate::kernels::axpy(dst, c, src);
}

/// Dot product of two symbol vectors in GF(2⁸).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[u8], b: &[u8]) -> u8 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).fold(0u8, |acc, (&x, &y)| acc ^ GF256_MUL[x as usize][y as usize])
}

/// Returns true iff every byte is zero.
#[must_use]
pub fn is_zero(v: &[u8]) -> bool {
    v.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Gf256};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn axpy_matches_scalar_loop(c: u8, data in proptest::collection::vec(any::<(u8, u8)>(), 0..64)) {
            let src: Vec<u8> = data.iter().map(|p| p.0).collect();
            let mut dst: Vec<u8> = data.iter().map(|p| p.1).collect();
            let expect: Vec<u8> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| Gf256::new(d).add(Gf256::new(c).mul(Gf256::new(s))).value())
                .collect();
            axpy(&mut dst, c, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn scale_then_unscale_is_identity(c in 1u8.., v in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut w = v.clone();
            scale_assign(&mut w, c);
            scale_assign(&mut w, Gf256::new(c).inv().value());
            prop_assert_eq!(w, v);
        }

        #[test]
        fn add_assign_twice_cancels(a in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut d = vec![0u8; a.len()];
            add_assign(&mut d, &a);
            add_assign(&mut d, &a);
            prop_assert!(is_zero(&d));
        }

        #[test]
        fn dot_is_bilinear(c: u8, a in proptest::collection::vec(any::<u8>(), 1..32)) {
            // dot(c*a, a) == c * dot(a, a)
            let mut ca = a.clone();
            scale_assign(&mut ca, c);
            let lhs = dot(&ca, &a);
            let rhs = Gf256::new(c).mul(Gf256::new(dot(&a, &a))).value();
            prop_assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut v = vec![1u8, 2, 3];
        scale_assign(&mut v, 0);
        assert!(is_zero(&v));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_length_mismatch_panics() {
        let mut d = [0u8; 3];
        axpy(&mut d, 1, &[0u8; 4]);
    }
}
