//! Systematic Reed–Solomon (MDS) erasure coding.
//!
//! Used by the *source-only erasure coding* baseline of the paper's §1: the
//! server stripes content into `k` shares such that **any `d` distinct shares
//! reconstruct it** — but intermediate peers merely forward, never recode.
//! Contrast with RLNC, where every peer recodes (crate `curtain-rlnc`).
//!
//! Construction: start from a Vandermonde matrix `V` (n×k over GF(2⁸)),
//! multiply by the inverse of its top k×k block to obtain a systematic
//! generator matrix whose first `k` rows are the identity. Every k×k minor of
//! a Vandermonde matrix with distinct evaluation points is invertible, so any
//! `k` shares decode.

use std::fmt;

use crate::gf256::Gf256;
use crate::matrix::Matrix;

/// Errors produced by [`ReedSolomon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Fewer than `data_shares` distinct shares were supplied.
    NotEnoughShares {
        /// Shares required to decode.
        needed: usize,
        /// Shares supplied.
        got: usize,
    },
    /// A share index was out of range or duplicated.
    InvalidShareIndex(usize),
    /// Share payloads had inconsistent lengths.
    LengthMismatch,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::NotEnoughShares { needed, got } => {
                write!(f, "need {needed} shares to decode, got {got}")
            }
            RsError::InvalidShareIndex(i) => write!(f, "invalid or duplicate share index {i}"),
            RsError::LengthMismatch => write!(f, "share payloads have inconsistent lengths"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic Reed–Solomon code over GF(2⁸) with `data_shares` source
/// symbols expanded to `total_shares` coded symbols.
///
/// # Example
///
/// ```
/// use curtain_gf::ReedSolomon;
///
/// # fn main() -> Result<(), curtain_gf::RsError> {
/// let rs = ReedSolomon::new(3, 6);
/// let shares = rs.encode(&[b"abc".to_vec(), b"def".to_vec(), b"ghi".to_vec()]);
/// // Any 3 of the 6 shares reconstruct the data:
/// let got = rs.decode(&[(5, shares[5].clone()), (0, shares[0].clone()), (4, shares[4].clone())])?;
/// assert_eq!(got[1], b"def");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_shares: usize,
    total_shares: usize,
    /// Systematic generator matrix, `total_shares × data_shares`.
    generator: Matrix<Gf256>,
}

impl ReedSolomon {
    /// Creates a code with `data_shares` source shares and `total_shares`
    /// output shares.
    ///
    /// # Panics
    ///
    /// Panics if `data_shares == 0`, `total_shares < data_shares`, or
    /// `total_shares > 255` (the number of distinct non-zero evaluation
    /// points in GF(2⁸)).
    #[must_use]
    pub fn new(data_shares: usize, total_shares: usize) -> Self {
        assert!(data_shares > 0, "data_shares must be positive");
        assert!(
            total_shares >= data_shares,
            "total_shares ({total_shares}) must be >= data_shares ({data_shares})"
        );
        assert!(total_shares <= 255, "GF(2^8) supports at most 255 shares");
        let points: Vec<Gf256> = (1..=total_shares as u8).map(Gf256::new).collect();
        let v = Matrix::vandermonde(&points, data_shares);
        // Invert the top k×k block to make the code systematic.
        let mut top = Matrix::zero(data_shares, data_shares);
        for i in 0..data_shares {
            for j in 0..data_shares {
                top.set(i, j, v.get(i, j));
            }
        }
        let top_inv = top
            .inverse()
            .expect("Vandermonde top block with distinct points is invertible");
        let generator = v.mul_mat(&top_inv);
        ReedSolomon { data_shares, total_shares, generator }
    }

    /// Shares required to decode.
    #[must_use]
    pub fn data_shares(&self) -> usize {
        self.data_shares
    }

    /// Total shares produced by [`ReedSolomon::encode`].
    #[must_use]
    pub fn total_shares(&self) -> usize {
        self.total_shares
    }

    /// Encodes `data_shares` equal-length payloads into `total_shares`
    /// payloads. The first `data_shares` outputs equal the inputs
    /// (systematic property).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != data_shares` or payload lengths differ.
    #[must_use]
    pub fn encode(&self, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.data_shares, "wrong number of data shares");
        let len = data.first().map_or(0, Vec::len);
        assert!(data.iter().all(|d| d.len() == len), "payload length mismatch");
        (0..self.total_shares)
            .map(|r| {
                let mut out = vec![0u8; len];
                for (j, d) in data.iter().enumerate() {
                    crate::vec_ops::axpy(&mut out, self.generator.get(r, j).value(), d);
                }
                out
            })
            .collect()
    }

    /// Decodes the original `data_shares` payloads from any `data_shares`
    /// distinct `(share_index, payload)` pairs.
    ///
    /// # Errors
    ///
    /// * [`RsError::NotEnoughShares`] if fewer than `data_shares` pairs given.
    /// * [`RsError::InvalidShareIndex`] on out-of-range or duplicate indices.
    /// * [`RsError::LengthMismatch`] if payload lengths differ.
    pub fn decode(&self, shares: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>, RsError> {
        if shares.len() < self.data_shares {
            return Err(RsError::NotEnoughShares { needed: self.data_shares, got: shares.len() });
        }
        let use_shares = &shares[..self.data_shares];
        let len = use_shares[0].1.len();
        let mut seen = vec![false; self.total_shares];
        for (idx, payload) in use_shares {
            if *idx >= self.total_shares || seen[*idx] {
                return Err(RsError::InvalidShareIndex(*idx));
            }
            seen[*idx] = true;
            if payload.len() != len {
                return Err(RsError::LengthMismatch);
            }
        }
        // Solve G_sub · data = shares for each byte position, by inverting
        // the k×k submatrix of generator rows once.
        let mut sub = Matrix::zero(self.data_shares, self.data_shares);
        for (r, (idx, _)) in use_shares.iter().enumerate() {
            for j in 0..self.data_shares {
                sub.set(r, j, self.generator.get(*idx, j));
            }
        }
        let inv = sub
            .inverse()
            .expect("any k rows of an MDS generator are linearly independent");
        let mut out = vec![vec![0u8; len]; self.data_shares];
        for (i, row_out) in out.iter_mut().enumerate() {
            for (r, (_, payload)) in use_shares.iter().enumerate() {
                crate::vec_ops::axpy(row_out, inv.get(i, r).value(), payload);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{RngExt as _, SeedableRng};

    fn random_data(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.random()).collect())
            .collect()
    }

    #[test]
    fn systematic_prefix() {
        let rs = ReedSolomon::new(4, 10);
        let data = random_data(4, 32, 1);
        let shares = rs.encode(&data);
        assert_eq!(shares.len(), 10);
        for i in 0..4 {
            assert_eq!(shares[i], data[i], "systematic share {i}");
        }
    }

    #[test]
    fn any_k_of_n_decode() {
        let rs = ReedSolomon::new(3, 8);
        let data = random_data(3, 16, 2);
        let shares = rs.encode(&data);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let mut idx: Vec<usize> = (0..8).collect();
            idx.shuffle(&mut rng);
            let picked: Vec<(usize, Vec<u8>)> =
                idx[..3].iter().map(|&i| (i, shares[i].clone())).collect();
            assert_eq!(rs.decode(&picked).unwrap(), data);
        }
    }

    #[test]
    fn not_enough_shares_error() {
        let rs = ReedSolomon::new(4, 8);
        let data = random_data(4, 8, 4);
        let shares = rs.encode(&data);
        let err = rs.decode(&[(0, shares[0].clone())]).unwrap_err();
        assert_eq!(err, RsError::NotEnoughShares { needed: 4, got: 1 });
    }

    #[test]
    fn duplicate_share_error() {
        let rs = ReedSolomon::new(2, 4);
        let data = random_data(2, 8, 5);
        let shares = rs.encode(&data);
        let err = rs
            .decode(&[(1, shares[1].clone()), (1, shares[1].clone())])
            .unwrap_err();
        assert_eq!(err, RsError::InvalidShareIndex(1));
    }

    #[test]
    fn out_of_range_share_error() {
        let rs = ReedSolomon::new(2, 4);
        let err = rs.decode(&[(0, vec![0u8; 4]), (9, vec![0u8; 4])]).unwrap_err();
        assert_eq!(err, RsError::InvalidShareIndex(9));
    }

    #[test]
    fn length_mismatch_error() {
        let rs = ReedSolomon::new(2, 4);
        let err = rs.decode(&[(0, vec![0u8; 4]), (1, vec![0u8; 5])]).unwrap_err();
        assert_eq!(err, RsError::LengthMismatch);
    }

    #[test]
    #[should_panic(expected = "at most 255 shares")]
    fn too_many_shares_panics() {
        let _ = ReedSolomon::new(2, 256);
    }

    #[test]
    fn k_equals_n_is_identity_code() {
        let rs = ReedSolomon::new(3, 3);
        let data = random_data(3, 8, 6);
        let shares = rs.encode(&data);
        assert_eq!(shares, data);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn round_trip_random_subsets(seed: u64, k in 1usize..6, extra in 0usize..6) {
            let n = k + extra;
            let rs = ReedSolomon::new(k, n);
            let data = random_data(k, 24, seed);
            let shares = rs.encode(&data);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(&mut rng);
            let picked: Vec<(usize, Vec<u8>)> =
                idx[..k].iter().map(|&i| (i, shares[i].clone())).collect();
            prop_assert_eq!(rs.decode(&picked).unwrap(), data);
        }
    }
}
