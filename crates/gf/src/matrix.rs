//! Dense matrices over a finite [`Field`], with Gaussian elimination.
//!
//! This is the linear-algebra engine behind the RLNC decoder (rank tracking
//! and back-substitution) and the Reed–Solomon construction (Vandermonde
//! systems). It favors clarity and determinism over cache tricks; the bulk
//! per-packet work in the codec goes through [`crate::vec_ops`] instead.

use std::fmt;

use crate::field::Field;

/// A dense, row-major matrix over a finite field `F`.
///
/// # Example
///
/// ```
/// use curtain_gf::{Field, Gf256, Matrix};
///
/// let m = Matrix::<Gf256>::identity(3);
/// assert_eq!(m.rank(), 3);
/// assert_eq!(m.inverse().unwrap(), m);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![F::ZERO; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, F::ONE);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<F>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Builds a Vandermonde matrix: `m[i][j] = x_i^j` for the given evaluation
    /// points. Any `min(rows, cols)` rows are linearly independent when the
    /// points are distinct, which is the MDS property Reed–Solomon relies on.
    #[must_use]
    pub fn vandermonde(points: &[F], cols: usize) -> Self {
        let mut m = Self::zero(points.len(), cols);
        for (i, &x) in points.iter().enumerate() {
            let mut p = F::ONE;
            for j in 0..cols {
                m.set(i, j, p);
                p = p.mul(x);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> F {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: F) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[F] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [F] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()` (unless the matrix is empty).
    pub fn push_row(&mut self, row: &[F]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Matrix × column-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, v: &[F]) -> Vec<F> {
        assert_eq!(v.len(), self.cols, "vector length mismatch");
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v)
                    .fold(F::ZERO, |acc, (&a, &b)| acc.add(a.mul(b)))
            })
            .collect()
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    #[must_use]
    pub fn mul_mat(&self, rhs: &Matrix<F>) -> Matrix<F> {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out: Matrix<F> = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for kk in 0..self.cols {
                let a = self.get(i, kk);
                if a.is_zero() {
                    continue;
                }
                F::axpy_slice(out.row_mut(i), a, rhs.row(kk));
            }
        }
        out
    }

    /// Borrows row `w` mutably and row `r` immutably at the same time.
    ///
    /// # Panics
    ///
    /// Panics if `w == r` or either index is out of bounds.
    fn two_rows_mut(&mut self, w: usize, r: usize) -> (&mut [F], &[F]) {
        assert_ne!(w, r, "two_rows_mut requires distinct rows");
        let cols = self.cols;
        if w < r {
            let (head, tail) = self.data.split_at_mut(r * cols);
            (&mut head[w * cols..(w + 1) * cols], &tail[..cols])
        } else {
            let (head, tail) = self.data.split_at_mut(w * cols);
            (&mut tail[..cols], &head[r * cols..(r + 1) * cols])
        }
    }

    /// In-place reduction to *reduced row-echelon form*; returns the rank and
    /// the pivot column of each pivot row (in order).
    pub fn rref(&mut self) -> (usize, Vec<usize>) {
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..self.cols {
            if pivot_row == self.rows {
                break;
            }
            // Find a row at or below pivot_row with a non-zero entry in col.
            let Some(src) = (pivot_row..self.rows).find(|&r| !self.get(r, col).is_zero()) else {
                continue;
            };
            self.swap_rows(pivot_row, src);
            // Normalize the pivot row.
            let inv = self.get(pivot_row, col).inv();
            F::scale_slice(&mut self.row_mut(pivot_row)[col..], inv);
            // Eliminate the column everywhere else. In characteristic 2,
            // add == sub, so a single axpy cancels the column entry.
            for r in 0..self.rows {
                if r == pivot_row {
                    continue;
                }
                let factor = self.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                let (target, pivot) = self.two_rows_mut(r, pivot_row);
                F::axpy_slice(&mut target[col..], factor, &pivot[col..]);
            }
            pivots.push(col);
            pivot_row += 1;
        }
        (pivot_row, pivots)
    }

    /// Rank of the matrix (does not mutate `self`).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.clone().rref().0
    }

    /// Inverse of a square matrix, or `None` if singular.
    #[must_use]
    pub fn inverse(&self) -> Option<Matrix<F>> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        // Augment [self | I] and reduce.
        let mut aug = Matrix::zero(n, 2 * n);
        for i in 0..n {
            for j in 0..n {
                aug.set(i, j, self.get(i, j));
            }
            aug.set(i, n + i, F::ONE);
        }
        let (rank, pivots) = aug.rref();
        // [A | I] always has full row rank; A is invertible iff every pivot
        // lands inside A's columns.
        if rank < n || pivots.iter().any(|&p| p >= n) {
            return None;
        }
        let mut inv = Matrix::zero(n, n);
        for i in 0..n {
            for j in 0..n {
                inv.set(i, j, aug.get(i, n + j));
            }
        }
        Some(inv)
    }

    /// Solves `self · x = b` for square, non-singular `self`.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    #[must_use]
    pub fn solve(&self, b: &[F]) -> Option<Vec<F>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut aug = Matrix::zero(n, n + 1);
        for (i, &rhs) in b.iter().enumerate() {
            for j in 0..n {
                aug.set(i, j, self.get(i, j));
            }
            aug.set(i, n, rhs);
        }
        let (rank, pivots) = aug.rref();
        if rank < n || pivots.iter().any(|&p| p >= n) {
            return None;
        }
        Some((0..n).map(|i| aug.get(i, n)).collect())
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            let (x, y) = (self.get(a, j), self.get(b, j));
            self.set(a, j, y);
            self.set(b, j, x);
        }
    }
}

impl<F: Field> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix({}x{}) [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:?} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gf256;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn random_matrix(n: usize, m: usize, seed: u64) -> Matrix<Gf256> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mat = Matrix::zero(n, m);
        for i in 0..n {
            for j in 0..m {
                mat.set(i, j, Gf256::random(&mut rng));
            }
        }
        mat
    }

    #[test]
    fn identity_properties() {
        let i = Matrix::<Gf256>::identity(4);
        assert_eq!(i.rank(), 4);
        let m = random_matrix(4, 4, 1);
        assert_eq!(i.mul_mat(&m), m);
        assert_eq!(m.mul_mat(&i), m);
    }

    #[test]
    fn inverse_round_trip() {
        for seed in 0..20 {
            let m = random_matrix(6, 6, seed);
            if let Some(inv) = m.inverse() {
                assert_eq!(m.mul_mat(&inv), Matrix::identity(6), "seed {seed}");
                assert_eq!(inv.mul_mat(&m), Matrix::identity(6), "seed {seed}");
            }
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = random_matrix(5, 5, 3);
        // Make row 4 a copy of row 0 -> singular.
        for j in 0..5 {
            let v = m.get(0, j);
            m.set(4, j, v);
        }
        assert!(m.inverse().is_none());
        assert!(m.rank() < 5);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let m = random_matrix(5, 5, rng.random::<u64>());
            if m.rank() < 5 {
                continue;
            }
            let x: Vec<Gf256> = (0..5).map(|_| Gf256::random(&mut rng)).collect();
            let b = m.mul_vec(&x);
            assert_eq!(m.solve(&b).unwrap(), x);
        }
    }

    #[test]
    fn vandermonde_distinct_points_full_rank() {
        let points: Vec<Gf256> = (1..=8u8).map(Gf256::new).collect();
        let v = Matrix::vandermonde(&points, 8);
        assert_eq!(v.rank(), 8);
        // Any square submatrix formed by a subset of rows is invertible only
        // in full-column generality; check a few row subsets of size 4.
        let sub = Matrix::from_rows(&[
            v.row(0).iter().take(4).copied().collect(),
            v.row(2).iter().take(4).copied().collect(),
            v.row(5).iter().take(4).copied().collect(),
            v.row(7).iter().take(4).copied().collect(),
        ]);
        assert_eq!(sub.rank(), 4, "Vandermonde minors must be non-singular");
    }

    #[test]
    fn rref_idempotent_and_rank_stable() {
        let m = random_matrix(6, 9, 11);
        let mut a = m.clone();
        let (rank1, pivots) = a.rref();
        let mut b = a.clone();
        let (rank2, pivots2) = b.rref();
        assert_eq!(rank1, rank2);
        assert_eq!(pivots, pivots2);
        assert_eq!(a, b, "rref must be idempotent");
        assert_eq!(m.rank(), rank1);
    }

    /// Element-wise rref, the pre-kernel reference implementation. Kept in
    /// tests to prove the slice-op-routed `rref` is byte-identical.
    fn rref_reference<F: Field>(m: &mut Matrix<F>) -> (usize, Vec<usize>) {
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..m.cols() {
            if pivot_row == m.rows() {
                break;
            }
            let Some(src) = (pivot_row..m.rows()).find(|&r| !m.get(r, col).is_zero()) else {
                continue;
            };
            m.swap_rows(pivot_row, src);
            let inv = m.get(pivot_row, col).inv();
            for j in col..m.cols() {
                let v = m.get(pivot_row, j).mul(inv);
                m.set(pivot_row, j, v);
            }
            for r in 0..m.rows() {
                if r == pivot_row {
                    continue;
                }
                let factor = m.get(r, col);
                if factor.is_zero() {
                    continue;
                }
                for j in col..m.cols() {
                    let v = m.get(r, j).add(factor.mul(m.get(pivot_row, j)));
                    m.set(r, j, v);
                }
            }
            pivots.push(col);
            pivot_row += 1;
        }
        (pivot_row, pivots)
    }

    #[test]
    fn rref_matches_elementwise_reference() {
        for seed in 0..30u64 {
            let n = 1 + (seed as usize % 7);
            let m = 1 + ((seed as usize * 3) % 9);
            let orig = random_matrix(n, m, seed);
            let mut fast = orig.clone();
            let mut slow = orig.clone();
            let got = fast.rref();
            let want = rref_reference(&mut slow);
            assert_eq!(got, want, "rank/pivots diverge at seed {seed}");
            assert_eq!(fast, slow, "rref data diverges at seed {seed}");
        }
    }

    #[test]
    fn mul_mat_matches_elementwise_reference() {
        for seed in 0..10u64 {
            let a = random_matrix(4, 6, seed);
            let b = random_matrix(6, 5, seed.wrapping_add(99));
            let fast = a.mul_mat(&b);
            let mut slow = Matrix::zero(4, 5);
            for i in 0..4 {
                for j in 0..5 {
                    let mut acc = Gf256::ZERO;
                    for k in 0..6 {
                        acc = acc.add(a.get(i, k).mul(b.get(k, j)));
                    }
                    slow.set(i, j, acc);
                }
            }
            assert_eq!(fast, slow, "mul_mat diverges at seed {seed}");
        }
    }

    #[test]
    fn push_row_infers_width_for_empty_matrix() {
        let mut m = Matrix::<Gf256>::zero(0, 0);
        m.push_row(&[Gf256::ONE, Gf256::ZERO]);
        assert_eq!((m.rows(), m.cols()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn push_row_rejects_bad_width() {
        let mut m = Matrix::<Gf256>::identity(2);
        m.push_row(&[Gf256::ONE]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn rank_bounded_by_dims(seed: u64, n in 1usize..8, m in 1usize..8) {
            let mat = random_matrix(n, m, seed);
            prop_assert!(mat.rank() <= n.min(m));
        }

        #[test]
        fn mat_mul_rank_no_increase(seed: u64) {
            let a = random_matrix(5, 5, seed);
            let b = random_matrix(5, 5, seed.wrapping_add(1));
            let prod = a.mul_mat(&b);
            prop_assert!(prod.rank() <= a.rank().min(b.rank()));
        }

        #[test]
        fn solve_matches_mul(seed: u64) {
            let m = random_matrix(4, 4, seed);
            let x: Vec<Gf256> = (0..4).map(|i| Gf256::new((seed >> (i*8)) as u8)).collect();
            let b = m.mul_vec(&x);
            if let Some(sol) = m.solve(&b) {
                prop_assert_eq!(m.mul_vec(&sol), b);
            }
        }
    }
}
