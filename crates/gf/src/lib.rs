//! Finite-field arithmetic and linear algebra for network coding.
//!
//! This crate provides the algebraic substrate used by the rest of the
//! `coded-curtain` workspace:
//!
//! * [`Gf256`] — the field GF(2⁸) with compile-time log/exp/mul tables,
//!   the workhorse field for practical network coding (one byte per symbol).
//! * [`Gf2p16`] — the field GF(2¹⁶) for applications that need longer
//!   generations without coefficient-vector collisions.
//! * [`Field`] — the trait abstracting both, so encoders/decoders are
//!   field-generic.
//! * [`kernels`] — runtime-dispatched GF(2⁸) bulk kernels (SSSE3/AVX2/NEON
//!   split-nibble shuffle with a table-lookup scalar fallback) behind the
//!   [`GfBackend`] handle.
//! * [`vec_ops`] — bulk symbol-vector kernels (`axpy`, scaling, XOR add)
//!   specialized for GF(2⁸) payload mixing; thin wrappers over [`kernels`].
//! * [`Matrix`] — dense matrices over any [`Field`] with reduced row-echelon
//!   elimination, rank, inversion and solving; the decoder's engine.
//! * [`ReedSolomon`] — a systematic Reed–Solomon (MDS) code used by the
//!   *source-only erasure coding* baseline strategy of the paper's §1.
//!
//! # Example
//!
//! ```
//! use curtain_gf::{Field, Gf256};
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! let c = a.mul(b);
//! // Multiplication is invertible for non-zero elements:
//! assert_eq!(c.div(b), a);
//! // The field has characteristic 2: addition is XOR and is its own inverse.
//! assert_eq!(a.add(b).add(b), a);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod gf256;
mod gf2p16;
// The SIMD kernels are the one place `unsafe` is permitted: every block wraps
// a `#[target_feature]` intrinsic call guarded by runtime CPU detection.
#[allow(unsafe_code)]
pub mod kernels;
mod matrix;
mod rs;
pub(crate) mod tables;
pub mod vec_ops;

pub use field::Field;
pub use kernels::GfBackend;
pub use gf256::Gf256;
pub use gf2p16::Gf2p16;
pub use matrix::Matrix;
pub use rs::{ReedSolomon, RsError};
