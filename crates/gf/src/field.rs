//! The [`Field`] trait: the algebraic contract shared by GF(2⁸) and GF(2¹⁶).

use std::fmt::Debug;
use std::hash::Hash;

use rand::{Rng, RngExt};

/// A finite field of characteristic 2, as used by the network-coding stack.
///
/// Implementors are small `Copy` value types wrapping an unsigned integer.
/// All operations are total except division by zero and inversion of zero,
/// which panic (network-coding code paths guard against them explicitly).
///
/// The trait is deliberately minimal: exactly what [`crate::Matrix`] and the
/// RLNC codec need. Characteristic 2 is baked in (addition == subtraction ==
/// XOR), which both implementations exploit.
///
/// # Example
///
/// ```
/// use curtain_gf::{Field, Gf256};
///
/// fn horner<F: Field>(coeffs: &[F], x: F) -> F {
///     coeffs.iter().rev().fold(F::ZERO, |acc, &c| acc.mul(x).add(c))
/// }
///
/// let p = [Gf256::new(3), Gf256::new(1)]; // 3 + x
/// assert_eq!(horner(&p, Gf256::new(2)), Gf256::new(1)); // 3 ^ 2 = 1
/// ```
pub trait Field: Copy + Clone + Eq + PartialEq + Debug + Hash + Default + Send + Sync + 'static {
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of elements in the field (2⁸ or 2¹⁶).
    const ORDER: usize;

    /// Field addition (XOR in characteristic 2).
    #[must_use]
    fn add(self, rhs: Self) -> Self;

    /// Field subtraction. In characteristic 2 this equals [`Field::add`].
    #[must_use]
    fn sub(self, rhs: Self) -> Self {
        self.add(rhs)
    }

    /// Field multiplication.
    #[must_use]
    fn mul(self, rhs: Self) -> Self;

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[must_use]
    fn div(self, rhs: Self) -> Self {
        self.mul(rhs.inv())
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    #[must_use]
    fn inv(self) -> Self;

    /// Raises `self` to the power `exp` by square-and-multiply.
    #[must_use]
    fn pow(self, mut exp: u32) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            exp >>= 1;
        }
        acc
    }

    /// True iff this is the additive identity.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Converts from a canonical integer index in `0..Self::ORDER`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= Self::ORDER`.
    fn from_index(v: usize) -> Self;

    /// Converts to the canonical integer index in `0..Self::ORDER`.
    fn to_index(self) -> usize;

    /// `dst[i] = dst[i] + c · src[i]` over slices of field elements.
    ///
    /// The default walks element-wise; implementations backed by byte-level
    /// kernels (GF(2⁸)) override this to dispatch into
    /// [`crate::kernels`], which is what makes [`crate::Matrix`] elimination
    /// fast without the matrix code knowing about SIMD.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn axpy_slice(dst: &mut [Self], c: Self, src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "vector length mismatch");
        if c.is_zero() {
            return;
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d = d.add(c.mul(*s));
        }
    }

    /// `dst[i] = c · dst[i]` over a slice of field elements.
    fn scale_slice(dst: &mut [Self], c: Self) {
        for d in dst.iter_mut() {
            *d = c.mul(*d);
        }
    }

    /// `dst[i] = dst[i] + src[i]` over slices of field elements.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn add_slice(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "vector length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            *d = d.add(*s);
        }
    }

    /// Samples a uniformly random field element (zero included).
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_index(rng.random_range(0..Self::ORDER))
    }

    /// Samples a uniformly random *non-zero* field element.
    fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_index(rng.random_range(1..Self::ORDER))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gf256, Gf2p16};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pow_matches_repeated_mul<F: Field>() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let x = F::random(&mut rng);
            let mut acc = F::ONE;
            for e in 0..10u32 {
                assert_eq!(x.pow(e), acc, "pow mismatch at exponent {e}");
                acc = acc.mul(x);
            }
        }
    }

    #[test]
    fn pow_gf256() {
        pow_matches_repeated_mul::<Gf256>();
    }

    #[test]
    fn pow_gf2p16() {
        pow_matches_repeated_mul::<Gf2p16>();
    }

    #[test]
    fn random_nonzero_never_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(!Gf256::random_nonzero(&mut rng).is_zero());
        }
    }

    #[test]
    fn sub_equals_add_in_char2() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let a = Gf2p16::random(&mut rng);
            let b = Gf2p16::random(&mut rng);
            assert_eq!(a.sub(b), a.add(b));
        }
    }

    #[test]
    fn index_round_trip() {
        for i in 0..Gf256::ORDER {
            assert_eq!(Gf256::from_index(i).to_index(), i);
        }
        for i in (0..Gf2p16::ORDER).step_by(257) {
            assert_eq!(Gf2p16::from_index(i).to_index(), i);
        }
    }
}
