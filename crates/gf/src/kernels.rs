//! Runtime-dispatched GF(2⁸) vector kernels: SIMD where the CPU has it,
//! table-lookup scalar everywhere.
//!
//! The RLNC hot path spends nearly all of its time in three bulk operations
//! over byte buffers (`dst ^= c·src`, `dst = c·dst`, `dst ^= src`). This
//! module provides one implementation per instruction-set *backend* and picks
//! the fastest available one once, at first use:
//!
//! | backend  | targets              | technique                              |
//! |----------|----------------------|----------------------------------------|
//! | `avx2`   | x86_64 with AVX2     | 32-byte split-nibble `vpshufb`         |
//! | `ssse3`  | x86/x86_64 w/ SSSE3  | 16-byte split-nibble `pshufb`          |
//! | `neon`   | aarch64              | 16-byte split-nibble `tbl`             |
//! | `scalar` | everywhere           | 64 KiB multiplication-table row walk   |
//!
//! The SIMD kernels all use the same split-nibble trick (Plank et al.,
//! "Screaming Fast Galois Field Arithmetic"; also the shape used by ISA-L and
//! raptor-style CDN codecs): for a fixed coefficient `c`, the products of `c`
//! with all 16 low nibbles and all 16 high-nibble multiples are precomputed
//! into two 16-byte tables ([`crate::tables`]'s `GF256_NIB`), and a byte
//! shuffle instruction evaluates 16/32 products per cycle as
//! `NIB_LO[b & 0xf] ^ NIB_HI[b >> 4]`.
//!
//! # Backend selection
//!
//! [`active()`] resolves the backend exactly once per process. The
//! environment variable `CURTAIN_GF_BACKEND` (values `scalar`, `ssse3`,
//! `avx2`, `neon`) overrides auto-detection when the requested backend is
//! available on the running CPU; an unknown or unavailable request falls back
//! to auto-detection rather than aborting, so a config written for one
//! machine stays runnable on another. Explicit-backend entry points
//! ([`axpy_on`] etc.) exist for differential tests and benchmarks; they panic
//! if the requested backend is not available.
//!
//! # Safety
//!
//! This is the only module in the crate allowed to use `unsafe` (the crate
//! root carries `#![deny(unsafe_code)]`, relaxed here by an explicit
//! `allow`). Every `unsafe` block wraps a `#[target_feature]` function whose
//! required CPU feature has been verified by [`GfBackend::is_available`]
//! before dispatch, and all memory access goes through slice-derived pointers
//! within bounds established by the surrounding safe code.

use std::sync::OnceLock;

use crate::tables::GF256_MUL;
use crate::Gf256;

/// Reinterprets a slice of [`Gf256`] as raw bytes.
///
/// Sound because `Gf256` is `#[repr(transparent)]` over `u8`.
#[must_use]
pub(crate) fn gf256_as_bytes(s: &[Gf256]) -> &[u8] {
    // SAFETY: Gf256 is repr(transparent) over u8, so layout and validity
    // invariants are identical; lifetime and length are preserved.
    unsafe { std::slice::from_raw_parts(s.as_ptr().cast(), s.len()) }
}

/// Reinterprets a mutable slice of [`Gf256`] as raw bytes.
///
/// Sound because `Gf256` is `#[repr(transparent)]` over `u8` and every byte
/// value is a valid `Gf256`.
#[must_use]
pub(crate) fn gf256_as_bytes_mut(s: &mut [Gf256]) -> &mut [u8] {
    // SAFETY: as above; exclusive borrow is carried through.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast(), s.len()) }
}

/// A GF(2⁸) kernel implementation selected at runtime.
///
/// Obtain the process-wide choice with [`active()`], or enumerate what this
/// CPU supports with [`available_backends()`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GfBackend {
    /// Portable table-lookup reference implementation.
    Scalar,
    /// SSSE3 `pshufb` split-nibble kernel (x86/x86_64).
    Ssse3,
    /// AVX2 `vpshufb` split-nibble kernel, 32 bytes per step (x86_64).
    Avx2,
    /// NEON `tbl` split-nibble kernel (aarch64).
    Neon,
}

/// All backends, in preference order (fastest first).
const PREFERENCE: [GfBackend; 4] =
    [GfBackend::Avx2, GfBackend::Ssse3, GfBackend::Neon, GfBackend::Scalar];

impl GfBackend {
    /// Stable lowercase name, matching the `CURTAIN_GF_BACKEND` values.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GfBackend::Scalar => "scalar",
            GfBackend::Ssse3 => "ssse3",
            GfBackend::Avx2 => "avx2",
            GfBackend::Neon => "neon",
        }
    }

    /// Parses a backend name as used by `CURTAIN_GF_BACKEND`.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(GfBackend::Scalar),
            "ssse3" => Some(GfBackend::Ssse3),
            "avx2" => Some(GfBackend::Avx2),
            "neon" => Some(GfBackend::Neon),
            _ => None,
        }
    }

    /// Whether this backend can run on the current CPU.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            GfBackend::Scalar => true,
            GfBackend::Ssse3 => {
                #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                {
                    std::arch::is_x86_feature_detected!("ssse3")
                }
                #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
                {
                    false
                }
            }
            GfBackend::Avx2 => {
                #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
                {
                    false
                }
            }
            GfBackend::Neon => cfg!(target_arch = "aarch64"),
        }
    }
}

impl std::fmt::Display for GfBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every backend that can run on this CPU, fastest first. Always ends with
/// [`GfBackend::Scalar`].
#[must_use]
pub fn available_backends() -> Vec<GfBackend> {
    PREFERENCE.iter().copied().filter(|b| b.is_available()).collect()
}

/// Pure selection logic: an explicit request wins when it names an available
/// backend; otherwise the fastest available backend is used.
fn choose(request: Option<&str>) -> GfBackend {
    if let Some(name) = request {
        if let Some(b) = GfBackend::from_name(name) {
            if b.is_available() {
                return b;
            }
        }
    }
    *available_backends().first().expect("scalar backend is always available")
}

static ACTIVE: OnceLock<GfBackend> = OnceLock::new();

/// The process-wide backend, resolved on first call (honoring
/// `CURTAIN_GF_BACKEND`) and fixed thereafter.
#[must_use]
pub fn active() -> GfBackend {
    *ACTIVE.get_or_init(|| choose(std::env::var("CURTAIN_GF_BACKEND").ok().as_deref()))
}

// ---------------------------------------------------------------------------
// Dispatched entry points (process-wide active backend).
// ---------------------------------------------------------------------------

/// `dst[i] ^= c * src[i]` on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(dst: &mut [u8], c: u8, src: &[u8]) {
    axpy_on(active(), dst, c, src);
}

/// `dst[i] = c * dst[i]` on the active backend.
#[inline]
pub fn scale_assign(dst: &mut [u8], c: u8) {
    scale_assign_on(active(), dst, c);
}

/// `dst[i] ^= src[i]` on the active backend.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn add_assign(dst: &mut [u8], src: &[u8]) {
    add_assign_on(active(), dst, src);
}

// ---------------------------------------------------------------------------
// Explicit-backend entry points (tests, benchmarks).
// ---------------------------------------------------------------------------

#[inline]
fn require_available(backend: GfBackend) {
    assert!(
        backend.is_available(),
        "GF backend `{}` is not available on this CPU",
        backend.name()
    );
}

/// `dst[i] ^= c * src[i]` on an explicit backend.
///
/// # Panics
///
/// Panics if the slices have different lengths or the backend is unavailable.
pub fn axpy_on(backend: GfBackend, dst: &mut [u8], c: u8, src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "vector length mismatch");
    match c {
        0 => {}
        1 => add_assign_on(backend, dst, src),
        _ => {
            require_available(backend);
            axpy_impl(backend, dst, c, src);
        }
    }
}

/// `dst[i] = c * dst[i]` on an explicit backend.
///
/// # Panics
///
/// Panics if the backend is unavailable.
pub fn scale_assign_on(backend: GfBackend, dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            require_available(backend);
            scale_impl(backend, dst, c);
        }
    }
}

/// `dst[i] ^= src[i]` on an explicit backend.
///
/// # Panics
///
/// Panics if the slices have different lengths or the backend is unavailable.
pub fn add_assign_on(backend: GfBackend, dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "vector length mismatch");
    require_available(backend);
    add_impl(backend, dst, src);
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (also the tail handler for the SIMD paths).
// ---------------------------------------------------------------------------

fn axpy_scalar(dst: &mut [u8], c: u8, src: &[u8]) {
    let row = &GF256_MUL[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

fn scale_scalar(dst: &mut [u8], c: u8) {
    let row = &GF256_MUL[c as usize];
    for d in dst.iter_mut() {
        *d = row[*d as usize];
    }
}

fn add_scalar(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

// ---------------------------------------------------------------------------
// Per-architecture dispatch. Exactly one `*_impl` set compiles per target.
// The `is_available` check in the public entry points is what makes the
// `unsafe` calls here sound: a backend is only dispatched to when its
// required CPU feature has been detected at runtime.
// ---------------------------------------------------------------------------

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
fn axpy_impl(backend: GfBackend, dst: &mut [u8], c: u8, src: &[u8]) {
    match backend {
        GfBackend::Scalar => axpy_scalar(dst, c, src),
        // SAFETY: availability verified by the caller (`require_available`).
        GfBackend::Ssse3 => unsafe { x86::axpy_ssse3(dst, c, src) },
        // SAFETY: as above.
        GfBackend::Avx2 => unsafe { x86::axpy_avx2(dst, c, src) },
        GfBackend::Neon => unreachable!("neon is never available on x86"),
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
fn scale_impl(backend: GfBackend, dst: &mut [u8], c: u8) {
    match backend {
        GfBackend::Scalar => scale_scalar(dst, c),
        // SAFETY: availability verified by the caller (`require_available`).
        GfBackend::Ssse3 => unsafe { x86::scale_ssse3(dst, c) },
        // SAFETY: as above.
        GfBackend::Avx2 => unsafe { x86::scale_avx2(dst, c) },
        GfBackend::Neon => unreachable!("neon is never available on x86"),
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
fn add_impl(backend: GfBackend, dst: &mut [u8], src: &[u8]) {
    match backend {
        GfBackend::Scalar => add_scalar(dst, src),
        // SAFETY: availability verified by the caller (`require_available`).
        GfBackend::Ssse3 => unsafe { x86::add_ssse3(dst, src) },
        // SAFETY: as above.
        GfBackend::Avx2 => unsafe { x86::add_avx2(dst, src) },
        GfBackend::Neon => unreachable!("neon is never available on x86"),
    }
}

#[cfg(target_arch = "aarch64")]
fn axpy_impl(backend: GfBackend, dst: &mut [u8], c: u8, src: &[u8]) {
    match backend {
        GfBackend::Scalar => axpy_scalar(dst, c, src),
        // SAFETY: availability verified by the caller (`require_available`).
        GfBackend::Neon => unsafe { neon::axpy_neon(dst, c, src) },
        _ => unreachable!("x86 backends are never available on aarch64"),
    }
}

#[cfg(target_arch = "aarch64")]
fn scale_impl(backend: GfBackend, dst: &mut [u8], c: u8) {
    match backend {
        GfBackend::Scalar => scale_scalar(dst, c),
        // SAFETY: availability verified by the caller (`require_available`).
        GfBackend::Neon => unsafe { neon::scale_neon(dst, c) },
        _ => unreachable!("x86 backends are never available on aarch64"),
    }
}

#[cfg(target_arch = "aarch64")]
fn add_impl(backend: GfBackend, dst: &mut [u8], src: &[u8]) {
    match backend {
        GfBackend::Scalar => add_scalar(dst, src),
        // SAFETY: availability verified by the caller (`require_available`).
        GfBackend::Neon => unsafe { neon::add_neon(dst, src) },
        _ => unreachable!("x86 backends are never available on aarch64"),
    }
}

#[cfg(not(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64")))]
fn axpy_impl(backend: GfBackend, dst: &mut [u8], c: u8, src: &[u8]) {
    match backend {
        GfBackend::Scalar => axpy_scalar(dst, c, src),
        _ => unreachable!("only the scalar backend is available on this target"),
    }
}

#[cfg(not(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64")))]
fn scale_impl(backend: GfBackend, dst: &mut [u8], c: u8) {
    match backend {
        GfBackend::Scalar => scale_scalar(dst, c),
        _ => unreachable!("only the scalar backend is available on this target"),
    }
}

#[cfg(not(any(target_arch = "x86", target_arch = "x86_64", target_arch = "aarch64")))]
fn add_impl(backend: GfBackend, dst: &mut [u8], src: &[u8]) {
    match backend {
        GfBackend::Scalar => add_scalar(dst, src),
        _ => unreachable!("only the scalar backend is available on this target"),
    }
}

// ---------------------------------------------------------------------------
// x86/x86_64 SSSE3 + AVX2 kernels.
// ---------------------------------------------------------------------------

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    use crate::tables::GF256_NIB;

    /// # Safety
    ///
    /// Requires SSSE3.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn axpy_ssse3(dst: &mut [u8], c: u8, src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let lo = _mm_loadu_si128(GF256_NIB.0[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(GF256_NIB.1[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0f);
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i).cast());
            let d = _mm_loadu_si128(dp.add(i).cast());
            let sl = _mm_and_si128(s, mask);
            let sh = _mm_and_si128(_mm_srli_epi64::<4>(s), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(lo, sl), _mm_shuffle_epi8(hi, sh));
            _mm_storeu_si128(dp.add(i).cast(), _mm_xor_si128(d, prod));
            i += 16;
        }
        super::axpy_scalar(&mut dst[n..], c, &src[n..]);
    }

    /// # Safety
    ///
    /// Requires SSSE3.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn scale_ssse3(dst: &mut [u8], c: u8) {
        let lo = _mm_loadu_si128(GF256_NIB.0[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(GF256_NIB.1[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0f);
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let d = _mm_loadu_si128(dp.add(i).cast());
            let dl = _mm_and_si128(d, mask);
            let dh = _mm_and_si128(_mm_srli_epi64::<4>(d), mask);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(lo, dl), _mm_shuffle_epi8(hi, dh));
            _mm_storeu_si128(dp.add(i).cast(), prod);
            i += 16;
        }
        super::scale_scalar(&mut dst[n..], c);
    }

    /// # Safety
    ///
    /// Requires SSSE3 (only SSE2 instructions are used, but keeping one
    /// feature gate per backend keeps dispatch honest).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn add_ssse3(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i < n {
            let s = _mm_loadu_si128(sp.add(i).cast());
            let d = _mm_loadu_si128(dp.add(i).cast());
            _mm_storeu_si128(dp.add(i).cast(), _mm_xor_si128(d, s));
            i += 16;
        }
        super::add_scalar(&mut dst[n..], &src[n..]);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(dst: &mut [u8], c: u8, src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let lo =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(GF256_NIB.0[c as usize].as_ptr().cast()));
        let hi =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(GF256_NIB.1[c as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0f);
        let n = dst.len() & !31;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i).cast());
            let d = _mm256_loadu_si256(dp.add(i).cast());
            let sl = _mm256_and_si256(s, mask);
            let sh = _mm256_and_si256(_mm256_srli_epi64::<4>(s), mask);
            let prod =
                _mm256_xor_si256(_mm256_shuffle_epi8(lo, sl), _mm256_shuffle_epi8(hi, sh));
            _mm256_storeu_si256(dp.add(i).cast(), _mm256_xor_si256(d, prod));
            i += 32;
        }
        super::axpy_scalar(&mut dst[n..], c, &src[n..]);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_avx2(dst: &mut [u8], c: u8) {
        let lo =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(GF256_NIB.0[c as usize].as_ptr().cast()));
        let hi =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(GF256_NIB.1[c as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0f);
        let n = dst.len() & !31;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let d = _mm256_loadu_si256(dp.add(i).cast());
            let dl = _mm256_and_si256(d, mask);
            let dh = _mm256_and_si256(_mm256_srli_epi64::<4>(d), mask);
            let prod =
                _mm256_xor_si256(_mm256_shuffle_epi8(lo, dl), _mm256_shuffle_epi8(hi, dh));
            _mm256_storeu_si256(dp.add(i).cast(), prod);
            i += 32;
        }
        super::scale_scalar(&mut dst[n..], c);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_avx2(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len() & !31;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(sp.add(i).cast());
            let d = _mm256_loadu_si256(dp.add(i).cast());
            _mm256_storeu_si256(dp.add(i).cast(), _mm256_xor_si256(d, s));
            i += 32;
        }
        super::add_scalar(&mut dst[n..], &src[n..]);
    }
}

// ---------------------------------------------------------------------------
// aarch64 NEON kernels.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    use crate::tables::GF256_NIB;

    /// # Safety
    ///
    /// Requires NEON (mandatory on aarch64, gated anyway for symmetry).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_neon(dst: &mut [u8], c: u8, src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let lo = vld1q_u8(GF256_NIB.0[c as usize].as_ptr());
        let hi = vld1q_u8(GF256_NIB.1[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0f);
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i < n {
            let s = vld1q_u8(sp.add(i));
            let d = vld1q_u8(dp.add(i));
            let sl = vandq_u8(s, mask);
            let sh = vshrq_n_u8::<4>(s);
            let prod = veorq_u8(vqtbl1q_u8(lo, sl), vqtbl1q_u8(hi, sh));
            vst1q_u8(dp.add(i), veorq_u8(d, prod));
            i += 16;
        }
        super::axpy_scalar(&mut dst[n..], c, &src[n..]);
    }

    /// # Safety
    ///
    /// Requires NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn scale_neon(dst: &mut [u8], c: u8) {
        let lo = vld1q_u8(GF256_NIB.0[c as usize].as_ptr());
        let hi = vld1q_u8(GF256_NIB.1[c as usize].as_ptr());
        let mask = vdupq_n_u8(0x0f);
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let mut i = 0;
        while i < n {
            let d = vld1q_u8(dp.add(i));
            let dl = vandq_u8(d, mask);
            let dh = vshrq_n_u8::<4>(d);
            let prod = veorq_u8(vqtbl1q_u8(lo, dl), vqtbl1q_u8(hi, dh));
            vst1q_u8(dp.add(i), prod);
            i += 16;
        }
        super::scale_scalar(&mut dst[n..], c);
    }

    /// # Safety
    ///
    /// Requires NEON.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn add_neon(dst: &mut [u8], src: &[u8]) {
        debug_assert_eq!(dst.len(), src.len());
        let n = dst.len() & !15;
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i < n {
            let s = vld1q_u8(sp.add(i));
            let d = vld1q_u8(dp.add(i));
            vst1q_u8(dp.add(i), veorq_u8(d, s));
            i += 16;
        }
        super::add_scalar(&mut dst[n..], &src[n..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so the differential tests need no RNG crate.
    struct XorShift(u64);

    impl XorShift {
        fn next_u8(&mut self) -> u8 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x >> 24) as u8
        }

        fn bytes(&mut self, n: usize) -> Vec<u8> {
            (0..n).map(|_| self.next_u8()).collect()
        }
    }

    /// Lengths chosen to hit the empty case, sub-vector tails, exact vector
    /// multiples, and multi-vector bodies with odd tails for both 16- and
    /// 32-byte kernels.
    const LENGTHS: [usize; 18] = [0, 1, 2, 3, 7, 15, 16, 17, 31, 32, 33, 48, 63, 64, 65, 100, 255, 4096];

    #[test]
    fn scalar_is_always_available() {
        assert!(GfBackend::Scalar.is_available());
        let avail = available_backends();
        assert_eq!(avail.last(), Some(&GfBackend::Scalar));
    }

    #[test]
    fn names_round_trip() {
        for b in PREFERENCE {
            assert_eq!(GfBackend::from_name(b.name()), Some(b));
            assert_eq!(GfBackend::from_name(&b.name().to_uppercase()), Some(b));
        }
        assert_eq!(GfBackend::from_name("sse9"), None);
    }

    #[test]
    fn choose_honors_available_request_and_falls_back() {
        assert_eq!(choose(Some("scalar")), GfBackend::Scalar);
        let best = choose(None);
        assert!(best.is_available());
        // Unknown and unavailable requests fall back to auto-detection.
        assert_eq!(choose(Some("bogus")), best);
        if !GfBackend::Neon.is_available() {
            assert_eq!(choose(Some("neon")), best);
        }
    }

    #[test]
    fn active_backend_is_available() {
        assert!(active().is_available());
        // Must be sticky.
        assert_eq!(active(), active());
    }

    #[test]
    fn differential_axpy_all_backends_random() {
        let mut rng = XorShift(0x5EED_0001);
        for backend in available_backends() {
            for &len in &LENGTHS {
                for round in 0..4 {
                    let c = match round {
                        0 => 0,
                        1 => 1,
                        _ => rng.next_u8().max(2),
                    };
                    let src = rng.bytes(len);
                    let dst0 = rng.bytes(len);
                    let mut want = dst0.clone();
                    axpy_scalar(&mut want, c, &src);
                    if c == 0 {
                        want = dst0.clone();
                    }
                    let mut got = dst0.clone();
                    axpy_on(backend, &mut got, c, &src);
                    assert_eq!(got, want, "axpy backend={backend} len={len} c={c}");
                }
            }
        }
    }

    #[test]
    fn differential_axpy_all_coefficients() {
        let mut rng = XorShift(0x5EED_0002);
        let src = rng.bytes(37);
        let dst0 = rng.bytes(37);
        for backend in available_backends() {
            for c in 0..=255u8 {
                let mut want = dst0.clone();
                axpy_on(GfBackend::Scalar, &mut want, c, &src);
                let mut got = dst0.clone();
                axpy_on(backend, &mut got, c, &src);
                assert_eq!(got, want, "axpy backend={backend} c={c}");
            }
        }
    }

    #[test]
    fn differential_axpy_unaligned_slices() {
        let mut rng = XorShift(0x5EED_0003);
        // Deliberately mis-align both source and destination starts relative
        // to the allocation: the kernels use unaligned loads, and this test
        // proves tail handling is offset-independent.
        for backend in available_backends() {
            for s_off in 0..4usize {
                for d_off in 0..4usize {
                    let src_buf = rng.bytes(97 + s_off);
                    let dst_buf = rng.bytes(97 + d_off);
                    let c = rng.next_u8().max(2);
                    let src = &src_buf[s_off..];
                    let mut want = dst_buf[d_off..].to_vec();
                    axpy_scalar(&mut want, c, src);
                    let mut got_buf = dst_buf.clone();
                    axpy_on(backend, &mut got_buf[d_off..], c, src);
                    assert_eq!(
                        &got_buf[d_off..],
                        want.as_slice(),
                        "axpy backend={backend} s_off={s_off} d_off={d_off}"
                    );
                }
            }
        }
    }

    #[test]
    fn differential_scale_all_backends() {
        let mut rng = XorShift(0x5EED_0004);
        for backend in available_backends() {
            for &len in &LENGTHS {
                for c in [0u8, 1, 2, 0x1d, rng.next_u8().max(2), 255] {
                    let dst0 = rng.bytes(len);
                    let mut want = dst0.clone();
                    scale_assign_on(GfBackend::Scalar, &mut want, c);
                    let mut got = dst0.clone();
                    scale_assign_on(backend, &mut got, c);
                    assert_eq!(got, want, "scale backend={backend} len={len} c={c}");
                }
            }
        }
    }

    #[test]
    fn differential_add_all_backends() {
        let mut rng = XorShift(0x5EED_0005);
        for backend in available_backends() {
            for &len in &LENGTHS {
                let src = rng.bytes(len);
                let dst0 = rng.bytes(len);
                let mut want = dst0.clone();
                add_scalar(&mut want, &src);
                let mut got = dst0.clone();
                add_assign_on(backend, &mut got, &src);
                assert_eq!(got, want, "add backend={backend} len={len}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_on_length_mismatch_panics() {
        let mut d = [0u8; 3];
        axpy_on(GfBackend::Scalar, &mut d, 2, &[0u8; 4]);
    }

    #[cfg(not(target_arch = "aarch64"))]
    #[test]
    #[should_panic(expected = "not available")]
    fn unavailable_backend_panics() {
        let mut d = [0u8; 16];
        axpy_on(GfBackend::Neon, &mut d, 2, &[1u8; 16]);
    }
}
