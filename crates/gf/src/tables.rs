//! Compile-time generation of logarithm/antilogarithm/multiplication tables.
//!
//! Both fields are represented as polynomials over GF(2) modulo an
//! irreducible polynomial, with `x` (= 2) a primitive element, so
//! multiplication reduces to `exp[(log a + log b) mod (order - 1)]`.
//!
//! All tables are computed by `const fn` at compile time; there is no runtime
//! initialization and no locking.

/// Irreducible polynomial for GF(2⁸): x⁸ + x⁴ + x³ + x² + 1 (0x11D).
///
/// This is the polynomial used by most Reed–Solomon deployments; 2 is a
/// generator of the multiplicative group.
pub const GF256_POLY: u16 = 0x11D;

/// Irreducible polynomial for GF(2¹⁶): x¹⁶ + x¹² + x³ + x + 1 (0x1100B).
///
/// The standard CCITT-adjacent choice; 2 is a generator of the multiplicative
/// group modulo this polynomial.
pub const GF2P16_POLY: u32 = 0x1100B;

/// Log/exp tables for GF(2⁸).
pub struct Gf256Tables {
    /// `exp[i] = 2^i`, doubled so `exp[log a + log b]` needs no modulo.
    pub exp: [u8; 512],
    /// `log[a]` for `a != 0`; `log[0]` is a sentinel (unused).
    pub log: [u16; 256],
}

const fn build_gf256() -> Gf256Tables {
    let mut exp = [0u8; 512];
    let mut log = [0u16; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        log[x as usize] = i as u16;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= GF256_POLY;
        }
        i += 1;
    }
    // Duplicate the cycle so that exp[log a + log b] (max 508) never wraps.
    let mut j = 255;
    while j < 512 {
        exp[j] = exp[j - 255];
        j += 1;
    }
    Gf256Tables { exp, log }
}

/// The GF(2⁸) log/exp tables, built at compile time.
pub static GF256: Gf256Tables = build_gf256();

/// Full 256×256 multiplication table for GF(2⁸).
///
/// `MUL[a][b] = a * b`. One 64 KiB table keeps the hot `axpy` loop in
/// [`crate::vec_ops`] to a single indexed load per byte.
pub static GF256_MUL: [[u8; 256]; 256] = build_gf256_mul();

const fn build_gf256_mul() -> [[u8; 256]; 256] {
    let t = build_gf256();
    let mut m = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let la = t.log[a] as usize;
        let mut b = 1usize;
        while b < 256 {
            m[a][b] = t.exp[la + t.log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    m
}

/// Split-nibble product tables for GF(2⁸), the lookup shape SIMD shuffle
/// instructions want: `GF256_NIB.0[c][x] = c·x` for `x < 16` (low nibble)
/// and `GF256_NIB.1[c][x] = c·(x << 4)` (high nibble), so
/// `c·b = NIB_LO[c][b & 0xf] ^ NIB_HI[c][b >> 4]`.
///
/// 2 × 256 × 16 = 8 KiB total — both tables for one coefficient fit in a
/// pair of vector registers, which is what makes the shuffle kernels in
/// [`crate::kernels`] fast.
pub(crate) static GF256_NIB: ([[u8; 16]; 256], [[u8; 16]; 256]) = build_gf256_nibbles();

const fn build_gf256_nibbles() -> ([[u8; 16]; 256], [[u8; 16]; 256]) {
    let m = build_gf256_mul();
    let mut lo = [[0u8; 16]; 256];
    let mut hi = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            lo[c][x] = m[c][x];
            hi[c][x] = m[c][x << 4];
            x += 1;
        }
        c += 1;
    }
    (lo, hi)
}

/// Log/exp tables for GF(2¹⁶). Boxed statics would be nicer for cache
/// pressure, but `const` evaluation into `static` keeps things simple and the
/// tables are only touched by the GF(2¹⁶) code paths.
pub struct Gf2p16Tables {
    /// `exp[i] = 2^i`, length 2·(2¹⁶−1) to avoid modulo in multiplication.
    pub exp: [u16; 131070],
    /// `log[a]` for `a != 0`.
    pub log: [u32; 65536],
}

const fn build_gf2p16() -> Gf2p16Tables {
    let mut exp = [0u16; 131070];
    let mut log = [0u32; 65536];
    let mut x: u32 = 1;
    let mut i = 0;
    while i < 65535 {
        exp[i] = x as u16;
        log[x as usize] = i as u32;
        x <<= 1;
        if x & 0x1_0000 != 0 {
            x ^= GF2P16_POLY;
        }
        i += 1;
    }
    let mut j = 65535;
    while j < 131070 {
        exp[j] = exp[j - 65535];
        j += 1;
    }
    Gf2p16Tables { exp, log }
}

/// The GF(2¹⁶) log/exp tables, built at compile time.
pub static GF2P16: Gf2p16Tables = build_gf2p16();

#[cfg(test)]
mod tests {
    use super::*;

    /// Schoolbook carry-less multiply + reduce, used to validate the tables.
    fn slow_mul_256(mut a: u16, b: u16) -> u8 {
        let mut acc: u16 = 0;
        let mut b = b;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= GF256_POLY;
            }
        }
        acc as u8
    }

    #[test]
    fn exp_log_are_inverse_bijections() {
        // exp restricted to 0..255 must be a bijection onto 1..=255.
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = GF256.exp[i] as usize;
            assert_ne!(v, 0, "exp[{i}] must be non-zero");
            assert!(!seen[v], "exp not injective at {i}");
            seen[v] = true;
            assert_eq!(GF256.log[v] as usize, i);
        }
    }

    #[test]
    fn mul_table_matches_slow_mul() {
        for a in 0..256u16 {
            for b in (0..256u16).step_by(7) {
                assert_eq!(
                    GF256_MUL[a as usize][b as usize],
                    slow_mul_256(a, b),
                    "mismatch at {a}*{b}"
                );
            }
        }
    }

    #[test]
    fn mul_table_zero_row_and_column() {
        for (i, row) in GF256_MUL.iter().enumerate() {
            assert_eq!(GF256_MUL[0][i], 0);
            assert_eq!(row[0], 0);
        }
    }

    #[test]
    fn gf2p16_exp_log_consistent() {
        for i in (0..65535usize).step_by(911) {
            let v = GF2P16.exp[i];
            assert_ne!(v, 0);
            assert_eq!(GF2P16.log[v as usize] as usize, i);
        }
    }

    #[test]
    fn gf2p16_generator_has_full_order() {
        // 2 must not hit 1 before exponent 65535: check a few proper
        // divisors of 65535 = 3*5*17*257.
        let divisors = [3usize, 5, 17, 257, 65535 / 3, 65535 / 5, 65535 / 17, 65535 / 257];
        for d in divisors {
            assert_ne!(GF2P16.exp[d], 1, "generator order divides {d}");
        }
        assert_eq!(GF2P16.exp[0], 1);
    }
}
