//! GF(2¹⁶): a larger symbol field for long generations.
//!
//! With 16-bit symbols the probability that a random linear combination is
//! non-innovative drops from ~1/256 per opportunity to ~1/65536, at the cost
//! of heavier tables. The RLNC codec is generic over [`Field`], so switching
//! is a type parameter away; experiment E09 quantifies the trade-off.

use std::fmt;

use crate::field::Field;
use crate::tables::GF2P16;

/// An element of GF(2¹⁶) = GF(2)[x] / (x¹⁶ + x¹² + x³ + x + 1).
///
/// # Example
///
/// ```
/// use curtain_gf::{Field, Gf2p16};
///
/// let a = Gf2p16::new(0xBEEF);
/// assert_eq!(a.mul(a.inv()), Gf2p16::ONE);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf2p16(pub u16);

impl Gf2p16 {
    /// Wraps a raw 16-bit word as a field element.
    #[must_use]
    pub const fn new(v: u16) -> Self {
        Gf2p16(v)
    }

    /// Returns the raw 16-bit value.
    #[must_use]
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl Field for Gf2p16 {
    const ZERO: Self = Gf2p16(0);
    const ONE: Self = Gf2p16(1);
    const ORDER: usize = 65536;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf2p16(self.0 ^ rhs.0)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf2p16(0);
        }
        let la = GF2P16.log[self.0 as usize] as usize;
        let lb = GF2P16.log[rhs.0 as usize] as usize;
        Gf2p16(GF2P16.exp[la + lb])
    }

    #[inline]
    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in GF(2^16)");
        Gf2p16(GF2P16.exp[65535 - GF2P16.log[self.0 as usize] as usize])
    }

    #[inline]
    fn from_index(v: usize) -> Self {
        assert!(v < 65536, "index {v} out of range for GF(2^16)");
        Gf2p16(v as u16)
    }

    #[inline]
    fn to_index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Gf2p16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2p16({:#06x})", self.0)
    }
}

impl fmt::Display for Gf2p16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}", self.0)
    }
}

impl From<u16> for Gf2p16 {
    fn from(v: u16) -> Self {
        Gf2p16(v)
    }
}

impl From<Gf2p16> for u16 {
    fn from(v: Gf2p16) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Carry-less schoolbook multiply for cross-validation.
    fn slow_mul(mut a: u32, mut b: u32) -> u16 {
        let mut acc: u32 = 0;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            b >>= 1;
            a <<= 1;
            if a & 0x1_0000 != 0 {
                a ^= crate::tables::GF2P16_POLY;
            }
        }
        acc as u16
    }

    proptest! {
        #[test]
        fn mul_matches_slow_reference(a: u16, b: u16) {
            prop_assert_eq!(Gf2p16(a).mul(Gf2p16(b)).0, slow_mul(a as u32, b as u32));
        }

        #[test]
        fn field_axioms(a: u16, b: u16, c: u16) {
            let (a, b, c) = (Gf2p16(a), Gf2p16(b), Gf2p16(c));
            prop_assert_eq!(a.mul(b), b.mul(a));
            prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
            prop_assert_eq!(a.add(a), Gf2p16::ZERO);
        }

        #[test]
        fn nonzero_inverse(a in 1u16..) {
            let a = Gf2p16(a);
            prop_assert_eq!(a.mul(a.inv()), Gf2p16::ONE);
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inv_of_zero_panics() {
        let _ = Gf2p16::ZERO.inv();
    }

    #[test]
    fn mul_by_zero() {
        assert_eq!(Gf2p16(0x1234).mul(Gf2p16::ZERO), Gf2p16::ZERO);
        assert_eq!(Gf2p16::ZERO.mul(Gf2p16(0x1234)), Gf2p16::ZERO);
    }
}
