//! GF(2⁸): the default symbol field for practical network coding.

use std::fmt;

use crate::field::Field;
use crate::tables::{GF256, GF256_MUL};

/// An element of GF(2⁸) = GF(2)[x] / (x⁸ + x⁴ + x³ + x² + 1).
///
/// One byte per symbol: coefficient vectors and payloads are plain `[u8]`
/// buffers reinterpreted symbol-wise, which is why practical network coding
/// systems (Chou–Wu–Jain 2003) standardize on this field.
///
/// # Example
///
/// ```
/// use curtain_gf::{Field, Gf256};
///
/// let a = Gf256::new(7);
/// assert_eq!(a.mul(a.inv()), Gf256::ONE);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// Wraps a raw byte as a field element.
    #[must_use]
    pub const fn new(v: u8) -> Self {
        Gf256(v)
    }

    /// Returns the raw byte value.
    #[must_use]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Multiplies two raw bytes in GF(2⁸) without wrapping them first.
    ///
    /// This is the kernel the bulk vector ops build on.
    #[inline]
    #[must_use]
    pub fn mul_bytes(a: u8, b: u8) -> u8 {
        GF256_MUL[a as usize][b as usize]
    }
}

impl Field for Gf256 {
    const ZERO: Self = Gf256(0);
    const ONE: Self = Gf256(1);
    const ORDER: usize = 256;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf256(GF256_MUL[self.0 as usize][rhs.0 as usize])
    }

    #[inline]
    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in GF(2^8)");
        Gf256(GF256.exp[255 - GF256.log[self.0 as usize] as usize])
    }

    #[inline]
    fn from_index(v: usize) -> Self {
        assert!(v < 256, "index {v} out of range for GF(2^8)");
        Gf256(v as u8)
    }

    #[inline]
    fn to_index(self) -> usize {
        self.0 as usize
    }

    fn axpy_slice(dst: &mut [Self], c: Self, src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "vector length mismatch");
        crate::kernels::axpy(
            crate::kernels::gf256_as_bytes_mut(dst),
            c.0,
            crate::kernels::gf256_as_bytes(src),
        );
    }

    fn scale_slice(dst: &mut [Self], c: Self) {
        crate::kernels::scale_assign(crate::kernels::gf256_as_bytes_mut(dst), c.0);
    }

    fn add_slice(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "vector length mismatch");
        crate::kernels::add_assign(crate::kernels::gf256_as_bytes_mut(dst), crate::kernels::gf256_as_bytes(src));
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(v: u8) -> Self {
        Gf256(v)
    }
}

impl From<Gf256> for u8 {
    fn from(v: Gf256) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn add_is_commutative_and_associative(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
            prop_assert_eq!(a.add(b), b.add(a));
            prop_assert_eq!(a.add(b).add(c), a.add(b.add(c)));
        }

        #[test]
        fn mul_is_commutative_and_associative(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
            prop_assert_eq!(a.mul(b), b.mul(a));
            prop_assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        }

        #[test]
        fn mul_distributes_over_add(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf256(a), Gf256(b), Gf256(c));
            prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
        }

        #[test]
        fn additive_inverse_is_self(a: u8) {
            let a = Gf256(a);
            prop_assert_eq!(a.add(a), Gf256::ZERO);
        }

        #[test]
        fn nonzero_elements_have_inverses(a in 1u8..) {
            let a = Gf256(a);
            prop_assert_eq!(a.mul(a.inv()), Gf256::ONE);
            prop_assert_eq!(a.div(a), Gf256::ONE);
        }

        #[test]
        fn identities(a: u8) {
            let a = Gf256(a);
            prop_assert_eq!(a.add(Gf256::ZERO), a);
            prop_assert_eq!(a.mul(Gf256::ONE), a);
            prop_assert_eq!(a.mul(Gf256::ZERO), Gf256::ZERO);
        }
    }

    proptest! {
        /// The kernel-backed slice overrides must agree with the trait's
        /// element-wise defaults (exercised here by hand).
        #[test]
        fn slice_ops_match_elementwise(c: u8, pairs in proptest::collection::vec(any::<(u8, u8)>(), 0..70)) {
            let c = Gf256(c);
            let src: Vec<Gf256> = pairs.iter().map(|p| Gf256(p.0)).collect();
            let orig: Vec<Gf256> = pairs.iter().map(|p| Gf256(p.1)).collect();

            let mut got = orig.clone();
            Gf256::axpy_slice(&mut got, c, &src);
            let want: Vec<Gf256> =
                orig.iter().zip(&src).map(|(&d, &s)| d.add(c.mul(s))).collect();
            prop_assert_eq!(got, want);

            let mut got = orig.clone();
            Gf256::scale_slice(&mut got, c);
            let want: Vec<Gf256> = orig.iter().map(|&d| c.mul(d)).collect();
            prop_assert_eq!(got, want);

            let mut got = orig.clone();
            Gf256::add_slice(&mut got, &src);
            let want: Vec<Gf256> = orig.iter().zip(&src).map(|(&d, &s)| d.add(s)).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inv_of_zero_panics() {
        let _ = Gf256::ZERO.inv();
    }

    #[test]
    fn fermat_little_theorem() {
        // a^255 = 1 for all non-zero a.
        for a in 1..=255u8 {
            assert_eq!(Gf256(a).pow(255), Gf256::ONE, "a = {a}");
        }
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", Gf256(0xab)), "ab");
        assert_eq!(format!("{:?}", Gf256(0x05)), "Gf256(0x05)");
    }
}
