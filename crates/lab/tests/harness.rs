//! End-to-end tests of the lab harness on synthetic sweeps: report
//! determinism across job counts, cache resumption, and the `check`
//! mode's claim-failure exit path.

use std::fs;
use std::path::{Path, PathBuf};

use curtain_lab::cell::Measurement;
use curtain_lab::claims::{Claim, Predicate, UpperBound};
use curtain_lab::cli::{run_sweeps, CliOptions, Mode};
use curtain_lab::grid::{ints, ParamGrid, Params};
use curtain_lab::{Profile, Sweep};
use curtain_telemetry::json::{parse_document, JsonValue};

/// A deterministic synthetic sweep: y = x² + seed, bounded by 2·x².
struct Synthetic {
    /// When true, the claim is made impossible to satisfy.
    poisoned: bool,
}

impl Sweep for Synthetic {
    fn id(&self) -> &'static str {
        "synth"
    }

    fn title(&self) -> &'static str {
        "synthetic quadratic sweep"
    }

    fn code_salt(&self) -> &'static str {
        "synth-v1"
    }

    fn grid(&self, _profile: Profile) -> ParamGrid {
        ParamGrid::cartesian(&[("x", ints(&[1, 2, 3, 4]))])
    }

    fn seeds(&self, _profile: Profile) -> Vec<u64> {
        vec![1, 2, 3]
    }

    fn run(&self, params: &Params, seed: u64) -> Measurement {
        let x = params.float("x");
        Measurement::new().with("y", x * x + seed as f64)
    }

    fn claims(&self) -> Vec<Box<dyn Claim>> {
        // Mean y over seeds {1,2,3} is x² + 2, so x² + 4 holds everywhere;
        // the poisoned ceiling cannot.
        let poisoned = self.poisoned;
        vec![
            Box::new(UpperBound {
                name: "y-under-x2-plus-4",
                metric: "y",
                slack: 0.0,
                bound: Box::new(move |p: &Params| {
                    let x = p.float("x");
                    Some(if poisoned { 0.001 } else { x * x + 4.0 })
                }),
            }),
            Box::new(Predicate {
                name: "four-points",
                check: Box::new(|points| {
                    if points.len() == 4 {
                        Ok("all points present".into())
                    } else {
                        Err(format!("expected 4 points, got {}", points.len()))
                    }
                }),
            }),
        ]
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("curtain-lab-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(root: &Path, mode: Mode, jobs: usize) -> CliOptions {
    CliOptions {
        mode,
        jobs,
        cache_dir: root.join("cache"),
        out_dir: root.join("out"),
        ..CliOptions::default()
    }
}

fn timing_counts(root: &Path) -> (u64, u64) {
    let text = fs::read_to_string(root.join("out/BENCH_synth.timing.json")).unwrap();
    let doc = parse_document(&text).unwrap();
    (
        doc.get("cache_hits").and_then(JsonValue::as_u64).unwrap(),
        doc.get("cache_misses").and_then(JsonValue::as_u64).unwrap(),
    )
}

#[test]
fn reports_are_byte_identical_across_job_counts() {
    let sweeps: Vec<Box<dyn Sweep>> = vec![Box::new(Synthetic { poisoned: false })];
    let mut renders = Vec::new();
    for jobs in [1usize, 4] {
        let root = scratch(&format!("jobs{jobs}"));
        assert_eq!(run_sweeps(&sweeps, &opts(&root, Mode::Run, jobs)), 0);
        renders.push(fs::read_to_string(root.join("out/BENCH_synth.json")).unwrap());
        let _ = fs::remove_dir_all(&root);
    }
    assert_eq!(renders[0], renders[1], "jobs=1 and jobs=4 must render the same bytes");

    // And the report is well-formed: claims recorded, points aggregated.
    let doc = parse_document(&renders[0]).unwrap();
    assert_eq!(doc.get("exp").and_then(JsonValue::as_str), Some("synth"));
    let points = doc.get("points").and_then(JsonValue::as_array).unwrap();
    assert_eq!(points.len(), 4);
    let claims = doc.get("claims").and_then(JsonValue::as_array).unwrap();
    assert_eq!(claims.len(), 2);
    for claim in claims {
        assert_eq!(claim.get("passed").and_then(JsonValue::as_bool), Some(true));
    }
    // Point 0: x=1, seeds 1..3 → y ∈ {2,3,4}, mean 3.
    let mean = points[0]
        .get("metrics")
        .and_then(|m| m.get("y"))
        .and_then(|y| y.get("mean"))
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert!((mean - 3.0).abs() < 1e-12, "{mean}");
}

#[test]
fn second_run_resumes_fully_from_cache() {
    let sweeps: Vec<Box<dyn Sweep>> = vec![Box::new(Synthetic { poisoned: false })];
    let root = scratch("resume");

    assert_eq!(run_sweeps(&sweeps, &opts(&root, Mode::Run, 2)), 0);
    assert_eq!(timing_counts(&root), (0, 12), "cold run misses all 12 cells");
    let first = fs::read_to_string(root.join("out/BENCH_synth.json")).unwrap();

    assert_eq!(run_sweeps(&sweeps, &opts(&root, Mode::Run, 2)), 0);
    assert_eq!(timing_counts(&root), (12, 0), "warm run is 100% hits");
    let second = fs::read_to_string(root.join("out/BENCH_synth.json")).unwrap();
    assert_eq!(second, first, "cached results reproduce the report exactly");

    // --fresh re-executes everything despite the warm cache.
    let fresh = CliOptions { fresh: true, ..opts(&root, Mode::Run, 2) };
    assert_eq!(run_sweeps(&sweeps, &fresh), 0);
    assert_eq!(timing_counts(&root), (0, 12));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn check_mode_gates_on_claims() {
    let root = scratch("gate");
    let healthy: Vec<Box<dyn Sweep>> = vec![Box::new(Synthetic { poisoned: false })];
    assert_eq!(run_sweeps(&healthy, &opts(&root, Mode::Check, 2)), 0);

    let poisoned: Vec<Box<dyn Sweep>> = vec![Box::new(Synthetic { poisoned: true })];
    assert_eq!(
        run_sweeps(&poisoned, &opts(&root, Mode::Check, 2)),
        1,
        "a failed claim must fail `lab check`"
    );
    // ...but plain `run` records the failure without gating.
    assert_eq!(run_sweeps(&poisoned, &opts(&root, Mode::Run, 2)), 0);
    let text = fs::read_to_string(root.join("out/BENCH_synth.json")).unwrap();
    let doc = parse_document(&text).unwrap();
    let claims = doc.get("claims").and_then(JsonValue::as_array).unwrap();
    assert_eq!(claims[0].get("passed").and_then(JsonValue::as_bool), Some(false));
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn substring_selection_and_listing_work() {
    let sweeps: Vec<Box<dyn Sweep>> = vec![Box::new(Synthetic { poisoned: false })];
    let root = scratch("select");
    let selected = CliOptions {
        only: vec!["syn".to_owned()],
        ..opts(&root, Mode::Run, 1)
    };
    assert_eq!(run_sweeps(&sweeps, &selected), 0);
    let missed = CliOptions {
        only: vec!["e99".to_owned()],
        ..opts(&root, Mode::Run, 1)
    };
    assert_eq!(run_sweeps(&sweeps, &missed), 2, "no match is a usage error");
    assert_eq!(run_sweeps(&sweeps, &opts(&root, Mode::List, 1)), 0);
    let _ = fs::remove_dir_all(&root);
}
