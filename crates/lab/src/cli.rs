//! The `lab` command line: `run`, `check`, `list`.
//!
//! `lab run` executes the selected sweeps and writes `BENCH_<exp>.json`
//! (+ the `.timing.json` sidecar); `lab check` does the same and then
//! exits non-zero if any claim fails — the CI regression gate; `lab list`
//! prints the registry without executing anything.
//!
//! [`run_sweeps`] is the testable core: the binary is a thin wrapper
//! around `parse` + `registry()` + `run_sweeps`.

use std::path::PathBuf;
use std::time::Instant;

use curtain_telemetry::MetricsRegistry;

use crate::cache::Cache;
use crate::cell::Cell;
use crate::pool::run_cells;
use crate::report::{write_timing_sidecar, SweepReport};
use crate::{default_seeds, Profile, Sweep};

/// What the invocation should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Execute sweeps and write reports.
    Run,
    /// Execute sweeps, write reports, and gate on claims.
    Check,
    /// Print the registry.
    List,
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// The subcommand.
    pub mode: Mode,
    /// `--exp` substring filters (empty = every sweep).
    pub only: Vec<String>,
    /// `--jobs` worker count (0 = one per available core).
    pub jobs: usize,
    /// `--seeds` count override (None = the sweep's default).
    pub seeds: Option<u64>,
    /// `--scale` sample-count multiplier.
    pub scale: u64,
    /// `--quick` smoke-grid flag.
    pub quick: bool,
    /// `--fresh`: ignore cached results (still writes them back).
    pub fresh: bool,
    /// `--cache-dir` (default `.lab-cache`).
    pub cache_dir: PathBuf,
    /// `--out-dir` for `BENCH_*.json` (default `.`).
    pub out_dir: PathBuf,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            mode: Mode::Run,
            only: Vec::new(),
            jobs: 0,
            seeds: None,
            scale: 1,
            quick: false,
            fresh: false,
            cache_dir: PathBuf::from(".lab-cache"),
            out_dir: PathBuf::from("."),
        }
    }
}

/// The usage text printed on `2`-exits and `--help`.
#[must_use]
pub fn usage() -> &'static str {
    "usage: lab <run|check|list|trace> [options]\n\
     \n\
     subcommands:\n\
     \x20 run    execute sweeps, write BENCH_<exp>.json (+ .timing.json sidecar)\n\
     \x20 check  run, then exit 1 if any paper claim fails (CI gate)\n\
     \x20 list   print the experiment registry\n\
     \x20 trace  stitch JSONL traces into a causal report (lab trace --help)\n\
     \n\
     options:\n\
     \x20 --exp <substr>     select experiments by id substring (repeatable)\n\
     \x20 --jobs <n>         worker threads (default: one per core)\n\
     \x20 --seeds <n>        seeds per parameter point (default: per sweep)\n\
     \x20 --scale <n>        sample-count multiplier (default 1)\n\
     \x20 --quick            use the scaled-down smoke grids\n\
     \x20 --fresh            re-execute every cell, ignoring cached results\n\
     \x20 --cache-dir <dir>  result cache location (default .lab-cache)\n\
     \x20 --out-dir <dir>    where BENCH_*.json goes (default .)\n"
}

/// Parses `args` (without the program name).
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliOptions, String> {
    let mut args = args.into_iter();
    let mode = match args.next().as_deref() {
        Some("run") => Mode::Run,
        Some("check") => Mode::Check,
        Some("list") => Mode::List,
        Some("--help" | "-h") => return Err(String::new()),
        Some(other) => return Err(format!("unknown subcommand {other:?}")),
        None => return Err("missing subcommand".to_owned()),
    };
    let mut opts = CliOptions { mode, ..CliOptions::default() };

    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--exp" => opts.only.push(value("--exp")?),
            "--jobs" => {
                opts.jobs = value("--jobs")?
                    .parse::<usize>()
                    .map_err(|_| "--jobs needs a non-negative integer".to_owned())?;
            }
            "--seeds" => {
                let n = value("--seeds")?
                    .parse::<u64>()
                    .map_err(|_| "--seeds needs a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--seeds must be at least 1".to_owned());
                }
                opts.seeds = Some(n);
            }
            "--scale" => {
                let n = value("--scale")?
                    .parse::<u64>()
                    .map_err(|_| "--scale needs a positive integer".to_owned())?;
                if n == 0 {
                    return Err("--scale must be at least 1".to_owned());
                }
                opts.scale = n;
            }
            "--quick" => opts.quick = true,
            "--fresh" => opts.fresh = true,
            "--cache-dir" => opts.cache_dir = PathBuf::from(value("--cache-dir")?),
            "--out-dir" => opts.out_dir = PathBuf::from(value("--out-dir")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

/// Runs the selected sweeps; the process exit code.
///
/// Exit 0 on success, 1 when `check` finds a failed claim (or any sweep
/// cannot write its artifacts), 2 on an empty selection.
pub fn run_sweeps(sweeps: &[Box<dyn Sweep>], opts: &CliOptions) -> i32 {
    let selected: Vec<&dyn Sweep> = sweeps
        .iter()
        .map(AsRef::as_ref)
        .filter(|s| opts.only.is_empty() || opts.only.iter().any(|f| s.id().contains(f.as_str())))
        .collect();
    if selected.is_empty() {
        let known: Vec<&str> = sweeps.iter().map(|s| s.id()).collect();
        eprintln!(
            "lab: no experiment matches {:?}; known: {}",
            opts.only,
            known.join(", ")
        );
        return 2;
    }

    let profile = Profile { scale: opts.scale, quick: opts.quick };
    if opts.mode == Mode::List {
        for sweep in &selected {
            let grid = sweep.grid(profile);
            let seeds = seed_count(*sweep, opts, profile);
            println!(
                "{:<6} {:<60} {:>3} points x {} seeds, {} claims",
                sweep.id(),
                sweep.title(),
                grid.len(),
                seeds,
                sweep.claims().len()
            );
        }
        return 0;
    }

    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        opts.jobs
    };
    let cache = match Cache::open(&opts.cache_dir) {
        Ok(cache) => cache,
        Err(err) => {
            eprintln!("lab: cannot open cache {}: {err}", opts.cache_dir.display());
            return 1;
        }
    };

    let mut failed_claims = 0usize;
    let mut errors = 0usize;
    for sweep in &selected {
        let grid = sweep.grid(profile);
        let seeds = match opts.seeds {
            Some(n) => default_seeds(n),
            None => sweep.seeds(profile),
        };
        let mut cells = Vec::with_capacity(grid.len() * seeds.len());
        for point in grid.points() {
            for &seed in &seeds {
                cells.push(Cell { exp: sweep.id().to_owned(), params: point.clone(), seed });
            }
        }
        println!(
            "[{}] {} — {} points x {} seeds = {} cells on {} workers",
            sweep.id(),
            sweep.title(),
            grid.len(),
            seeds.len(),
            cells.len(),
            jobs
        );

        let metrics = MetricsRegistry::new();
        let started = Instant::now();
        let (measurements, stats) =
            run_cells(*sweep, &cells, jobs, Some(&cache), opts.fresh, &metrics);
        let wall_s = started.elapsed().as_secs_f64();

        let mut report = SweepReport::aggregate(
            sweep.id(),
            sweep.title(),
            sweep.code_salt(),
            grid.points(),
            &seeds,
            &measurements,
        );
        for claim in sweep.claims() {
            let outcome = claim.check(&report.points);
            let tag = if outcome.passed { "PASS" } else { "FAIL" };
            println!("  claim {tag} {} — {}", outcome.name, outcome.details);
            if !outcome.passed {
                failed_claims += 1;
            }
            report.claims.push(outcome);
        }

        match report.write(&opts.out_dir) {
            Ok(path) => println!(
                "  wrote {} ({:.1}s wall, cache: {} hits / {} misses = {:.1}% hit)",
                path.display(),
                wall_s,
                stats.hits,
                stats.misses,
                stats.hit_percent()
            ),
            Err(err) => {
                eprintln!("lab: cannot write report for {}: {err}", sweep.id());
                errors += 1;
            }
        }
        if let Err(err) = write_timing_sidecar(
            &opts.out_dir,
            sweep.id(),
            jobs,
            stats,
            wall_s,
            &metrics.snapshot(),
        ) {
            eprintln!("lab: cannot write timing sidecar for {}: {err}", sweep.id());
            errors += 1;
        }
    }

    if errors > 0 {
        return 1;
    }
    if opts.mode == Mode::Check && failed_claims > 0 {
        eprintln!("lab check: {failed_claims} claim(s) FAILED");
        return 1;
    }
    if opts.mode == Mode::Check {
        println!("lab check: all claims pass");
    }
    0
}

fn seed_count(sweep: &dyn Sweep, opts: &CliOptions, profile: Profile) -> usize {
    match opts.seeds {
        Some(n) => n as usize,
        None => sweep.seeds(profile).len(),
    }
}

/// The binary's whole logic: parse, pick the registry, run.
///
/// `lab trace` has its own argument grammar (file operands) and is
/// dispatched to [`crate::trace_cmd`] before sweep parsing.
pub fn main_entry(args: impl IntoIterator<Item = String>) -> i32 {
    let mut args = args.into_iter().peekable();
    if args.peek().map(String::as_str) == Some("trace") {
        args.next();
        return crate::trace_cmd::main_entry(args);
    }
    match parse(args) {
        Ok(opts) => run_sweeps(&crate::experiments::registry(), &opts),
        Err(message) => {
            if message.is_empty() {
                // --help
                print!("{}", usage());
                0
            } else {
                eprintln!("lab: {message}");
                eprint!("{}", usage());
                2
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> CliOptions {
        parse(args.iter().map(|s| (*s).to_owned())).unwrap()
    }

    #[test]
    fn parses_subcommands_and_flags() {
        let opts = parse_ok(&[
            "check", "--exp", "e01", "--exp", "e03", "--jobs", "4", "--seeds", "2", "--scale",
            "3", "--quick", "--fresh", "--cache-dir", "/tmp/c", "--out-dir", "/tmp/o",
        ]);
        assert_eq!(opts.mode, Mode::Check);
        assert_eq!(opts.only, vec!["e01", "e03"]);
        assert_eq!(opts.jobs, 4);
        assert_eq!(opts.seeds, Some(2));
        assert_eq!(opts.scale, 3);
        assert!(opts.quick && opts.fresh);
        assert_eq!(opts.cache_dir, PathBuf::from("/tmp/c"));
        assert_eq!(opts.out_dir, PathBuf::from("/tmp/o"));
        assert_eq!(parse_ok(&["run"]), CliOptions::default());
        assert_eq!(parse_ok(&["list"]).mode, Mode::List);
    }

    #[test]
    fn rejects_bad_invocations() {
        let cases: &[&[&str]] = &[
            &[],
            &["bogus"],
            &["run", "--jobs"],
            &["run", "--jobs", "many"],
            &["run", "--seeds", "0"],
            &["run", "--scale", "0"],
            &["run", "--frobnicate"],
        ];
        for case in cases {
            let result = parse(case.iter().map(|s| (*s).to_owned()));
            assert!(result.is_err(), "{case:?}");
            assert!(!result.unwrap_err().is_empty(), "{case:?} should carry a message");
        }
        // --help is the empty-message Err, mapped to exit 0 by main_entry.
        assert_eq!(parse(["--help".to_owned()].into_iter()).unwrap_err(), "");
    }

    #[test]
    fn trace_subcommand_is_dispatched_before_sweep_parsing() {
        // `trace` with no files is the trace command's usage error (2),
        // not "unknown subcommand"; `trace --help` prints usage and exits 0.
        assert_eq!(main_entry(["trace".to_owned()].into_iter()), 2);
        assert_eq!(main_entry(["trace".to_owned(), "--help".to_owned()].into_iter()), 0);
    }

    #[test]
    fn empty_selection_exits_with_usage_error() {
        let opts = CliOptions {
            only: vec!["zzz".to_owned()],
            ..CliOptions::default()
        };
        assert_eq!(run_sweeps(&crate::experiments::registry(), &opts), 2);
    }
}
