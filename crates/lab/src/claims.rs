//! Claim checks — the regression gate of `lab check`.
//!
//! A [`Claim`] inspects the aggregated per-point curves of one sweep and
//! passes or fails with a deterministic explanation. The stock
//! combinators cover the paper's claim shapes:
//!
//! * [`UpperBound`] — a per-point analytic ceiling (Theorem 4's
//!   `(1+ε)·p·d` defect bound, Lemma 6's `d²/k` step cap);
//! * [`MonotoneAlong`] — a curve must not decrease along one axis
//!   (Theorem 5: collapse time grows with `k`);
//! * [`Predicate`] — an arbitrary deterministic check over the whole
//!   summary (e05's policy-ordering claims).

use curtain_telemetry::json::JsonValue;

use crate::grid::Params;
use crate::report::PointSummary;

/// The result of one claim check.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimOutcome {
    /// The claim's name (`"T4-defect-bound"`).
    pub name: String,
    /// Whether the claim held.
    pub passed: bool,
    /// A deterministic one-line explanation (worst margin, failing point…).
    pub details: String,
}

impl ClaimOutcome {
    /// A passing outcome.
    #[must_use]
    pub fn pass(name: &str, details: impl Into<String>) -> Self {
        ClaimOutcome { name: name.to_owned(), passed: true, details: details.into() }
    }

    /// A failing outcome.
    #[must_use]
    pub fn fail(name: &str, details: impl Into<String>) -> Self {
        ClaimOutcome { name: name.to_owned(), passed: false, details: details.into() }
    }

    /// The JSON form embedded in `BENCH_<exp>.json`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields = std::collections::BTreeMap::new();
        fields.insert("name".to_owned(), JsonValue::Str(self.name.clone()));
        fields.insert("passed".to_owned(), JsonValue::Bool(self.passed));
        fields.insert("details".to_owned(), JsonValue::Str(self.details.clone()));
        JsonValue::Object(fields)
    }
}

/// One check over a sweep's aggregated curves.
pub trait Claim: Send + Sync {
    /// Stable claim name, used in reports and `lab check` output.
    fn name(&self) -> &str;

    /// Checks the claim against the per-point summaries (grid order).
    fn check(&self, points: &[PointSummary]) -> ClaimOutcome;
}

/// Per-point ceiling function for [`UpperBound`]; `None` skips the point.
pub type BoundFn = Box<dyn Fn(&Params) -> Option<f64> + Send + Sync>;

/// `mean(metric) ≤ bound(params) · (1 + slack)` at every point where
/// `bound` yields a ceiling.
///
/// `slack` absorbs finite-sample noise around an asymptotic bound: the
/// e01 grids run hundreds (not millions) of trials per cell, so the
/// measured mean can legitimately hover above the exact `(1+ε)·p·d`
/// ceiling by a sampling-noise margin.
pub struct UpperBound {
    /// Claim name.
    pub name: &'static str,
    /// The metric under the ceiling.
    pub metric: &'static str,
    /// Relative slack (`0.5` ⇒ the mean may exceed the bound by 50%).
    pub slack: f64,
    /// The per-point ceiling; `None` skips the point.
    pub bound: BoundFn,
}

impl Claim for UpperBound {
    fn name(&self) -> &str {
        self.name
    }

    fn check(&self, points: &[PointSummary]) -> ClaimOutcome {
        let mut checked = 0usize;
        let mut worst: Option<(f64, String)> = None;
        for point in points {
            let (Some(bound), Some(mean)) = ((self.bound)(&point.params), point.mean(self.metric))
            else {
                continue;
            };
            if bound <= 0.0 {
                continue;
            }
            checked += 1;
            let ratio = mean / bound;
            if worst.as_ref().is_none_or(|(w, _)| ratio > *w) {
                worst = Some((
                    ratio,
                    format!(
                        "{}: {}={:.6} vs bound {:.6} (ratio {:.3})",
                        point.params, self.metric, mean, bound, ratio
                    ),
                ));
            }
        }
        match worst {
            None => ClaimOutcome::pass(self.name, format!("no points expose {}", self.metric)),
            Some((ratio, at)) if ratio <= 1.0 + self.slack => ClaimOutcome::pass(
                self.name,
                format!("{checked} points under bound; worst {at}"),
            ),
            Some((_, at)) => ClaimOutcome::fail(
                self.name,
                format!("exceeds bound (+{:.0}% slack) at {at}", self.slack * 100.0),
            ),
        }
    }
}

/// `mean(metric)` must be non-decreasing along `axis`, within every group
/// of points that agree on all other parameters.
///
/// `tolerance` is relative: a successor may dip below its predecessor by
/// at most that fraction before the claim fails. Points are compared in
/// grid order, which is ascending along every `cartesian` axis.
pub struct MonotoneAlong {
    /// Claim name.
    pub name: &'static str,
    /// The metric whose curve must rise.
    pub metric: &'static str,
    /// The axis the curve runs along.
    pub axis: &'static str,
    /// Allowed relative dip (`0.1` ⇒ successor ≥ 90% of predecessor).
    pub tolerance: f64,
}

impl Claim for MonotoneAlong {
    fn name(&self) -> &str {
        self.name
    }

    fn check(&self, points: &[PointSummary]) -> ClaimOutcome {
        // Group by "all params but the axis", preserving grid order.
        let mut groups: Vec<(String, Vec<&PointSummary>)> = Vec::new();
        for point in points {
            if point.params.get(self.axis).is_none() {
                continue;
            }
            let key = point.params.without(self.axis).canonical();
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(point),
                None => groups.push((key, vec![point])),
            }
        }
        if groups.is_empty() {
            return ClaimOutcome::pass(self.name, format!("no points carry axis {}", self.axis));
        }

        let mut steps = 0usize;
        for (_, members) in &groups {
            let mut prev: Option<(&PointSummary, f64)> = None;
            for point in members {
                let Some(mean) = point.mean(self.metric) else { continue };
                if let Some((prev_point, prev_mean)) = prev {
                    steps += 1;
                    if mean < prev_mean * (1.0 - self.tolerance) {
                        return ClaimOutcome::fail(
                            self.name,
                            format!(
                                "{} drops along {}: {:.4} at [{}] -> {:.4} at [{}]",
                                self.metric, self.axis, prev_mean, prev_point.params, mean,
                                point.params
                            ),
                        );
                    }
                }
                prev = Some((point, mean));
            }
        }
        ClaimOutcome::pass(
            self.name,
            format!(
                "{} non-decreasing along {} ({} steps, {} groups)",
                self.metric,
                self.axis,
                steps,
                groups.len()
            ),
        )
    }
}

/// Check body for [`Predicate`]: `Ok(details)` passes, `Err(details)` fails.
pub type PredicateFn = Box<dyn Fn(&[PointSummary]) -> Result<String, String> + Send + Sync>;

/// An arbitrary deterministic check: `Ok(details)` passes, `Err(details)`
/// fails.
pub struct Predicate {
    /// Claim name.
    pub name: &'static str,
    /// The check body.
    pub check: PredicateFn,
}

impl Claim for Predicate {
    fn name(&self) -> &str {
        self.name
    }

    fn check(&self, points: &[PointSummary]) -> ClaimOutcome {
        match (self.check)(points) {
            Ok(details) => ClaimOutcome::pass(self.name, details),
            Err(details) => ClaimOutcome::fail(self.name, details),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MetricStats;

    fn point(k: i64, d: i64, y: f64) -> PointSummary {
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("y".to_owned(), MetricStats::from_values(&[y]));
        PointSummary { params: Params::new().with("k", k).with("d", d), metrics }
    }

    #[test]
    fn upper_bound_passes_within_slack_and_fails_beyond() {
        let claim = UpperBound {
            name: "bound",
            metric: "y",
            slack: 0.5,
            bound: Box::new(|p| Some(p.float("k"))),
        };
        // y = 1.2·k everywhere: ratio 1.2 ≤ 1.5 → pass.
        let ok = claim.check(&[point(10, 2, 12.0), point(20, 2, 24.0)]);
        assert!(ok.passed, "{}", ok.details);
        assert!(ok.details.contains("2 points"), "{}", ok.details);
        // One point at ratio 2.0 → fail, naming the point.
        let bad = claim.check(&[point(10, 2, 12.0), point(20, 2, 40.0)]);
        assert!(!bad.passed);
        assert!(bad.details.contains("k=20"), "{}", bad.details);
    }

    #[test]
    fn upper_bound_skips_unbounded_points() {
        let claim = UpperBound {
            name: "bound",
            metric: "y",
            slack: 0.0,
            bound: Box::new(|_| None),
        };
        let out = claim.check(&[point(10, 2, 1e9)]);
        assert!(out.passed);
        assert!(out.details.contains("no points"), "{}", out.details);
    }

    #[test]
    fn monotone_groups_by_other_axes() {
        let claim = MonotoneAlong { name: "mono", metric: "y", axis: "k", tolerance: 0.1 };
        // Two d-groups, each rising in k; the dip across groups is fine.
        let ok = claim.check(&[
            point(10, 2, 5.0),
            point(20, 2, 9.0),
            point(10, 3, 1.0),
            point(20, 3, 2.0),
        ]);
        assert!(ok.passed, "{}", ok.details);
        assert!(ok.details.contains("2 groups"), "{}", ok.details);
        // A >10% dip inside a group fails, naming both points.
        let bad = claim.check(&[point(10, 2, 5.0), point(20, 2, 4.0)]);
        assert!(!bad.passed);
        assert!(bad.details.contains("drops along k"), "{}", bad.details);
        // Small dips inside the tolerance pass.
        let slack = claim.check(&[point(10, 2, 5.0), point(20, 2, 4.6)]);
        assert!(slack.passed, "{}", slack.details);
    }

    #[test]
    fn predicate_maps_result_to_outcome() {
        let claim = Predicate {
            name: "pred",
            check: Box::new(|points| {
                if points.is_empty() { Err("empty sweep".into()) } else { Ok("fine".into()) }
            }),
        };
        assert!(!claim.check(&[]).passed);
        assert!(claim.check(&[point(1, 1, 0.0)]).passed);
        let json = claim.check(&[]).to_json().render();
        assert!(json.contains("\"passed\":false"), "{json}");
    }
}
